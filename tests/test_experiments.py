"""Tests for the experiment drivers (repro.bench.experiments).

Each reproduction experiment must not merely run — its table must show
the paper's result: exact matches for the worked examples, the right
cost shapes for the analytic claims.
"""

import math

import pytest

from repro.bench import experiments
from repro.metrics import complexity


class TestExactTableExperiments:
    def test_e1_every_row_matches_figure_2(self):
        table = experiments.e1_prefix_table()
        assert all(table.column("match"))
        assert len(table.rows) == 9

    def test_e2_no_mismatches(self):
        table = experiments.e2_region_sums(trials=60)
        assert all(m == 0 for m in table.column("mismatches"))

    def test_e3_sixty_four_cells(self):
        table = experiments.e3_prefix_update()
        assert table.column("cells_written") == [64]
        assert table.column("table_matches_fig4") == [True]

    def test_e4_all_artifacts_match(self):
        table = experiments.e4_overlay_tables()
        assert all(table.column("matches"))
        assert len(table.rows) == 5

    def test_e5_sixteen_cells(self):
        table = experiments.e5_rps_update()
        rows = dict(zip(table.column("structure"), table.column("cells_written")))
        assert rows == {"RP": 4, "overlay": 12, "total": 16}
        assert all(table.column("match"))


class TestShapeExperiments:
    def test_e6_contains_paper_quote(self):
        table = experiments.e6_storage_ratio()
        pairs = {
            (d, k): p
            for d, k, p in zip(
                table.column("d"), table.column("k"),
                table.column("paper_percent"),
            )
        }
        assert pairs[(2, 100)] == pytest.approx(1.99)

    def test_e6_monotonic_in_k(self):
        table = experiments.e6_storage_ratio(dims=(2,), box_sizes=(2, 10, 50))
        percents = table.column("paper_percent")
        assert percents == sorted(percents, reverse=True)

    def test_e7_minimum_near_sqrt_n(self):
        n = 64
        table = experiments.e7_box_size_sweep(n=n, d=2)
        ks = table.column("k")
        measured = table.column("measured_worst")
        best_k = ks[measured.index(min(measured))]
        assert abs(best_k - math.sqrt(n)) <= 4

    def test_e7_measured_bounded_by_binomial(self):
        n = 64
        table = experiments.e7_box_size_sweep(n=n, d=2)
        for k, measured in zip(table.column("k"), table.column("measured_worst")):
            assert measured <= complexity.rps_update_cost_bound(n, 2, k)

    def test_e8_rps_product_beats_baselines(self):
        table = experiments.e8_complexity_table(sizes=(64,), dims=(2,))
        rows = {
            method: product
            for method, product in zip(
                table.column("method"), table.column("product")
            )
        }
        assert rows["rps"] < rows["naive"]
        assert rows["rps"] < rows["prefix_sum"]

    def test_e8_constant_query_methods(self):
        table = experiments.e8_complexity_table(sizes=(16, 64), dims=(2,))
        by_method = {}
        for method, n, q in zip(
            table.column("method"), table.column("n"),
            table.column("query_cells"),
        ):
            by_method.setdefault(method, {})[n] = q
        # prefix sum and rps query costs do not grow with n
        assert by_method["prefix_sum"][16] == by_method["prefix_sum"][64]
        assert by_method["rps"][16] == by_method["rps"][64]
        # naive query cost grows with the cube
        assert by_method["naive"][64] > by_method["naive"][16]

    def test_e9_box_aligned_constant_pages(self):
        table = experiments.e9_disk_io(n=64, box_size=8, operations=12)
        for layout, op, worst in zip(
            table.column("layout"), table.column("op"),
            table.column("max_pages_per_op"),
        ):
            if layout == "box_aligned":
                if op == "query":
                    assert worst <= 4  # 2^d pages
                else:
                    assert worst <= 2  # 1 read + 1 write-back

    def test_e9_row_major_updates_cost_more(self):
        table = experiments.e9_disk_io(n=64, box_size=8, operations=12)
        means = {}
        for layout, buffers, op, mean in zip(
            table.column("layout"), table.column("buffer_pages"),
            table.column("op"), table.column("mean_pages_per_op"),
        ):
            means[(layout, buffers, op)] = mean
        assert means[("row_major", 4, "update")] > means[
            ("box_aligned", 4, "update")
        ]

    def test_e10_rows_for_all_methods(self):
        table = experiments.e10_wallclock(n=64, operations=20)
        assert set(table.column("method")) == {
            "naive", "prefix_sum", "rps", "fenwick",
        }


class TestRegistry:
    def test_all_experiments_present(self):
        expected = [f"E{i}" for i in range(1, 11)] + ["A1", "A2", "A3", "A6"]
        assert sorted(experiments.ALL_EXPERIMENTS) == sorted(expected)

    def test_experiment_ids_match_tables(self):
        for eid in ("E1", "E3", "E5"):
            table = experiments.ALL_EXPERIMENTS[eid]()
            assert table.experiment_id == eid


class TestAblationExperiments:
    def test_a1_crossover_shape(self):
        table = experiments.a1_batch_crossover(n=64)
        rebuild = table.column("rebuild_cells")
        incremental = table.column("incremental_cells")
        auto = table.column("auto_cells")
        # rebuild cost is flat; incremental grows with the batch
        assert len(set(rebuild)) == 1
        assert incremental == sorted(incremental)
        # auto tracks the lower envelope
        for inc, reb, aut in zip(incremental, rebuild, auto):
            assert aut <= min(inc, reb)
        # both regimes are exercised
        choices = set(table.column("auto_choice"))
        assert choices == {"incremental", "rebuild"}

    def test_a2_per_axis_wins(self):
        table = experiments.a2_anisotropic_boxes()
        costs = dict(
            zip(table.column("policy"), table.column("worst_update_cells"))
        )
        per_axis = costs["per-axis sqrt(n_i)"]
        for policy, cost in costs.items():
            assert per_axis <= cost, policy

    def test_a3_zero_mismatches(self):
        table = experiments.a3_generalized_operators(trials=50)
        assert all(m == 0 for m in table.column("mismatches"))
        assert set(table.column("operator")) == {"sum", "xor", "product"}


    def test_a6_growth_ordering(self):
        table = experiments.a6_hierarchical()
        by_level = {}
        for levels, n, cost in zip(
            table.column("levels"), table.column("n"),
            table.column("worst_update_cells"),
        ):
            by_level.setdefault(levels, []).append(cost)
        flat, deep = by_level[1], by_level[2]
        assert deep[-1] / deep[0] < flat[-1] / flat[0]

"""Unit tests for the Fenwick-tree comparator (repro.baselines.fenwick)."""

import math

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from tests.conftest import brute_range_sum, random_range


class TestQueries:
    @pytest.mark.parametrize("shape", [(16,), (9, 9), (10, 13), (6, 5, 7)])
    def test_range_sums_match_oracle(self, rng, shape):
        a = rng.integers(-10, 20, size=shape)
        cube = FenwickCube(a)
        for _ in range(40):
            low, high = random_range(rng, shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_prefix_cost_is_polylog(self, rng):
        n = 256
        a = rng.integers(0, 10, size=(n, n))
        cube = FenwickCube(a)
        before = cube.counter.snapshot()
        cube.prefix_sum((n - 1, n - 1))
        reads = before.delta(cube.counter).cells_read
        assert reads <= (math.ceil(math.log2(n)) + 1) ** 2

    def test_power_of_two_sizes(self, rng):
        a = rng.integers(0, 10, size=(32,))
        cube = FenwickCube(a)
        assert cube.prefix_sum((31,)) == a.sum()
        assert cube.prefix_sum((0,)) == a[0]


class TestUpdates:
    def test_update_cost_is_polylog(self, rng):
        n = 256
        a = rng.integers(0, 10, size=(n, n))
        cube = FenwickCube(a)
        before = cube.counter.snapshot()
        cube.apply_delta((0, 0), 1)  # worst case: longest update path
        writes = before.delta(cube.counter).cells_written
        assert writes <= (math.ceil(math.log2(n)) + 1) ** 2

    def test_updates_keep_queries_correct(self, rng):
        a = rng.integers(0, 10, size=(12, 12))
        cube = FenwickCube(a)
        a = a.copy()
        for _ in range(40):
            cell = tuple(int(x) for x in rng.integers(0, 12, size=2))
            delta = int(rng.integers(-4, 5))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_set_semantics(self, rng):
        a = rng.integers(0, 10, size=(8, 8))
        cube = FenwickCube(a)
        cube.update((3, 3), 42)
        assert cube.cell_value((3, 3)) == 42


class TestMisc:
    def test_to_array_roundtrip(self, rng):
        a = rng.integers(-5, 10, size=(7, 9))
        assert np.array_equal(FenwickCube(a).to_array(), a)

    def test_storage(self, rng):
        a = rng.integers(0, 5, size=(9, 9))
        assert FenwickCube(a).storage_cells() == 81

    def test_bulk_build_equals_incremental(self, rng):
        a = rng.integers(0, 10, size=(11, 6))
        bulk = FenwickCube(a)
        incremental = FenwickCube(np.zeros_like(a))
        for idx in np.ndindex(*a.shape):
            if a[idx]:
                incremental.apply_delta(idx, int(a[idx]))
        assert np.array_equal(bulk._tree, incremental._tree)

"""The public conformance harness, applied to every shipped method."""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.baselines.sparse import SparseNaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.storage.paged_rps import PagedRPSCube
from repro.testing import assert_method_correct


@pytest.mark.parametrize("method_cls", [
    NaiveCube, PrefixSumCube, FenwickCube, SparseNaiveCube,
    RelativePrefixSumCube,
], ids=lambda c: c.name)
def test_shipped_methods_conform(method_cls):
    assert_method_correct(method_cls, operations=25)


def test_paged_rps_conforms():
    # fewer ops: every cell access goes through the page simulator
    assert_method_correct(
        PagedRPSCube,
        shapes=((9, 9),),
        operations=15,
        box_size=3,
        buffer_capacity=4,
    )


def test_rps_conforms_at_awkward_box_sizes():
    for box in (1, 2, 5, 50):
        assert_method_correct(
            RelativePrefixSumCube,
            shapes=((10, 7),),
            operations=15,
            box_size=box,
        )


class _BrokenQueryCube(NaiveCube):
    """Deliberately wrong: off-by-one on the range's high corner."""

    name = "broken_query"

    def range_sum(self, low, high):
        clipped = tuple(max(h - 1, l) for l, h in zip(low, high))
        return super().range_sum(low, clipped)


class _BrokenUpdateCube(NaiveCube):
    """Deliberately wrong: drops every second update."""

    name = "broken_update"

    def __init__(self, array):
        super().__init__(array)
        self._flip = False

    def apply_delta(self, index, delta):
        self._flip = not self._flip
        if self._flip:
            super().apply_delta(index, delta)
        else:
            self.counter.write(1, structure="A")  # lies about the write


class _SilentCountersCube(NaiveCube):
    """Correct answers but never charges the counters."""

    name = "silent"

    def range_sum(self, low, high):
        result = super().range_sum(low, high)
        self.counter.reset()
        return result


class TestHarnessCatchesBugs:
    def test_broken_query_detected(self):
        with pytest.raises(AssertionError, match="range_sum"):
            assert_method_correct(_BrokenQueryCube, shapes=((9, 9),))

    def test_broken_update_detected(self):
        with pytest.raises(AssertionError):
            assert_method_correct(_BrokenUpdateCube, shapes=((9, 9),))

    def test_silent_counters_detected(self):
        with pytest.raises(AssertionError, match="charged no"):
            assert_method_correct(_SilentCountersCube, shapes=((9, 9),))

    def test_counters_check_can_be_waived(self):
        # the same class passes once counter discipline is not required
        assert_method_correct(
            _SilentCountersCube, shapes=((9, 9),), operations=10,
            check_counters=False,
        )

"""The public conformance harness, applied to every shipped method."""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.baselines.sparse import SparseNaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.storage.paged_rps import PagedRPSCube
from repro.testing import (
    assert_batch_queries_correct,
    assert_batch_updates_correct,
    assert_method_correct,
)


@pytest.mark.parametrize("method_cls", [
    NaiveCube, PrefixSumCube, FenwickCube, SparseNaiveCube,
    RelativePrefixSumCube,
], ids=lambda c: c.name)
def test_shipped_methods_conform(method_cls):
    assert_method_correct(method_cls, operations=25)


@pytest.mark.parametrize("method_cls", [
    NaiveCube, PrefixSumCube, FenwickCube, SparseNaiveCube,
    RelativePrefixSumCube,
], ids=lambda c: c.name)
def test_shipped_methods_batch_queries_conform(method_cls):
    """The *_many kernels: oracle agreement, looped-path agreement,
    identical counter charges, empty/Q=1/duplicate/boundary batches."""
    assert_batch_queries_correct(method_cls, queries=24, seed=3)


@pytest.mark.parametrize("method_cls", [
    NaiveCube, PrefixSumCube, FenwickCube, SparseNaiveCube,
    RelativePrefixSumCube,
], ids=lambda c: c.name)
def test_shipped_methods_batch_updates_conform(method_cls):
    """apply_batch_array: equivalent to the method's own apply_batch in
    values and full counter ledger, with duplicates and zero deltas."""
    assert_batch_updates_correct(method_cls, updates=20, seed=5)


class _DroppingBatchUpdateCube(NaiveCube):
    """Deliberately wrong: the array path drops the last update."""

    name = "dropping_batch_update"

    def apply_batch_array(self, indices, deltas):
        import numpy as np

        idx = np.asarray(indices)
        if len(idx) == 0:
            return 0
        dv = np.broadcast_to(np.asarray(deltas), (len(idx),))
        return super().apply_batch_array(idx[:-1], dv[:-1]) + 1


def test_batch_update_harness_catches_wrong_values():
    with pytest.raises(AssertionError, match="apply_batch_array"):
        assert_batch_updates_correct(
            _DroppingBatchUpdateCube, shapes=((9, 9),)
        )


def test_paged_rps_batch_queries_conform():
    assert_batch_queries_correct(
        PagedRPSCube,
        shapes=((9, 9),),
        queries=8,
        box_size=3,
        buffer_capacity=4,
    )


class _BrokenBatchCube(NaiveCube):
    """Deliberately wrong: vectorized path drops the last query."""

    name = "broken_batch"

    def range_sum_many(self, lows, highs):
        result = super().range_sum_many(lows, highs)
        if len(result):
            result = result.copy()
            result[-1] = 0
        return result


class _UnderchargingBatchCube(PrefixSumCube):
    """Deliberately wrong: the batched gather forgets the counter."""

    name = "undercharging"

    def prefix_sum_many(self, targets):
        before = self.counter.snapshot()
        result = super().prefix_sum_many(targets)
        self.counter.cells_read = before.cells_read
        return result


def test_batch_harness_catches_wrong_values():
    with pytest.raises(AssertionError, match="range_sum_many"):
        assert_batch_queries_correct(_BrokenBatchCube, shapes=((9, 9),))


def test_batch_harness_catches_undercharged_counters():
    with pytest.raises(AssertionError, match="charged"):
        assert_batch_queries_correct(
            _UnderchargingBatchCube, shapes=((9, 9),)
        )


def test_paged_rps_conforms():
    # fewer ops: every cell access goes through the page simulator
    assert_method_correct(
        PagedRPSCube,
        shapes=((9, 9),),
        operations=15,
        box_size=3,
        buffer_capacity=4,
    )


def test_rps_conforms_at_awkward_box_sizes():
    for box in (1, 2, 5, 50):
        assert_method_correct(
            RelativePrefixSumCube,
            shapes=((10, 7),),
            operations=15,
            box_size=box,
        )


class _BrokenQueryCube(NaiveCube):
    """Deliberately wrong: off-by-one on the range's high corner."""

    name = "broken_query"

    def range_sum(self, low, high):
        clipped = tuple(max(h - 1, l) for l, h in zip(low, high))
        return super().range_sum(low, clipped)


class _BrokenUpdateCube(NaiveCube):
    """Deliberately wrong: drops every second update."""

    name = "broken_update"

    def __init__(self, array):
        super().__init__(array)
        self._flip = False

    def apply_delta(self, index, delta):
        self._flip = not self._flip
        if self._flip:
            super().apply_delta(index, delta)
        else:
            self.counter.write(1, structure="A")  # lies about the write


class _SilentCountersCube(NaiveCube):
    """Correct answers but never charges the counters."""

    name = "silent"

    def range_sum(self, low, high):
        result = super().range_sum(low, high)
        self.counter.reset()
        return result


class TestHarnessCatchesBugs:
    def test_broken_query_detected(self):
        with pytest.raises(AssertionError, match="range_sum"):
            assert_method_correct(_BrokenQueryCube, shapes=((9, 9),))

    def test_broken_update_detected(self):
        with pytest.raises(AssertionError):
            assert_method_correct(_BrokenUpdateCube, shapes=((9, 9),))

    def test_silent_counters_detected(self):
        with pytest.raises(AssertionError, match="charged no"):
            assert_method_correct(_SilentCountersCube, shapes=((9, 9),))

    def test_counters_check_can_be_waived(self):
        # the same class passes once counter discipline is not required
        assert_method_correct(
            _SilentCountersCube, shapes=((9, 9),), operations=10,
            check_counters=False,
        )

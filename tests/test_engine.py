"""Unit tests for the OLAP engine (repro.cube.engine)."""

import math

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import DateEncoder, IntegerEncoder
from repro.cube.engine import DataCubeEngine
from repro.cube.schema import CubeSchema, Dimension


@pytest.fixture
def schema():
    return CubeSchema(
        [
            Dimension("age", IntegerEncoder(20, 69)),
            Dimension("day", DateEncoder("2026-01-01", 90)),
        ],
        measure="sales",
    )


@pytest.fixture
def records(rng):
    out = []
    for _ in range(400):
        out.append(
            {
                "age": int(rng.integers(20, 70)),
                "day": f"2026-01-01",
                "sales": float(rng.integers(1, 200)),
            }
        )
    # spread over days deterministically
    import datetime

    for i, record in enumerate(out):
        record["day"] = (
            datetime.date(2026, 1, 1) + datetime.timedelta(days=i % 90)
        ).isoformat()
    return out


class TestQueries:
    def test_total_sum(self, schema, records):
        engine = DataCubeEngine(schema, records)
        assert engine.sum() == pytest.approx(
            sum(r["sales"] for r in records)
        )

    def test_paper_motivating_query(self, schema, records):
        """Total sales for ages 37-52 over a date window (Section 1)."""
        engine = DataCubeEngine(schema, records)
        got = engine.sum(
            {"age": (37, 52), "day": ("2026-01-01", "2026-01-31")}
        )
        expected = sum(
            r["sales"]
            for r in records
            if 37 <= r["age"] <= 52 and r["day"] <= "2026-01-31"
        )
        assert got == pytest.approx(expected)

    def test_count_and_average(self, schema, records):
        engine = DataCubeEngine(schema, records)
        selection = {"age": (30, 40)}
        matching = [r["sales"] for r in records if 30 <= r["age"] <= 40]
        assert engine.count(selection) == len(matching)
        assert engine.average(selection) == pytest.approx(
            sum(matching) / len(matching)
        )

    def test_average_of_empty_selection(self, schema):
        engine = DataCubeEngine(schema, [])
        assert math.isnan(engine.average())

    def test_rolling_sum_over_days(self, schema, records):
        engine = DataCubeEngine(schema, records)
        windows = engine.rolling_sum("day", 7)
        assert len(windows) == 90
        expected_first = sum(
            r["sales"] for r in records if r["day"] <= "2026-01-07"
        )
        assert windows[0] == pytest.approx(expected_first)

    def test_rolling_average(self, schema, records):
        engine = DataCubeEngine(schema, records)
        averages = engine.rolling_average("day", 30)
        assert len(averages) == 90


class TestIngest:
    def test_ingest_updates_aggregates(self, schema, records):
        engine = DataCubeEngine(schema, records)
        total = engine.sum()
        count = engine.count()
        engine.ingest({"age": 45, "day": "2026-02-10", "sales": 123.0})
        assert engine.sum() == pytest.approx(total + 123.0)
        assert engine.count() == count + 1

    def test_ingest_many(self, schema):
        engine = DataCubeEngine(schema, [])
        n = engine.ingest_many(
            {"age": 30 + i, "day": "2026-01-05", "sales": 10.0}
            for i in range(5)
        )
        assert n == 5
        assert engine.sum() == pytest.approx(50.0)

    def test_retract(self, schema, records):
        engine = DataCubeEngine(schema, records)
        total = engine.sum()
        record = {"age": 50, "day": "2026-01-20", "sales": 77.0}
        engine.ingest(record)
        engine.retract(record)
        assert engine.sum() == pytest.approx(total)

    def test_ingest_cost_is_constrained(self, schema):
        """The paper's point: RPS ingest touches far fewer cells than the
        prefix-sum backend for the same fact stream."""
        record = {"age": 20, "day": "2026-01-01", "sales": 5.0}
        rps_engine = DataCubeEngine(schema, [], method=RelativePrefixSumCube)
        ps_engine = DataCubeEngine(schema, [], method=PrefixSumCube)
        rps_engine.ingest(record)
        ps_engine.ingest(record)
        assert (
            rps_engine.backend.counter.cells_written
            < ps_engine.backend.counter.cells_written / 10
        )


class TestBackends:
    def test_default_backend_is_rps(self, schema):
        engine = DataCubeEngine(schema, [])
        assert isinstance(engine.backend, RelativePrefixSumCube)
        assert isinstance(engine.count_backend, RelativePrefixSumCube)

    def test_method_kwargs_forwarded(self, schema):
        engine = DataCubeEngine(schema, [], box_size=5)
        assert engine.backend.box_size == 5

    def test_alternate_backend(self, schema, records):
        naive = DataCubeEngine(schema, records, method=NaiveCube)
        rps = DataCubeEngine(schema, records)
        selection = {"age": (25, 60)}
        assert naive.sum(selection) == pytest.approx(rps.sum(selection))

    def test_cells_reconstruction(self, schema):
        engine = DataCubeEngine(
            schema,
            [{"age": 20, "day": "2026-01-01", "sales": 9.0}],
        )
        cells = engine.cells()
        assert cells.shape == schema.shape
        assert cells[0, 0] == pytest.approx(9.0)
        assert cells.sum() == pytest.approx(9.0)


class TestDescribe:
    def test_summary_fields(self, schema, records):
        engine = DataCubeEngine(schema, records)
        summary = engine.describe()
        assert summary["dimensions"] == {"age": 50, "day": 90}
        assert summary["measure"] == "sales"
        assert summary["facts"] == len(records)
        assert summary["total"] == pytest.approx(
            sum(r["sales"] for r in records)
        )
        assert 0 < summary["density"] <= 1
        assert summary["backend"] == "rps"
        assert summary["storage_cells"] > summary["cells"]

    def test_empty_engine(self, schema):
        summary = DataCubeEngine(schema, []).describe()
        assert summary["facts"] == 0
        assert summary["density"] == 0.0
        import math

        assert math.isnan(summary["mean_per_fact"])

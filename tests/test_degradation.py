"""Graceful degradation: the service bends where it used to break.

Three failure modes, three softer outcomes: a poisoned update group is
quarantined instead of killing the writer; a saturated submission queue
rejects with :class:`ServiceOverloadedError` instead of buffering
without bound (and :func:`call_with_retries` rides it out); a corrupted
snapshot is caught by :meth:`self_check` and repaired by rebuild.
"""

import numpy as np
import pytest

from repro import (
    CubeService,
    FaultPlan,
    RelativePrefixSumCube,
    ServiceOverloadedError,
    call_with_retries,
)


def _service(shape=(6, 6), **kwargs):
    return CubeService(
        RelativePrefixSumCube, np.zeros(shape, dtype=np.int64), **kwargs
    )


class TestQuarantine:
    def test_poisoned_group_skipped_service_survives(self):
        with _service((4, 4)) as svc:
            svc.submit_batch([((1, 1), 5)])
            svc.submit_batch([((9, 9), 1)])  # out of bounds: poison
            svc.submit_batch([((0, 0), 2)])
            svc.flush()
            # version counts the quarantined group (as a no-op) so the
            # sequence numbering stays monotone
            assert svc.version == 3
            quarantined = svc.quarantined_groups()
            assert [seq for seq, _ in quarantined] == [2]
            assert quarantined[0][1]  # the offending error is recorded
            # the healthy groups on either side of the poison applied
            assert svc.cell_value((1, 1)) == 5
            assert svc.cell_value((0, 0)) == 2
            stats = svc.stats()
            assert stats["groups_quarantined"] == 1
            assert stats["rebuilds"] >= 1
            assert stats["writer_errors"] >= 1

    def test_only_poisoned_groups_skipped_in_mixed_cycle(self):
        """Several groups can share one writer cycle; supervision must
        isolate exactly the bad ones, not discard the cycle."""
        svc = _service((4, 4), poll_seconds=0.05)
        oracle = np.zeros((4, 4), dtype=np.int64)
        rng = np.random.default_rng(0)
        for i in range(20):
            if i % 7 == 3:
                svc.submit_batch([((50, 50), 1)])  # poison
            else:
                cell = (int(rng.integers(0, 4)), int(rng.integers(0, 4)))
                svc.submit_batch([(cell, i + 1)])
                oracle[cell] += i + 1
        svc.flush()
        arr, _, _ = svc._read(lambda m: m.to_array())
        assert np.array_equal(arr, oracle)
        assert len(svc.quarantined_groups()) == 3  # i = 3, 10, 17
        svc.close()

    def test_reads_keep_flowing_during_quarantine(self):
        with _service((4, 4)) as svc:
            svc.submit_batch([((9, 9), 1)])
            svc.flush()
            assert svc.total() == 0  # quarantined group is a no-op
            assert svc.version == 1


class TestOverload:
    def test_full_queue_raises_after_timeout(self):
        plan = FaultPlan(
            seed=0, latency_at=tuple(range(1, 50)), latency_seconds=0.3
        )
        svc = _service(max_pending_groups=2, fault_plan=plan)
        try:
            with pytest.raises(ServiceOverloadedError, match="full"):
                # the slowed writer can't drain 2 pending in 50 ms
                for _ in range(8):
                    svc.submit_batch([((0, 0), 1)], timeout=0.05)
        finally:
            svc.close()

    def test_retry_helper_rides_out_the_backlog(self):
        plan = FaultPlan(
            seed=1, latency_at=tuple(range(1, 20)), latency_seconds=0.1
        )
        svc = _service(max_pending_groups=2, fault_plan=plan)
        rejections = []
        try:
            for _ in range(6):
                call_with_retries(
                    lambda: svc.submit_batch([((1, 1), 1)], timeout=0.02),
                    attempts=50,
                    base_delay=0.02,
                    seed=0,
                    on_retry=lambda n, err, d: rejections.append(n),
                )
            svc.flush()
            assert svc.version == 6
            assert svc.cell_value((1, 1)) == 6
        finally:
            svc.close()
        assert rejections, "the bounded queue never pushed back"

    def test_unbounded_by_default(self):
        with _service() as svc:
            for _ in range(64):
                svc.submit_batch([((2, 2), 1)], timeout=0.001)
            svc.flush()
            assert svc.cell_value((2, 2)) == 64

    def test_max_pending_validated(self):
        with pytest.raises(ValueError, match="max_pending_groups"):
            _service(max_pending_groups=0)


class TestSelfCheck:
    def test_healthy_service_passes(self):
        with _service() as svc:
            svc.submit_batch([((3, 3), 9)])
            svc.flush()
            report = svc.self_check()
            assert report == {
                "ok": True,
                "version": 1,
                "repaired": False,
                "error": None,
            }

    def test_detects_and_repairs_corrupted_snapshot(self):
        with _service((8, 8)) as svc:
            svc.submit_batch([((4, 4), 7)])
            svc.flush()
            # corrupt the published structure's overlay: range sums go
            # wrong while to_array() (rebuilt from RP alone) stays right
            method = svc._front.method
            mask = next(iter(method.overlay._values))
            method.overlay._values[mask][...] += 1000
            report = svc.self_check(probes=32)
            assert report["ok"] and report["repaired"]
            assert svc.stats()["rebuilds"] >= 1
            # the repaired snapshot serves correct sums again
            assert svc.cell_value((4, 4)) == 7
            svc.submit_batch([((0, 0), 1)])
            svc.flush()
            assert svc.total() == 8

    def test_detect_without_repair(self):
        with _service((8, 8)) as svc:
            svc.flush()
            method = svc._front.method
            mask = next(iter(method.overlay._values))
            method.overlay._values[mask][...] += 1000
            report = svc.self_check(probes=32, repair=False)
            assert not report["ok"] and not report["repaired"]
            assert report["error"]

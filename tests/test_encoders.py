"""Unit tests for dimension encoders (repro.cube.encoders)."""

import datetime

import pytest

from repro.cube.encoders import (
    BinningEncoder,
    CategoricalEncoder,
    DateEncoder,
    IdentityEncoder,
    IntegerEncoder,
)
from repro.errors import EncodingError


class TestIntegerEncoder:
    def test_roundtrip(self):
        enc = IntegerEncoder(20, 69)
        assert enc.size == 50
        assert enc.encode(20) == 0
        assert enc.encode(69) == 49
        assert enc.decode(17) == 37

    def test_out_of_domain(self):
        enc = IntegerEncoder(0, 9)
        with pytest.raises(EncodingError):
            enc.encode(10)
        with pytest.raises(EncodingError):
            enc.encode(-1)

    def test_empty_domain_rejected(self):
        with pytest.raises(EncodingError):
            IntegerEncoder(5, 4)

    def test_unparseable_value_raises_encoding_error(self):
        """The encode contract: typed EncodingError, never a raw
        ValueError — the ingest quarantine catches only the former."""
        enc = IntegerEncoder(0, 9)
        with pytest.raises(EncodingError):
            enc.encode("notanint")
        with pytest.raises(EncodingError):
            enc.encode(None)

    def test_encode_range(self):
        enc = IntegerEncoder(20, 69)
        assert enc.encode_range(37, 52) == (17, 32)

    def test_inverted_range(self):
        enc = IntegerEncoder(0, 9)
        with pytest.raises(EncodingError):
            enc.encode_range(5, 3)

    def test_decode_out_of_range(self):
        with pytest.raises(EncodingError):
            IntegerEncoder(0, 4).decode(5)


class TestCategoricalEncoder:
    def test_roundtrip(self):
        enc = CategoricalEncoder(["north", "south", "east", "west"])
        assert enc.size == 4
        assert enc.encode("south") == 1
        assert enc.decode(3) == "west"

    def test_unknown_category(self):
        enc = CategoricalEncoder(["a", "b"])
        with pytest.raises(EncodingError):
            enc.encode("c")

    def test_unhashable_value_raises_encoding_error(self):
        with pytest.raises(EncodingError):
            CategoricalEncoder(["a", "b"]).encode(["a"])

    def test_duplicates_rejected(self):
        with pytest.raises(EncodingError):
            CategoricalEncoder(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            CategoricalEncoder([])

    def test_range_over_categories(self):
        enc = CategoricalEncoder(["jan", "feb", "mar", "apr"])
        assert enc.encode_range("feb", "apr") == (1, 3)


class TestBinningEncoder:
    def test_basic_binning(self):
        enc = BinningEncoder([0, 10, 20, 30])
        assert enc.size == 3
        assert enc.encode(0) == 0
        assert enc.encode(9.99) == 0
        assert enc.encode(10) == 1
        assert enc.encode(29.5) == 2

    def test_final_edge_closed(self):
        enc = BinningEncoder([0, 10, 20])
        assert enc.encode(20) == 1

    def test_out_of_range(self):
        enc = BinningEncoder([0, 10])
        with pytest.raises(EncodingError):
            enc.encode(-0.5)
        with pytest.raises(EncodingError):
            enc.encode(10.5)

    def test_unparseable_value_raises_encoding_error(self):
        with pytest.raises(EncodingError):
            BinningEncoder([0, 10]).encode("cheap")

    def test_decode_returns_lower_edge(self):
        enc = BinningEncoder([0, 10, 20, 30])
        assert enc.decode(1) == 10

    def test_nonmonotonic_edges_rejected(self):
        with pytest.raises(EncodingError):
            BinningEncoder([0, 10, 10])
        with pytest.raises(EncodingError):
            BinningEncoder([5])

    def test_encode_range_clips(self):
        enc = BinningEncoder([0, 10, 20, 30])
        assert enc.encode_range(-100, 100) == (0, 2)
        assert enc.encode_range(5, 15) == (0, 1)

    def test_range_missing_all_bins(self):
        enc = BinningEncoder([0, 10])
        with pytest.raises(EncodingError):
            enc.encode_range(11, 20)


class TestDateEncoder:
    def test_roundtrip_date_objects(self):
        enc = DateEncoder(datetime.date(2026, 1, 1), 365)
        assert enc.size == 365
        assert enc.encode(datetime.date(2026, 1, 1)) == 0
        assert enc.encode(datetime.date(2026, 2, 1)) == 31
        assert enc.decode(31) == datetime.date(2026, 2, 1)

    def test_iso_strings(self):
        enc = DateEncoder("2026-01-01", 90)
        assert enc.encode("2026-01-31") == 30

    def test_datetime_accepted(self):
        enc = DateEncoder("2026-01-01", 90)
        assert enc.encode(datetime.datetime(2026, 1, 2, 14, 30)) == 1

    def test_out_of_window(self):
        enc = DateEncoder("2026-01-01", 31)
        with pytest.raises(EncodingError):
            enc.encode("2026-02-01")
        with pytest.raises(EncodingError):
            enc.encode("2025-12-31")

    def test_unparseable(self):
        with pytest.raises(EncodingError):
            DateEncoder("not-a-date", 10)
        enc = DateEncoder("2026-01-01", 10)
        with pytest.raises(EncodingError):
            enc.encode("01/02/2026")

    def test_range(self):
        enc = DateEncoder("2026-01-01", 90)
        assert enc.encode_range("2026-01-10", "2026-01-20") == (9, 19)

    def test_zero_days_rejected(self):
        with pytest.raises(EncodingError):
            DateEncoder("2026-01-01", 0)


class TestIdentityEncoder:
    def test_passthrough(self):
        enc = IdentityEncoder(9)
        assert enc.size == 9
        assert enc.encode(5) == 5
        assert enc.decode(5) == 5

    def test_bounds(self):
        enc = IdentityEncoder(9)
        with pytest.raises(EncodingError):
            enc.encode(9)
        with pytest.raises(EncodingError):
            enc.encode(-1)

    def test_unparseable_value_raises_encoding_error(self):
        with pytest.raises(EncodingError):
            IdentityEncoder(9).encode("five")

    def test_zero_size_rejected(self):
        with pytest.raises(EncodingError):
            IdentityEncoder(0)

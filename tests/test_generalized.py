"""Tests for generalized-operator prefix structures (paper Section 2).

The paper claims the techniques apply to "any binary operator + for which
there exists an inverse binary operator -". These tests instantiate the
prefix method and the relative prefix sum method over XOR and PRODUCT and
verify them against brute force.
"""

from functools import reduce

import numpy as np
import pytest

from repro.aggregates.generalized import (
    GROUP_PRODUCT,
    GROUP_SUM,
    GROUP_XOR,
    GroupOperator,
    GroupPrefixCube,
    GroupRelativePrefixCube,
    _blocked_accumulate,
)
from tests.conftest import random_range


def brute_combine(array, low, high, op):
    """Oracle: fold the operator over the inclusive range."""
    slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
    values = array[slices].ravel()
    return reduce(lambda a, b: op.combine(a, b), values, op.identity)


class TestBlockedAccumulate:
    def test_sum_matches_blocked_cumsum(self, rng):
        from repro.core.blocked import blocked_cumsum

        a = rng.integers(0, 10, size=(9, 9))
        ours = _blocked_accumulate(a, 0, 3, GROUP_SUM)
        assert np.array_equal(ours, blocked_cumsum(a, 0, 3))

    def test_xor_restarts_at_blocks(self, rng):
        a = rng.integers(0, 256, size=12)
        out = _blocked_accumulate(a, 0, 4, GROUP_XOR)
        for i in range(12):
            start = (i // 4) * 4
            assert out[i] == reduce(
                lambda x, y: x ^ y, a[start : i + 1], 0
            )


@pytest.mark.parametrize("op,values", [
    (GROUP_SUM, lambda rng, shape: rng.integers(-20, 20, size=shape)),
    (GROUP_XOR, lambda rng, shape: rng.integers(0, 1 << 16, size=shape)),
    (GROUP_PRODUCT, lambda rng, shape: rng.uniform(0.5, 2.0, size=shape)),
], ids=["sum", "xor", "product"])
class TestGroupPrefixCube:
    def test_prefix_matches_bruteforce(self, rng, op, values):
        a = values(rng, (7, 8))
        cube = GroupPrefixCube(a, op)
        for idx in [(0, 0), (3, 4), (6, 7)]:
            expected = brute_combine(a, (0, 0), idx, op)
            assert cube.prefix(idx) == pytest.approx(expected)

    def test_range_queries(self, rng, op, values):
        a = values(rng, (10, 10))
        cube = GroupPrefixCube(a, op)
        for _ in range(30):
            low, high = random_range(rng, a.shape)
            expected = brute_combine(a, low, high, op)
            assert cube.range_query(low, high) == pytest.approx(expected)

    def test_combine_into_then_query(self, rng, op, values):
        a = values(rng, (8, 8)).astype(op.dtype)
        cube = GroupPrefixCube(a, op)
        delta = values(rng, ())
        cube.combine_into((2, 3), op.dtype(delta) if np.isscalar(delta)
                          else delta)
        a[2, 3] = op.combine(a[2, 3], delta)
        for _ in range(15):
            low, high = random_range(rng, a.shape)
            expected = brute_combine(a, low, high, op)
            assert cube.range_query(low, high) == pytest.approx(expected)


@pytest.mark.parametrize("op,values", [
    (GROUP_SUM, lambda rng, shape: rng.integers(-20, 20, size=shape)),
    (GROUP_XOR, lambda rng, shape: rng.integers(0, 1 << 16, size=shape)),
    (GROUP_PRODUCT, lambda rng, shape: rng.uniform(0.5, 2.0, size=shape)),
], ids=["sum", "xor", "product"])
class TestGroupRelativePrefixCube:
    def test_range_queries(self, rng, op, values):
        a = values(rng, (12, 12))
        cube = GroupRelativePrefixCube(a, op, box_size=4)
        for _ in range(40):
            low, high = random_range(rng, a.shape)
            expected = brute_combine(a, low, high, op)
            assert cube.range_query(low, high) == pytest.approx(
                expected, rel=1e-9
            )

    def test_updates_preserve_queries(self, rng, op, values):
        a = values(rng, (10, 10)).astype(op.dtype)
        cube = GroupRelativePrefixCube(a, op, box_size=3)
        for _ in range(20):
            cell = tuple(int(x) for x in rng.integers(0, 10, size=2))
            delta = op.dtype(values(rng, ()))
            cube.combine_into(cell, delta)
            a[cell] = op.combine(a[cell], delta)
            low, high = random_range(rng, a.shape)
            expected = brute_combine(a, low, high, op)
            assert cube.range_query(low, high) == pytest.approx(
                expected, rel=1e-9
            )

    def test_cell_value(self, rng, op, values):
        a = values(rng, (9, 9))
        cube = GroupRelativePrefixCube(a, op, box_size=3)
        for idx in [(0, 0), (4, 4), (8, 8), (3, 0)]:
            assert cube.cell_value(idx) == pytest.approx(a[idx])

    def test_3d(self, rng, op, values):
        a = values(rng, (6, 6, 6))
        cube = GroupRelativePrefixCube(a, op, box_size=2)
        for _ in range(20):
            low, high = random_range(rng, a.shape)
            expected = brute_combine(a, low, high, op)
            assert cube.range_query(low, high) == pytest.approx(
                expected, rel=1e-9
            )


class TestSumInstanceMatchesCore:
    def test_group_sum_equals_rps(self, rng):
        """The SUM instance of the generalized machinery is the core
        RelativePrefixSumCube, value for value."""
        from repro.core.rps import RelativePrefixSumCube

        a = rng.integers(0, 30, size=(12, 12))
        group = GroupRelativePrefixCube(a, GROUP_SUM, box_size=4)
        core = RelativePrefixSumCube(a, box_size=4)
        for idx in np.ndindex(12, 12):
            assert group.prefix(idx) == core.prefix_sum(idx)

    def test_custom_operator(self):
        """A user-supplied group (mod-2^8 addition via uint8 wraparound)."""
        op = GroupOperator("mod256", np.add, np.subtract, 0, np.uint8)
        a = np.arange(64, dtype=np.uint8).reshape(8, 8)
        cube = GroupRelativePrefixCube(a, op, box_size=3)
        expected = np.uint8(a[2:5, 1:7].sum() % 256)
        assert cube.range_query((2, 1), (4, 6)) == expected

"""End-to-end verification against every worked example in the paper.

These are the reproduction's ground-truth tests: each asserts cell-for-cell
equality with a published figure or the exact costs the paper reports.
"""

import numpy as np

from repro import paper
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube


class TestFigure2:
    def test_prefix_array_exact(self, paper_cube):
        assert np.array_equal(
            PrefixSumCube(paper_cube).prefix_array(), paper.ARRAY_P
        )

    def test_spot_values_from_text(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        assert cube.prefix_sum((4, 0)) == 19   # "cell P[4,0] contains ... 19"
        assert cube.prefix_sum((2, 1)) == 24   # "cell P[2,1] ... 24"
        assert cube.prefix_sum((8, 8)) == 290  # sum of the entire array


class TestFigure4:
    def test_update_table_exact(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        cube.update((1, 1), 4)
        assert np.array_equal(cube.prefix_array(), paper.ARRAY_P_AFTER_UPDATE)

    def test_sixty_four_cells(self, paper_cube):
        cube = PrefixSumCube(paper_cube)
        before = cube.counter.snapshot()
        cube.apply_delta((1, 1), 1)
        assert before.delta(cube.counter).cells_written == 64


class TestFigure10And13:
    def test_rp_array_exact(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        assert np.array_equal(rps.rp.array(), paper.ARRAY_RP)

    def test_anchor_values_exact(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        assert np.array_equal(
            rps.overlay.anchors_array().astype(np.int64),
            paper.OVERLAY_ANCHORS,
        )

    def test_all_border_values_exact(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        for cell, value in paper.BORDER_ROW_VALUES.items():
            assert rps.overlay.border_value(cell) == value, cell
        for cell, value in paper.BORDER_COLUMN_VALUES.items():
            assert rps.overlay.border_value(cell) == value, cell

    def test_section_3_3_worked_border_calculations(self, paper_cube):
        """The four border values computed step-by-step in Section 3.3."""
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        assert rps.overlay.anchor_value((3, 3)) == 46
        assert rps.overlay.border_value((4, 3)) == 7
        assert rps.overlay.border_value((5, 3)) == 15
        assert rps.overlay.border_value((3, 4)) == 13
        assert rps.overlay.border_value((3, 5)) == 27


class TestSection33Query:
    def test_component_values(self, paper_cube):
        """anchor 86 + border 8 + border 51 + RP 23 = 168."""
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        assert rps.overlay.anchor_value((6, 3)) == (
            paper.EXAMPLE_QUERY_ANCHOR_VALUE
        )
        assert rps.overlay.border_value((7, 3)) == (
            paper.EXAMPLE_QUERY_BORDER_Y
        )
        assert rps.overlay.border_value((6, 5)) == (
            paper.EXAMPLE_QUERY_BORDER_X
        )
        assert rps.rp.value((7, 5)) == paper.EXAMPLE_QUERY_RP

    def test_complete_region_sum(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        assert rps.prefix_sum((7, 5)) == paper.EXAMPLE_QUERY_RESULT


class TestFigure15:
    def test_rp_after_update_exact(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        assert np.array_equal(rps.rp.array(), paper.ARRAY_RP_AFTER_UPDATE)

    def test_twelve_overlay_cells_exact(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        for (r, c), value in paper.OVERLAY_CELLS_AFTER_UPDATE.items():
            if r % 3 == 0 and c % 3 == 0:
                got = rps.overlay.anchor_value((r, c))
            else:
                got = rps.overlay.border_value((r, c))
            assert got == value, ((r, c), got, value)

    def test_sixteen_versus_sixty_four(self, paper_cube):
        """The paper's headline example: 16 cells (RPS) vs 64 (PS)."""
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        assert rps.counter.cells_written == 16
        assert rps.counter.structure_written("RP") == 4
        overlay = rps.counter.structure_written(
            "overlay.border"
        ) + rps.counter.structure_written("overlay.anchor")
        assert overlay == 12

    def test_anchor_update_note(self, paper_cube):
        """Section 4.2's closing note: updating cell (0,0) (directly under
        an anchor) changes only anchor cells, no border values."""
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        rps.apply_delta((0, 0), 1)
        assert rps.counter.structure_written("overlay.border") == 0
        assert rps.counter.structure_written("overlay.anchor") == 8
        assert rps.counter.structure_written("RP") == 9


class TestQueriesAfterUpdateStayConsistent:
    def test_all_prefixes_after_paper_update(self, paper_cube):
        rps = RelativePrefixSumCube(paper_cube, box_size=3)
        rps.apply_delta((1, 1), 1)
        updated = paper_cube.copy()
        updated[1, 1] += 1
        prefix = updated.cumsum(axis=0).cumsum(axis=1)
        for idx in np.ndindex(9, 9):
            assert rps.prefix_sum(idx) == prefix[idx], idx

"""Tests for per-axis overlay box sizes (extension of the paper's model).

The paper fixes a single k on every dimension "for clarity, and without
loss of generality"; these tests cover the per-dimension generalization.
"""

import numpy as np
import pytest

from repro.core import indexing
from repro.core.overlay import Overlay
from repro.core.rp import RelativePrefixArray
from repro.core.rps import (
    RelativePrefixSumCube,
    default_box_size,
    default_box_sizes,
)
from repro.errors import BoxSizeError
from repro.storage.layout import BoxAlignedLayout
from repro.storage.paged_rps import PagedRPSCube
from tests.conftest import brute_range_sum, random_range


class TestNormalization:
    def test_scalar_expands(self):
        assert indexing.normalize_box_sizes(3, (9, 9)) == (3, 3)

    def test_tuple_passthrough(self):
        assert indexing.normalize_box_sizes((2, 5), (9, 9)) == (2, 5)

    def test_arity_mismatch(self):
        with pytest.raises(BoxSizeError):
            indexing.normalize_box_sizes((2, 3, 4), (9, 9))

    def test_zero_rejected(self):
        with pytest.raises(BoxSizeError):
            indexing.normalize_box_sizes((2, 0), (9, 9))

    def test_anchor_of_per_axis(self):
        assert indexing.anchor_of((7, 7), (3, 5)) == (6, 5)

    def test_box_count_per_axis(self):
        assert indexing.box_count((9, 10), (3, 4)) == 3 * 3


class TestDefaultRules:
    def test_scalar_rule(self):
        assert default_box_size((256, 256)) == 16

    def test_per_axis_rule(self):
        assert default_box_sizes((365, 50)) == (19, 7)

    def test_per_axis_minimum_one(self):
        assert default_box_sizes((2, 2)) == (1, 1)


class TestAnisotropicCorrectness:
    @pytest.mark.parametrize("shape,sizes", [
        ((12, 20), (3, 5)),
        ((9, 9), (2, 4)),          # n not divisible by either k
        ((10, 6, 8), (5, 2, 3)),
        ((16, 4), (4, 4)),
    ])
    def test_queries_match_oracle(self, rng, shape, sizes):
        a = rng.integers(0, 20, size=shape)
        cube = RelativePrefixSumCube(a, box_size=sizes)
        for _ in range(60):
            low, high = random_range(rng, shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_updates_then_queries(self, rng):
        shape, sizes = (12, 20), (3, 5)
        a = rng.integers(0, 10, size=shape)
        cube = RelativePrefixSumCube(a, box_size=sizes)
        a = a.copy()
        for _ in range(40):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-4, 5))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)
        assert np.array_equal(cube.to_array(), a)

    def test_update_cost_prediction_still_exact(self, rng):
        a = rng.integers(0, 10, size=(12, 20))
        cube = RelativePrefixSumCube(a, box_size=(3, 5))
        for _ in range(30):
            cell = (int(rng.integers(0, 12)), int(rng.integers(0, 20)))
            predicted = cube.update_cost_breakdown(cell)["total"]
            before = cube.counter.snapshot()
            cube.apply_delta(cell, 1)
            assert before.delta(cube.counter).cells_written == predicted

    def test_overlay_update_equals_rebuild(self, rng):
        a = rng.integers(0, 10, size=(8, 12))
        overlay = Overlay(a, (2, 4))
        for _ in range(15):
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 12)))
            a[cell] += 3
            overlay.apply_delta(cell, 3)
        fresh = Overlay(a, (2, 4))
        for mask in overlay.masks():
            assert np.array_equal(
                overlay.values_array(mask), fresh.values_array(mask)
            )

    def test_rp_per_axis(self, rng):
        a = rng.integers(0, 10, size=(9, 10))
        rp = RelativePrefixArray(a, (3, 5))
        for i in range(9):
            for j in range(10):
                ai, aj = (i // 3) * 3, (j // 5) * 5
                assert rp.value((i, j)) == a[ai : i + 1, aj : j + 1].sum()


class TestBoxSizeProperty:
    def test_uniform_reports_int(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (8, 8)), box_size=4)
        assert cube.box_size == 4
        assert cube.box_sizes == (4, 4)

    def test_mixed_reports_tuple(self, rng):
        cube = RelativePrefixSumCube(
            rng.integers(0, 5, (8, 10)), box_size=(4, 5)
        )
        assert cube.box_size == (4, 5)


class TestStorageCounts:
    def test_paper_formula_per_axis(self, rng):
        a = rng.integers(0, 5, size=(12, 20))
        overlay = Overlay(a, (3, 5))
        boxes = 4 * 4
        # prod(k_i) - prod(k_i - 1) = 15 - 8 = 7 per box
        assert overlay.storage_cells() == boxes * 7
        assert overlay.paper_storage_cells() == boxes * 7


class TestPagedPerAxis:
    def test_paged_rps_anisotropic(self, rng):
        a = rng.integers(0, 10, size=(12, 20))
        paged = PagedRPSCube(a, box_size=(3, 5), buffer_capacity=4)
        memory = RelativePrefixSumCube(a, box_size=(3, 5))
        for _ in range(30):
            low, high = random_range(rng, a.shape)
            assert paged.range_sum(low, high) == memory.range_sum(low, high)

    def test_box_aligned_layout_page_size(self):
        layout = BoxAlignedLayout((12, 20), (3, 5))
        assert layout.page_size == 15
        assert layout.page_count == 16

    def test_one_box_one_page(self):
        layout = BoxAlignedLayout((12, 20), (3, 5))
        pages = {
            layout.locate((i, j))[0]
            for i in range(3, 6)
            for j in range(5, 10)
        }
        assert len(pages) == 1

    def test_cold_update_still_one_page(self, rng):
        a = rng.integers(0, 10, size=(12, 20))
        paged = PagedRPSCube(a, box_size=(3, 5), buffer_capacity=4)
        paged.rp_pages.pool.drop()
        paged.reset_io_stats()
        paged.apply_delta((7, 13), 1)
        paged.flush()
        stats = paged.io_stats()
        assert stats["pages_read"] == 1 and stats["pages_written"] == 1

"""Unit tests for the multi-level RPS extension (repro.extensions)."""

import numpy as np
import pytest

from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError
from repro.extensions.hierarchical import (
    HierarchicalRPSCube,
    RangeAddPointQuery,
    difference_array,
)
from repro.testing import assert_method_correct
from tests.conftest import brute_range_sum, random_range


class TestDifferenceArray:
    def test_prefix_of_difference_is_identity(self, rng):
        x = rng.integers(-9, 9, size=(6, 7))
        diff = difference_array(x)
        back = diff.copy()
        for axis in range(2):
            back = np.cumsum(back, axis=axis)
        assert np.array_equal(back, x)

    def test_1d(self):
        assert difference_array(np.array([3, 5, 4])).tolist() == [3, 2, -1]


class TestRangeAddPointQuery:
    def test_matches_dense_reference(self, rng):
        x = rng.integers(0, 10, size=(8, 9))
        structure = RangeAddPointQuery(x)
        reference = x.copy()
        for _ in range(40):
            low, high = random_range(rng, x.shape)
            delta = int(rng.integers(-5, 6))
            structure.range_add(low, high, delta)
            reference[
                tuple(slice(l, h + 1) for l, h in zip(low, high))
            ] += delta
            probe = tuple(int(rng.integers(0, n)) for n in x.shape)
            assert structure.point_query(probe) == reference[probe]
        assert np.array_equal(structure.to_array(), reference)

    def test_full_array_add(self, rng):
        x = rng.integers(0, 5, size=(6, 6))
        structure = RangeAddPointQuery(x)
        structure.range_add((0, 0), (5, 5), 7)
        assert structure.point_query((0, 0)) == x[0, 0] + 7
        assert structure.point_query((5, 5)) == x[5, 5] + 7

    def test_single_cell_add(self, rng):
        x = np.zeros((5, 5), dtype=np.int64)
        structure = RangeAddPointQuery(x)
        structure.range_add((2, 3), (2, 3), 4)
        assert structure.point_query((2, 3)) == 4
        assert structure.point_query((2, 4)) == 0
        assert structure.point_query((3, 3)) == 0

    def test_inverted_range_rejected(self):
        structure = RangeAddPointQuery(np.zeros((4, 4)))
        with pytest.raises(RangeError):
            structure.range_add((2, 2), (1, 3), 1)

    def test_3d(self, rng):
        x = rng.integers(0, 5, size=(4, 5, 3))
        structure = RangeAddPointQuery(x)
        structure.range_add((1, 1, 1), (2, 3, 2), 10)
        reference = x.copy()
        reference[1:3, 1:4, 1:3] += 10
        for probe in np.ndindex(*x.shape):
            assert structure.point_query(probe) == reference[probe]


class TestHierarchicalCorrectness:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_conforms_to_method_contract(self, levels):
        assert_method_correct(
            HierarchicalRPSCube,
            shapes=((9, 9), (10, 7)),
            operations=20,
            box_size=3,
            levels=levels,
        )

    def test_level_one_equals_flat_rps(self, rng):
        a = rng.integers(0, 20, size=(12, 12))
        hierarchical = HierarchicalRPSCube(a, box_size=4, levels=1)
        flat = RelativePrefixSumCube(a, box_size=4)
        for idx in np.ndindex(12, 12):
            assert hierarchical.prefix_sum(idx) == flat.prefix_sum(idx)

    def test_boundary_targets_3d(self, rng):
        a = rng.integers(0, 10, size=(9, 9, 9))
        cube = HierarchicalRPSCube(a, box_size=3, levels=2)
        prefix = a.cumsum(axis=0).cumsum(axis=1).cumsum(axis=2)
        for t in [(0, 0, 0), (3, 3, 3), (3, 5, 7), (8, 6, 6), (0, 4, 3)]:
            assert cube.prefix_sum(t) == prefix[t], t

    def test_update_then_query_interleaved(self, rng):
        a = rng.integers(0, 20, size=(16, 16))
        cube = HierarchicalRPSCube(a, box_size=4, levels=2)
        a = a.copy()
        for _ in range(40):
            cell = tuple(int(x) for x in rng.integers(0, 16, size=2))
            delta = int(rng.integers(-5, 6))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_invalid_levels(self, rng):
        with pytest.raises(RangeError):
            HierarchicalRPSCube(np.ones((4, 4)), levels=0)


class TestHierarchicalCosts:
    def test_query_reads_bounded(self, rng):
        """Still O(1): at most 2^d stored-value queries, each O(4^d)."""
        a = rng.integers(0, 9, size=(64, 64))
        cube = HierarchicalRPSCube(a, box_size=8, levels=2)
        worst = 0
        for _ in range(30):
            t = tuple(int(x) for x in rng.integers(0, 64, size=2))
            before = cube.counter.snapshot()
            cube.prefix_sum(t)
            worst = max(worst, before.delta(cube.counter).cells_read)
        # 1 RP + 3 stored values x (<= 16 inner reads each)
        assert worst <= 1 + 3 * 16

    def test_update_growth_rate_below_flat(self):
        """The headline: L=2's worst-case update grows slower in n."""
        import math

        def worst_cost(levels, n):
            k = (
                round(math.sqrt(n)) if levels == 1
                else max(2, round(n ** 0.4))
            )
            cube = HierarchicalRPSCube(
                np.zeros((n, n), dtype=np.int64), box_size=k, levels=levels
            )
            before = cube.counter.snapshot()
            cube.apply_delta((1, 1), 1)
            return before.delta(cube.counter).cells_written

        flat_growth = worst_cost(1, 1024) / worst_cost(1, 256)
        deep_growth = worst_cost(2, 1024) / worst_cost(2, 256)
        assert deep_growth < flat_growth

    def test_storage_counts(self, rng):
        a = rng.integers(0, 9, size=(16, 16))
        cube = HierarchicalRPSCube(a, box_size=4, levels=2)
        # RP is dense; inner structures exist for every nonempty subset
        assert cube.storage_cells() >= a.size
        assert set(cube._wrapped) == {1, 2, 3}

    def test_counters_charged_to_inner_structures(self, rng):
        a = rng.integers(0, 9, size=(16, 16))
        cube = HierarchicalRPSCube(a, box_size=4, levels=2)
        cube.prefix_sum((13, 13))
        assert cube.counter.structure_read("overlay.inner") > 0
        cube.apply_delta((1, 1), 1)
        assert cube.counter.structure_written("overlay.inner") > 0

"""Unit tests for access counters (repro.metrics.counters)."""

from repro.metrics.counters import AccessCounter, measured


class TestAccessCounter:
    def test_starts_at_zero(self):
        counter = AccessCounter()
        assert counter.cells_read == 0
        assert counter.cells_written == 0

    def test_read_write_tallies(self):
        counter = AccessCounter()
        counter.read(3)
        counter.write(2)
        counter.read()
        assert counter.cells_read == 4
        assert counter.cells_written == 2

    def test_structure_breakdown(self):
        counter = AccessCounter()
        counter.write(4, structure="RP")
        counter.write(12, structure="overlay")
        counter.read(2, structure="RP")
        assert counter.structure_written("RP") == 4
        assert counter.structure_written("overlay") == 12
        assert counter.structure_read("RP") == 2
        assert counter.structure_read("never") == 0

    def test_reset(self):
        counter = AccessCounter()
        counter.read(5, structure="X")
        counter.reset()
        assert counter.cells_read == 0
        assert counter.structure_read("X") == 0

    def test_unnamed_access_not_in_breakdown(self):
        counter = AccessCounter()
        counter.read(5)
        assert counter.by_structure == {}


class TestSnapshots:
    def test_delta(self):
        counter = AccessCounter()
        counter.read(10)
        snap = counter.snapshot()
        counter.read(3)
        counter.write(7)
        delta = snap.delta(counter)
        assert delta.cells_read == 3
        assert delta.cells_written == 7

    def test_snapshot_is_immutable_record(self):
        counter = AccessCounter()
        snap = counter.snapshot()
        counter.read(100)
        assert snap.cells_read == 0


class TestMeasuredContext:
    def test_fills_in_on_exit(self):
        counter = AccessCounter()
        with measured(counter) as cost:
            counter.read(4)
            counter.write(6)
        assert cost.cells_read == 4
        assert cost.cells_written == 6
        assert cost.cells_touched == 10

    def test_isolated_from_prior_activity(self):
        counter = AccessCounter()
        counter.read(99)
        with measured(counter) as cost:
            counter.write(1)
        assert cost.cells_read == 0
        assert cost.cells_written == 1

    def test_filled_even_on_exception(self):
        counter = AccessCounter()
        try:
            with measured(counter) as cost:
                counter.read(2)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert cost.cells_read == 2

"""Unit tests for the mixed workload runner (repro.workloads.runner)."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import WorkloadError
from repro.workloads import querygen, updategen
from repro.workloads.runner import WorkloadRunner


@pytest.fixture
def cube(rng):
    return rng.integers(0, 20, size=(16, 16))


class TestExecution:
    def test_counts(self, cube):
        runner = WorkloadRunner(RelativePrefixSumCube(cube, box_size=4))
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 10, seed=1),
            updates=updategen.random_updates(cube.shape, 7, seed=2),
        )
        assert result.queries == 10
        assert result.updates == 7
        assert result.query_cells_read > 0
        assert result.update_cells_written > 0

    def test_oracle_verification_zero_mismatches(self, cube):
        runner = WorkloadRunner(
            RelativePrefixSumCube(cube, box_size=4), oracle=cube
        )
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 30, seed=3),
            updates=updategen.random_updates(cube.shape, 30, seed=4),
        )
        assert result.mismatches == 0

    def test_oracle_catches_broken_method(self, cube):
        """A deliberately mismatched oracle must register mismatches."""
        wrong_oracle = cube + 1
        runner = WorkloadRunner(NaiveCube(cube), oracle=wrong_oracle)
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 10, seed=5)
        )
        assert result.mismatches > 0

    def test_oracle_shape_mismatch(self, cube):
        with pytest.raises(WorkloadError):
            WorkloadRunner(NaiveCube(cube), oracle=np.zeros((3, 3)))

    def test_keep_answers(self, cube):
        runner = WorkloadRunner(NaiveCube(cube))
        result = runner.run(
            queries=[((0, 0), (15, 15))], keep_answers=True
        )
        assert result.answers == [cube.sum()]

    def test_sequential_mode(self, cube):
        runner = WorkloadRunner(NaiveCube(cube), oracle=cube)
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 5, seed=6),
            updates=updategen.random_updates(cube.shape, 5, seed=7),
            interleave=False,
        )
        assert result.mismatches == 0
        assert result.queries == result.updates == 5


class TestDerivedMetrics:
    def test_per_op_averages(self, cube):
        runner = WorkloadRunner(NaiveCube(cube))
        result = runner.run(queries=[((0, 0), (15, 15))] * 4)
        assert result.cells_per_query == 256
        assert result.cells_per_update == 0

    def test_cost_product_reflects_paper_tradeoff(self, rng):
        """Same workload on a realistically sized cube: the RPS product
        beats the prefix-sum product (at 16x16 the constants still hide
        the asymptotics, so use 64x64)."""
        big = rng.integers(0, 20, size=(64, 64))
        queries = list(querygen.random_ranges(big.shape, 20, seed=8))
        updates = list(updategen.random_updates(big.shape, 20, seed=9))
        products = {}
        for cls in (PrefixSumCube, RelativePrefixSumCube):
            runner = WorkloadRunner(cls(big))
            result = runner.run(queries=list(queries), updates=list(updates))
            products[cls.name] = result.cost_product
        assert products["rps"] < products["prefix_sum"]

    def test_empty_run(self, cube):
        result = WorkloadRunner(NaiveCube(cube)).run()
        assert result.queries == result.updates == 0
        assert result.cost_product == 0


class TestLatencyPercentiles:
    def test_percentiles_reported(self, cube):
        runner = WorkloadRunner(NaiveCube(cube))
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 20, seed=10),
            updates=updategen.random_updates(cube.shape, 20, seed=11),
        )
        for kind in ("query", "update"):
            stats = result.latency_percentiles(kind)
            assert set(stats) == {"p50", "p95", "p99", "max"}
            assert 0 < stats["p50"] <= stats["p95"] <= stats["max"]

    def test_empty_stream_percentiles_zero(self, cube):
        result = WorkloadRunner(NaiveCube(cube)).run()
        assert result.latency_percentiles("query")["max"] == 0.0
        assert result.latency_percentiles("update")["p99"] == 0.0

    def test_latency_sample_counts(self, cube):
        runner = WorkloadRunner(NaiveCube(cube))
        result = runner.run(
            queries=querygen.random_ranges(cube.shape, 7, seed=12)
        )
        assert len(result.query_latencies) == 7
        assert len(result.update_latencies) == 0

"""The network serving tier: protocol, auth, server, client.

The failure-edge tests are the point of this file: every documented
wire error — malformed frames, oversized payloads, auth failures, quota
exhaustion, admission-control overload, deadline expiry, mid-request
server close — must come back as its typed exception on the client (or
a typed error frame on a raw socket) and must never take the server's
event loop down: after each rejection the same server answers a fresh
healthy request.

No pytest-asyncio in the container: async scenarios run via
``asyncio.run`` inside sync tests, against a server on its own
background event-loop thread (the same facade the tools use).
"""

import asyncio
import contextlib
import json
import socket
import struct

import numpy as np
import pytest

from repro import (
    CubeClient,
    CubeServer,
    CubeService,
    Deadline,
    FaultPlan,
    QueryRouter,
    RelativePrefixSumCube,
)
from repro.errors import (
    AuthError,
    DeadlineExceededError,
    NetError,
    NodeUnavailableError,
    PayloadTooLargeError,
    ProtocolError,
    QuotaExceededError,
    RemoteError,
    ServiceOverloadedError,
)
from repro.net import Authenticator, Tenant
from repro.net.auth import TokenBucket
from repro.net.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    encode_frame,
    error_code_for,
    error_payload,
    raise_wire_error,
    read_frame,
)


def run(coro):
    return asyncio.run(coro)


@contextlib.contextmanager
def serving(service_or_router, **server_kwargs):
    """A CubeServer for ``service_or_router`` on a background thread."""
    server = CubeServer(service_or_router, port=0, **server_kwargs)
    with server:
        yield server


@contextlib.contextmanager
def small_service(**service_kwargs):
    cube = np.arange(48.0).reshape(6, 8)
    with CubeService(RelativePrefixSumCube, cube) as svc:
        yield svc, cube


def raw_exchange(server, payload_bytes, *, recv_frames=1):
    """Push raw bytes at the server, read back ``recv_frames`` frames
    (decoded), tolerating early connection close."""
    with socket.create_connection(server.address, timeout=5.0) as sock:
        sock.sendall(payload_bytes)
        frames = []
        buffered = b""
        sock.settimeout(5.0)
        try:
            while len(frames) < recv_frames:
                while len(buffered) < HEADER_BYTES:
                    piece = sock.recv(65536)
                    if not piece:
                        return frames
                    buffered += piece
                (length,) = struct.unpack("!I", buffered[:HEADER_BYTES])
                while len(buffered) < HEADER_BYTES + length:
                    piece = sock.recv(65536)
                    if not piece:
                        return frames
                    buffered += piece
                body = buffered[HEADER_BYTES:HEADER_BYTES + length]
                buffered = buffered[HEADER_BYTES + length:]
                frames.append(json.loads(body))
        except socket.timeout:
            pass
        return frames


def request_bytes(op, params=None, *, request_id=1, token=None, **extra):
    payload = {"id": request_id, "op": op, "params": params or {}}
    if token is not None:
        payload["token"] = token
    payload.update(extra)
    return encode_frame(payload)


# -- protocol unit tests -----------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        payload = {"id": 3, "op": "ping", "params": {"x": [1, 2, 3]}}
        frame = encode_frame(payload)

        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            return await read_frame(reader)

        assert run(decode()) == payload

    def test_encode_rejects_oversized(self):
        with pytest.raises(PayloadTooLargeError):
            encode_frame({"blob": "x" * MAX_FRAME_BYTES})

    def test_read_rejects_oversized_before_buffering(self):
        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack("!I", MAX_FRAME_BYTES + 1))
            # no body on purpose: the limit check must fire on the
            # prefix alone
            return await read_frame(reader)

        with pytest.raises(PayloadTooLargeError):
            run(decode())

    @pytest.mark.parametrize(
        "garbage",
        [
            struct.pack("!I", 0),                       # zero length
            struct.pack("!I", 10) + b"not-json!!",      # invalid JSON
            struct.pack("!I", 4) + b"[1]",              # truncated body
            b"\x00\x00",                                 # truncated header
            struct.pack("!I", 2) + b"[]",               # non-object JSON
        ],
    )
    def test_read_rejects_malformed(self, garbage):
        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_data(garbage)
            reader.feed_eof()
            return await read_frame(reader)

        with pytest.raises(ProtocolError):
            run(decode())

    def test_clean_eof_is_none(self):
        async def decode():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_frame(reader)

        assert run(decode()) is None

    def test_error_mapping_is_typed_both_ways(self):
        cases = [
            (AuthError("no"), "auth_failed", AuthError),
            (
                QuotaExceededError("slow down", retry_after_s=0.25),
                "quota_exceeded",
                QuotaExceededError,
            ),
            (ServiceOverloadedError("full"), "overloaded",
             ServiceOverloadedError),
            (DeadlineExceededError("late"), "deadline_exceeded",
             DeadlineExceededError),
            (PayloadTooLargeError("big"), "payload_too_large",
             PayloadTooLargeError),
            (ProtocolError("bad"), "bad_request", ProtocolError),
            (ValueError("bad param"), "bad_request", ProtocolError),
            (NodeUnavailableError("down"), "unavailable",
             NodeUnavailableError),
            (RuntimeError("boom"), "internal", RemoteError),
        ]
        for error, code, client_cls in cases:
            payload = error_payload(error)
            assert payload["code"] == code, error
            with pytest.raises(client_cls):
                raise_wire_error(payload)

    def test_retry_after_survives_the_wire(self):
        payload = error_payload(
            QuotaExceededError("slow down", retry_after_s=0.75)
        )
        assert payload["retry_after_s"] == 0.75
        with pytest.raises(QuotaExceededError) as info:
            raise_wire_error(payload)
        assert info.value.retry_after_s == 0.75

    def test_unknown_code_degrades_to_remote_error(self):
        with pytest.raises(RemoteError):
            raise_wire_error({"code": "from_the_future", "message": "?"})

    def test_error_code_for_respects_subclass_order(self):
        # PayloadTooLargeError subclasses ProtocolError but must map to
        # its own code
        assert error_code_for(PayloadTooLargeError("x")) == (
            "payload_too_large"
        )


# -- auth / quota unit tests -------------------------------------------------


class TestAuthQuota:
    def test_token_bucket_refills_on_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(10.0, 5.0, clock=lambda: now[0])
        for _ in range(5):
            assert bucket.try_acquire() == 0.0
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.1)
        now[0] += 0.1
        assert bucket.try_acquire() == 0.0
        # refill never exceeds burst
        now[0] += 100.0
        assert bucket.available == pytest.approx(5.0)

    def test_authenticator_resolves_and_rejects(self):
        auth = Authenticator([Tenant("a", "tok-a"), Tenant("b", "tok-b")])
        assert auth.authenticate("tok-b").name == "b"
        with pytest.raises(AuthError):
            auth.authenticate("tok-c")
        with pytest.raises(AuthError):
            auth.authenticate(None)

    def test_admit_charges_and_refuses_with_retry_after(self):
        now = [0.0]
        tenant = Tenant("t", "tok", rate_per_s=10.0, burst=2.0,
                        clock=lambda: now[0])
        auth = Authenticator([tenant])
        auth.admit(tenant)
        auth.admit(tenant)
        with pytest.raises(QuotaExceededError) as info:
            auth.admit(tenant)
        assert info.value.retry_after_s == pytest.approx(0.1)

    def test_parse_specs(self):
        auth = Authenticator.parse(["dash=s3cret:200:50", "batch=tok2"])
        tenant = auth.authenticate("s3cret")
        assert tenant.name == "dash"
        assert tenant.bucket.rate_per_s == 200.0
        assert tenant.bucket.burst == 50.0
        for bad in ["noequals", "=tok", "name=", "a=b:1:2:3"]:
            with pytest.raises(ValueError):
                Authenticator.parse([bad])

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            Authenticator([Tenant("a", "tok"), Tenant("b", "tok")])


# -- server round trips ------------------------------------------------------


class TestServerHappyPath:
    def test_query_submit_flush_roundtrip(self):
        with small_service() as (svc, cube):
            with serving(svc) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        info = await c.ping()
                        assert info["shape"] == [6, 8]
                        values, version = await c.range_sum_many(
                            [[0, 0], [1, 2]], [[2, 3], [5, 7]]
                        )
                        assert np.allclose(
                            values,
                            [cube[:3, :4].sum(), cube[1:, 2:].sum()],
                        )
                        seq = await c.submit_batch(
                            [((0, 0), 5.0), ((5, 7), -2.0)]
                        )
                        assert seq == 1
                        flushed = await c.flush()
                        assert flushed >= 1
                        value, stamp = await c.range_sum((0, 0), (5, 7))
                        assert value == cube.sum() + 3.0
                        assert stamp == flushed
                        assert await c.version() == flushed

                run(scenario())

    def test_streaming_chunks_are_exact_and_stamped(self):
        with small_service() as (svc, cube):
            with serving(svc) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        lows = [[0, 0]] * 10
                        highs = [[i % 6, 7] for i in range(10)]
                        got = np.empty(10)
                        chunks = 0
                        async for offset, values, version in (
                            c.stream_range_sums(lows, highs, chunk=4)
                        ):
                            got[offset:offset + len(values)] = values
                            chunks += 1
                            assert version == 0
                        assert chunks == 3
                        expect = [
                            cube[: (i % 6) + 1, :].sum() for i in range(10)
                        ]
                        assert np.allclose(got, expect)

                run(scenario())

    def test_router_backend_serves_and_caches(self):
        with small_service() as (svc, cube):
            with QueryRouter(svc, auto_build=False) as router:
                with serving(router) as server:
                    async def scenario():
                        host, port = server.address
                        async with await CubeClient.connect(
                            host, port
                        ) as c:
                            for _ in range(3):
                                values, _ = await c.range_sum_many(
                                    [[0, 0]], [[5, 7]]
                                )
                                assert values[0] == cube.sum()
                            stats = await c.stats()
                            router_stats = stats["backend"]["router"]
                            served_cached = (
                                router_stats["cache_hits"]
                                + router_stats["batch_hits"]
                            )
                            assert served_cached >= 1
                            assert stats["net"]["requests"] >= 3

                    run(scenario())

    def test_stats_expose_net_counters(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        await c.ping()
                        stats = await c.stats()
                        net = stats["net"]
                        assert net["connections_opened"] >= 1
                        assert net["requests_by_op"]["ping"] == 1
                        assert net["bytes_in"] > 0
                        assert net["bytes_out"] > 0

                run(scenario())


# -- failure edges -----------------------------------------------------------


class TestFailureEdges:
    def test_malformed_frame_gets_error_then_close(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                garbage = struct.pack("!I", 12) + b"this aint js"
                frames = raw_exchange(server, garbage)
                assert len(frames) == 1
                assert frames[0]["ok"] is False
                assert frames[0]["error"]["code"] == "bad_request"
                self._assert_still_serving(server)

    def test_oversized_length_prefix_rejected(self):
        with small_service() as (svc, _):
            with serving(
                svc, max_frame_bytes=4096
            ) as server:
                huge = struct.pack("!I", 1 << 30)
                frames = raw_exchange(server, huge)
                assert len(frames) == 1
                assert frames[0]["error"]["code"] == "payload_too_large"
                self._assert_still_serving(server)

    def test_unknown_op_and_bad_params_keep_connection_alive(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                bad_op = request_bytes("explode", request_id=1)
                bad_params = request_bytes(
                    "range_sum_many", {"lows": [[0, 0]]}, request_id=2
                )
                good = request_bytes(
                    "range_sum_many",
                    {"lows": [[0, 0]], "highs": [[1, 1]]},
                    request_id=3,
                )
                frames = raw_exchange(
                    server, bad_op + bad_params + good, recv_frames=3
                )
                assert [f["id"] for f in frames] == [1, 2, 3]
                assert frames[0]["error"]["code"] == "bad_request"
                assert "unknown op" in frames[0]["error"]["message"]
                assert frames[1]["error"]["code"] == "bad_request"
                assert frames[2]["ok"] is True

    def test_out_of_bounds_query_is_bad_request_not_crash(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        with pytest.raises(ProtocolError):
                            await c.range_sum_many([[0, 0]], [[99, 99]])
                        # the same connection still works
                        values, _ = await c.range_sum_many(
                            [[0, 0]], [[1, 1]]
                        )
                        assert len(values) == 1

                run(scenario())

    def test_auth_required_and_wrong_token_rejected(self):
        auth = Authenticator([Tenant("t", "s3cret")])
        with small_service() as (svc, _):
            with serving(svc, authenticator=auth) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        with pytest.raises(AuthError):
                            await c.ping()
                    async with await CubeClient.connect(
                        host, port, token="wrong"
                    ) as c:
                        with pytest.raises(AuthError):
                            await c.ping()
                    async with await CubeClient.connect(
                        host, port, token="s3cret"
                    ) as c:
                        assert (await c.ping())["tenant"] == "t"

                run(scenario())

    def test_quota_exhaustion_maps_with_retry_after(self):
        auth = Authenticator(
            [Tenant("t", "tok", rate_per_s=5.0, burst=2.0)]
        )
        with small_service() as (svc, _):
            with serving(svc, authenticator=auth) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(
                        host, port, token="tok"
                    ) as c:
                        await c.ping()
                        await c.ping()
                        with pytest.raises(QuotaExceededError) as info:
                            await c.ping()
                        assert info.value.retry_after_s > 0.0
                        # the bucket refills: wait out the hint, retry
                        await asyncio.sleep(
                            info.value.retry_after_s + 0.05
                        )
                        await c.ping()

                run(scenario())

    def test_overload_rejects_instead_of_buffering(self):
        # one slow flush holds the single inflight slot; a second
        # connection must be refused immediately with retry-after
        plan = FaultPlan(seed=0, latency_at=(1,), latency_seconds=1.0)
        cube = np.ones((4, 4))
        with CubeService(
            RelativePrefixSumCube, cube, fault_plan=plan
        ) as svc:
            with serving(
                svc, max_inflight=1, overload_retry_s=0.02
            ) as server:
                async def scenario():
                    host, port = server.address
                    slow = await CubeClient.connect(host, port)
                    fast = await CubeClient.connect(host, port)
                    try:
                        await slow.submit_batch([((0, 0), 1.0)])
                        flush_task = asyncio.ensure_future(
                            slow.flush(timeout=10.0)
                        )
                        await asyncio.sleep(0.15)  # flush now inflight
                        with pytest.raises(ServiceOverloadedError) as info:
                            await fast.ping()
                        assert info.value.retry_after_s == (
                            pytest.approx(0.02)
                        )
                        assert await flush_task >= 1
                        # slot freed: the same fast client is admitted
                        await fast.ping()
                    finally:
                        await slow.close()
                        await fast.close()

                run(scenario())
                assert server.metrics.snapshot()["overload_rejects"] == 1

    def test_deadline_exceeded_maps_to_typed_error(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                # server side: a zero budget on the wire comes back as
                # the documented code, and the connection stays usable
                dead = request_bytes(
                    "range_sum_many",
                    {"lows": [[0, 0]], "highs": [[1, 1]]},
                    request_id=1,
                    deadline_ms=0.0,
                )
                live = request_bytes(
                    "range_sum_many",
                    {"lows": [[0, 0]], "highs": [[1, 1]]},
                    request_id=2,
                )
                frames = raw_exchange(server, dead + live, recv_frames=2)
                assert frames[0]["error"]["code"] == "deadline_exceeded"
                assert frames[1]["ok"] is True

                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        # client side: a spent budget fails before the
                        # wire and must not poison the connection
                        with pytest.raises(DeadlineExceededError):
                            await c.range_sum_many(
                                [[0, 0]], [[1, 1]],
                                deadline=Deadline.after(0.0),
                            )
                        values, _ = await c.range_sum_many(
                            [[0, 0]], [[1, 1]], timeout=5.0
                        )
                        assert len(values) == 1

                run(scenario())

    def test_mid_request_server_close_raises_net_error(self):
        plan = FaultPlan(seed=0, latency_at=(1,), latency_seconds=1.5)
        cube = np.ones((4, 4))
        with CubeService(
            RelativePrefixSumCube, cube, fault_plan=plan
        ) as svc:
            server = CubeServer(svc, port=0)
            server.start_background()
            try:
                async def scenario():
                    host, port = server.address
                    client = await CubeClient.connect(host, port)
                    await client.submit_batch([((1, 1), 2.0)])
                    flush_task = asyncio.ensure_future(
                        client.flush(timeout=10.0)
                    )
                    await asyncio.sleep(0.15)
                    # hard-stop the server while the flush is in flight
                    await asyncio.get_running_loop().run_in_executor(
                        None, server.stop_background
                    )
                    with pytest.raises(NetError):
                        await flush_task
                    await client.close()

                run(scenario())
            finally:
                server.stop_background()

    def test_server_survives_backend_close(self):
        with small_service() as (svc, _):
            with serving(svc) as server:
                async def scenario():
                    host, port = server.address
                    async with await CubeClient.connect(host, port) as c:
                        await c.ping()
                        svc.close()
                        with pytest.raises(NodeUnavailableError):
                            await c.submit_batch([((0, 0), 1.0)])
                        # the event loop is alive: new connections are
                        # accepted and answered (with the typed error)
                        async with await CubeClient.connect(
                            host, port
                        ) as c2:
                            with pytest.raises(NodeUnavailableError):
                                await c2.submit_batch([((0, 0), 1.0)])

                run(scenario())

    def _assert_still_serving(self, server):
        frames = raw_exchange(server, request_bytes("ping"))
        assert frames and frames[0]["ok"] is True

"""Unit tests for workload traces (repro.workloads.trace)."""

import pytest

from repro.baselines.naive import NaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import WorkloadError
from repro.workloads import datagen, querygen, updategen
from repro.workloads.trace import Operation, Trace


@pytest.fixture
def trace():
    return Trace.capture(
        queries=querygen.random_ranges((16, 16), 10, seed=1),
        updates=updategen.random_updates((16, 16), 8, seed=2),
    )


class TestOperation:
    def test_query_json_roundtrip(self):
        op = Operation("query", low=(1, 2), high=(3, 4))
        assert Operation.from_json(op.to_json()) == op

    def test_update_json_roundtrip(self):
        op = Operation("update", cell=(5, 6), delta=-3)
        assert Operation.from_json(op.to_json()) == op

    def test_bad_line(self):
        with pytest.raises(WorkloadError):
            Operation.from_json("not json")
        with pytest.raises(WorkloadError):
            Operation.from_json('{"op": "x"}')


class TestCapture:
    def test_counts(self, trace):
        assert len(trace) == 18
        assert len(trace.queries()) == 10
        assert len(trace.updates()) == 8

    def test_interleaved_order(self, trace):
        kinds = [op.kind for op in trace.operations[:4]]
        assert kinds == ["query", "update", "query", "update"]

    def test_sequential_order(self):
        trace = Trace.capture(
            queries=querygen.random_ranges((8, 8), 3, seed=1),
            updates=updategen.random_updates((8, 8), 3, seed=2),
            interleave=False,
        )
        kinds = [op.kind for op in trace.operations]
        assert kinds == ["query"] * 3 + ["update"] * 3


class TestPersistence:
    def test_save_load_identity(self, trace, tmp_path):
        path = tmp_path / "workload.jsonl"
        trace.save(path)
        assert Trace.load(path) == trace

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"op": "q", "low": [0], "high": [3]}\n\n'
            '{"op": "u", "cell": [2], "delta": 5}\n'
        )
        trace = Trace.load(path)
        assert len(trace) == 2


class TestReplay:
    def test_replay_verified(self, trace):
        cube = datagen.uniform_cube((16, 16), seed=3)
        method = RelativePrefixSumCube(cube, box_size=4)
        result = trace.replay(method, oracle=cube.copy())
        assert result.mismatches == 0
        assert result.queries == 10
        assert result.updates == 8

    def test_same_trace_same_answers_across_methods(self, trace):
        cube = datagen.uniform_cube((16, 16), seed=3)
        naive_result = trace.replay(NaiveCube(cube), oracle=cube.copy())
        rps_result = trace.replay(
            RelativePrefixSumCube(cube, box_size=4), oracle=cube.copy()
        )
        assert naive_result.mismatches == rps_result.mismatches == 0
        # identical op mix, so identical op counts
        assert naive_result.updates == rps_result.updates

    def test_replay_preserves_recorded_order(self, tmp_path):
        """A hand-built trace where order matters: update before query."""
        trace = Trace(
            [
                Operation("update", cell=(0, 0), delta=100),
                Operation("query", low=(0, 0), high=(0, 0)),
            ]
        )
        import numpy as np

        method = NaiveCube(np.zeros((4, 4), dtype=np.int64))
        result = trace.replay(method)
        # the query must observe the preceding update
        assert method.cell_value((0, 0)) == 100
        assert result.queries == 1 and result.updates == 1

    def test_repr(self, trace):
        assert "10 queries" in repr(trace)


class TestCliTrace:
    def test_capture_and_replay(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        assert main([
            "trace", "capture", str(path),
            "--scenario", "audit", "--n", "32", "--ops", "10",
        ]) == 0
        assert path.exists()
        assert main([
            "trace", "replay", str(path), "--n", "32",
            "--methods", "rps",
        ]) == 0
        out = capsys.readouterr().out
        assert "captured" in out and "replaying" in out
        assert "mismatches" in out

    def test_replay_rejects_unknown_method(self, tmp_path):
        from repro.cli import main
        from repro.errors import WorkloadError
        import pytest as _pytest

        path = tmp_path / "t.jsonl"
        main(["trace", "capture", str(path), "--scenario", "audit",
              "--n", "16", "--ops", "4"])
        with _pytest.raises(WorkloadError):
            main(["trace", "replay", str(path), "--methods", "psychic"])

"""Unit tests for cube building (repro.cube.builder)."""

import numpy as np
import pytest

from repro.cube.builder import build_dense_arrays, build_value_array
from repro.cube.encoders import IdentityEncoder, IntegerEncoder
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return CubeSchema(
        [
            Dimension("row", IdentityEncoder(3)),
            Dimension("col", IdentityEncoder(3)),
        ],
        measure="value",
    )


class TestBuildDenseArrays:
    def test_aggregation(self, schema):
        records = [
            {"row": 0, "col": 0, "value": 10},
            {"row": 0, "col": 0, "value": 5},
            {"row": 2, "col": 1, "value": 7},
        ]
        values, counts = build_dense_arrays(records, schema)
        assert values.shape == (3, 3)
        assert values[0, 0] == 15
        assert counts[0, 0] == 2
        assert values[2, 1] == 7
        assert counts[2, 1] == 1
        assert counts.sum() == 3

    def test_empty_records(self, schema):
        values, counts = build_dense_arrays([], schema)
        assert values.sum() == 0
        assert counts.sum() == 0

    def test_float_measures(self, schema):
        values, _ = build_dense_arrays(
            [{"row": 1, "col": 1, "value": 2.5}], schema
        )
        assert values.dtype == np.float64
        assert values[1, 1] == 2.5

    def test_negative_measures(self, schema):
        values, _ = build_dense_arrays(
            [
                {"row": 0, "col": 0, "value": 10},
                {"row": 0, "col": 0, "value": -4},
            ],
            schema,
        )
        assert values[0, 0] == 6

    def test_invalid_record_raises(self, schema):
        with pytest.raises(SchemaError):
            build_dense_arrays([{"row": 0, "value": 1}], schema)

    def test_value_array_helper(self, schema):
        values = build_value_array(
            [{"row": 0, "col": 2, "value": 3}], schema
        )
        assert values[0, 2] == 3

    def test_encoded_dimension(self):
        schema = CubeSchema(
            [Dimension("age", IntegerEncoder(30, 39))], measure="m"
        )
        values, counts = build_dense_arrays(
            [{"age": 35, "m": 8}, {"age": 30, "m": 2}], schema
        )
        assert values[5] == 8
        assert values[0] == 2

"""Crash recovery, differentially tested against a brute-force oracle.

The durability contract: after any crash, the recovered state equals a
plain numpy array that applied *exactly the acknowledged groups* — no
torn group ever shows, no acknowledged (fsynced) group is ever lost.
The crash matrix covers mid-batch, mid-checkpoint and mid-WAL-append
kill points across 1-, 2- and 3-dimensional cubes, plus the two on-disk
pathologies recovery must absorb: a torn WAL tail and a corrupted
checkpoint.
"""

import numpy as np
import pytest

from repro import (
    CubeService,
    DurabilityPolicy,
    FaultPlan,
    PrefixSumCube,
    RelativePrefixSumCube,
)
from repro.errors import RecoveryError
from repro.faults import InjectedFault
from repro.serve import recover_state
from repro.testing import assert_recovery_correct


class TestCrashMatrix:
    """Differential kill-at-every-interesting-point checks, d = 1..3."""

    @pytest.mark.parametrize(
        "shape", [(17,), (9, 8), (5, 4, 3)], ids=["d1", "d2", "d3"]
    )
    @pytest.mark.parametrize("crash_after", [0, 7, None], ids=["at-open", "mid-stream", "at-tip"])
    def test_rps_recovers_acked_prefix(self, tmp_path, shape, crash_after):
        assert_recovery_correct(
            RelativePrefixSumCube,
            tmp_path,
            shape=shape,
            groups=18,
            crash_after=crash_after,
            checkpoint_every=5,  # crash points straddle checkpoints
            seed=len(shape),
        )

    def test_prefix_baseline_recovers_too(self, tmp_path):
        """Durability is method-agnostic — the O(1)-query baseline rides
        the same WAL/checkpoint machinery."""
        assert_recovery_correct(
            PrefixSumCube, tmp_path, shape=(8, 8), groups=12, seed=4
        )

    def test_crash_between_checkpoints_replays_wal(self, tmp_path):
        """Kill with groups acked past the last checkpoint: those groups
        exist only in the WAL and must come back from replay."""
        rng = np.random.default_rng(11)
        base = rng.integers(0, 40, (10, 6)).astype(np.int64)
        oracle = base.copy()
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=10),
        )
        for _ in range(10):
            cell = (int(rng.integers(0, 10)), int(rng.integers(0, 6)))
            svc.submit_batch([(cell, 3)])
            oracle[cell] += 3
        svc.flush()  # the cycle ending at group 10 checkpoints there
        for _ in range(3):
            cell = (int(rng.integers(0, 10)), int(rng.integers(0, 6)))
            svc.submit_batch([(cell, 5)])
            oracle[cell] += 5
        svc.flush()
        svc.abandon()  # no close-time checkpoint: 11..13 are WAL-only
        state = recover_state(tmp_path)
        assert state.version == 13
        assert state.checkpoint_seq == 10
        assert state.replayed_groups == 3
        assert np.array_equal(state.method.to_array(), oracle)

    def test_recover_then_crash_then_recover_again(self, tmp_path):
        """Recovery is not a one-shot: the resumed service keeps logging
        to the same directory and survives a second crash."""
        rng = np.random.default_rng(5)
        base = rng.integers(0, 40, (7, 7)).astype(np.int64)
        oracle = base.copy()

        def feed(svc, n):
            for _ in range(n):
                cell = tuple(int(rng.integers(0, 7)) for _ in range(2))
                delta = int(rng.integers(1, 9))
                svc.submit_batch([(cell, delta)])
                oracle[cell] += delta

        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=3),
        )
        feed(svc, 5)
        svc.abandon()

        svc = CubeService.recover(tmp_path)
        assert svc.version == 5
        feed(svc, 6)
        svc.abandon()

        svc = CubeService.recover(tmp_path)
        try:
            assert svc.version == 11
            arr, _, _ = svc._read(lambda m: m.to_array())
            assert np.array_equal(arr, oracle)
        finally:
            svc.close()


class TestTornTailFixture:
    def test_torn_wal_append_recovers_committed_prefix(self, tmp_path):
        """An append torn by the fault plan leaves a partial record on
        disk; the torn group was never acknowledged, so recovery must
        surface exactly the groups before it."""
        base = np.zeros((6, 6), dtype=np.int64)
        plan = FaultPlan(seed=0, torn_write_at=3)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=0),
            fault_plan=plan,
        )
        svc.submit_batch([((0, 0), 1)])
        svc.submit_batch([((1, 1), 2)])
        with pytest.raises(InjectedFault):
            svc.submit_batch([((2, 2), 3)])
        svc.abandon()

        state = recover_state(tmp_path)
        assert state.torn_tail is not None  # the partial record is there
        assert state.version == 2
        expected = base.copy()
        expected[0, 0] += 1
        expected[1, 1] += 2
        assert np.array_equal(state.method.to_array(), expected)

    def test_recovered_service_truncates_and_resumes(self, tmp_path):
        self.test_torn_wal_append_recovers_committed_prefix(tmp_path)
        svc = CubeService.recover(tmp_path)
        try:
            assert svc.submit_batch([((3, 3), 7)]) == 3  # seq continues
            svc.flush()
            assert svc.cell_value((3, 3)) == 7
        finally:
            svc.close()
        # after truncation + the new append the log replays cleanly
        state = recover_state(tmp_path)
        assert state.torn_tail is None
        assert state.version == 3


class TestCorruptCheckpointFixture:
    def _durable_run(self, tmp_path, groups=9):
        """Run to a state with >= 2 checkpoints on disk, deterministically:
        a flush midway pins an intermediate checkpoint (the cycle ending
        there crosses checkpoint_every) and the orderly close checkpoints
        at tip. WAL pruning keeps the replay suffix of the *oldest*
        retained checkpoint, so the fallback path stays whole."""
        rng = np.random.default_rng(2)
        base = rng.integers(0, 30, (8, 5)).astype(np.int64)
        oracle = base.copy()
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(
                dir=tmp_path, checkpoint_every=3, keep_checkpoints=2
            ),
        )
        for i in range(groups):
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 5)))
            delta = int(rng.integers(1, 9))
            svc.submit_batch([(cell, delta)])
            oracle[cell] += delta
            if i == groups // 2:
                svc.flush()
        svc.close()
        return oracle

    def test_falls_back_to_previous_checkpoint(self, tmp_path):
        oracle = self._durable_run(tmp_path)
        checkpoints = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(checkpoints) >= 2
        # corrupt the newest checkpoint's guts (digest catches it)
        blob = bytearray(checkpoints[-1].read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        checkpoints[-1].write_bytes(bytes(blob))

        state = recover_state(tmp_path)
        assert len(state.skipped_checkpoints) == 1
        assert state.checkpoint_seq < int(checkpoints[-1].stem.split("-")[1])
        assert np.array_equal(state.method.to_array(), oracle)

    def test_all_checkpoints_corrupt_raises(self, tmp_path):
        self._durable_run(tmp_path)
        for path in tmp_path.glob("ckpt-*.npz"):
            path.write_bytes(b"not a checkpoint")
        with pytest.raises(RecoveryError, match="corrupt"):
            recover_state(tmp_path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no checkpoints"):
            recover_state(tmp_path)


class TestSeedCheckpoint:
    def test_fresh_open_overwrites_foreign_seed_checkpoint(self, tmp_path):
        """A directory holding a ckpt-0 of a *different* dataset (and no
        WAL records) passes the staleness guard — version 0 equals
        version 0 — so the seed checkpoint must be rewritten at open,
        or recovery would silently restore the foreign array."""
        foreign = np.full((4, 4), 9, dtype=np.int64)
        CubeService(
            RelativePrefixSumCube,
            foreign,
            durability=DurabilityPolicy(dir=tmp_path),
        ).close()  # leaves ckpt-0 of `foreign`, zero WAL records

        fresh = np.arange(16, dtype=np.int64).reshape(4, 4)
        svc = CubeService(
            RelativePrefixSumCube,
            fresh,
            durability=DurabilityPolicy(dir=tmp_path),
        )
        svc.submit_batch([((1, 1), 5)])
        svc.flush()
        svc.abandon()

        state = recover_state(tmp_path)
        expected = fresh.copy()
        expected[1, 1] += 5
        assert np.array_equal(state.method.to_array(), expected)

    def test_nonempty_directory_still_refused(self, tmp_path):
        """The staleness guard is about *newer* on-disk state: once the
        directory holds acked groups, a fresh open must still refuse."""
        base = np.zeros((4, 4), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path),
        )
        svc.submit_batch([((0, 0), 1)])
        svc.flush()
        svc.abandon()
        with pytest.raises(RecoveryError, match="recover"):
            CubeService(
                RelativePrefixSumCube,
                base,
                durability=DurabilityPolicy(dir=tmp_path),
            )


class TestRecoverClassmethod:
    def test_method_conversion_at_recovery(self, tmp_path):
        """Recover under a different backend: the checkpoint stores the
        dense array, so the structure can change across the crash."""
        base = np.arange(20, dtype=np.int64).reshape(4, 5)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path),
        )
        svc.submit_batch([((2, 2), 10)])
        svc.abandon()
        recovered = CubeService.recover(tmp_path, PrefixSumCube)
        try:
            assert isinstance(recovered._front.method, PrefixSumCube)
            assert recovered.cell_value((2, 2)) == base[2, 2] + 10
        finally:
            recovered.close()

    def test_recovery_metrics_recorded(self, tmp_path):
        base = np.zeros((5, 5), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=0),
        )
        for i in range(4):
            svc.submit_batch([((i, i), 1)])
        svc.abandon()
        recovered = CubeService.recover(tmp_path)
        try:
            stats = recovered.stats()
            assert stats["recovery_replays"] == 4
            assert recovered.last_recovery.replayed_groups == 4
        finally:
            recovered.close()

    def test_clean_close_replays_nothing(self, tmp_path):
        """An orderly close checkpoints at tip — the next recovery loads
        the checkpoint and finds zero groups to replay."""
        base = np.zeros((5, 5), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=0),
        )
        for i in range(3):
            svc.submit_batch([((i, i), 2)])
        svc.flush()
        svc.close()
        state = recover_state(tmp_path)
        assert state.version == 3
        assert state.replayed_groups == 0


class TestBoundaryCrashes:
    """The two kill points the checkpoint cadence makes interesting:
    exactly ON a ``checkpoint_every`` boundary (before and after the
    checkpoint lands) and immediately after a quarantine verdict."""

    def test_crash_while_applying_the_boundary_group(self, tmp_path):
        """Group 5 is acked (fsynced) and *would* trigger the boundary
        checkpoint, but the writer dies applying it: the checkpoint
        never lands and recovery must replay through the acked tip."""
        base = np.zeros((6, 6), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=5),
            fault_plan=FaultPlan(seed=0, crash_at_group=5),
        )
        from repro.serve.service import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            for i in range(5):
                svc.submit_batch([((i, i), i + 1)])
            svc.flush(timeout=10)

        state = recover_state(tmp_path)
        assert state.version == 5  # every acked group survives
        assert state.checkpoint_seq < 5  # the boundary checkpoint died
        assert state.replayed_groups == 5 - state.checkpoint_seq
        expected = base.copy()
        for i in range(5):
            expected[i, i] += i + 1
        assert np.array_equal(state.method.to_array(), expected)

    def test_crash_just_after_the_boundary_checkpoint(self, tmp_path):
        """Dual kill point: exactly ``checkpoint_every`` groups, the
        flush pins the boundary checkpoint, then a crash-stop. Recovery
        loads the boundary checkpoint and replays nothing."""
        base = np.zeros((6, 6), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=5),
        )
        for i in range(5):
            svc.submit_batch([((i, 0), 2)])
        svc.flush()
        svc.abandon()

        state = recover_state(tmp_path)
        assert state.version == 5
        assert state.checkpoint_seq == 5  # loaded exactly at the boundary
        assert state.replayed_groups == 0

        svc = CubeService.recover(tmp_path)
        try:
            assert svc.submit_batch([((5, 5), 1)]) == 6  # seq resumes
        finally:
            svc.close()

    def test_crash_immediately_after_quarantine(self, tmp_path):
        """A poisoned group is quarantined, then the service crash-stops
        before any checkpoint covers it: replay must re-quarantine the
        same group, keep its sequence number, and resume at the acked
        version."""
        base = np.zeros((4, 4), dtype=np.int64)
        svc = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=0),
        )
        svc.submit_batch([((1, 1), 5)])
        svc.submit_batch([((9, 9), 1)])  # out of bounds: poison
        svc.submit_batch([((0, 0), 2)])
        svc.flush()
        assert [seq for seq, _ in svc.quarantined_groups()] == [2]
        svc.abandon()  # crash right after the quarantine verdict

        state = recover_state(tmp_path)
        assert state.version == 3  # the poison kept its seq as a no-op
        assert [seq for seq, _ in state.quarantined] == [2]
        expected = base.copy()
        expected[1, 1] += 5
        expected[0, 0] += 2
        assert np.array_equal(state.method.to_array(), expected)

        svc = CubeService.recover(tmp_path)
        try:
            # the replayed quarantine is visible on the live service too
            assert [s for s, _ in svc.quarantined_groups()] == [2]
            assert svc.stats()["groups_quarantined"] == 1
            assert svc.submit_batch([((3, 3), 7)]) == 4
            svc.flush()
            assert svc.cell_value((3, 3)) == 7
        finally:
            svc.close()

"""Differential tests: every router tier agrees with direct RPS,
bit for bit.

The router's tiers must be *indistinguishable* from the backend they
front. For cubes of dimension 1 through 3 this suite drives the same
workload through three configurations — the cache tier (a router asked
the same page twice), the rollup tier (cache disabled, rollup
pre-built), and direct ``CubeService.query_many`` — and requires
``np.array_equal`` on the answers: integer-valued cubes make every sum
exact in float64, so any tier that diverges by even one ULP fails.

Three axes of stress ride on top:

* **workload fixtures** — the named ``dashboard`` scenario (hotspot
  reads + append trickle) replays through router and direct paths;
* **crash matrix** — services killed mid-batch (injected
  ``crash_at_group``) or crash-stopped after a flush are recovered from
  their WAL, and a fresh router over the recovered service must answer
  exactly like direct reads of the recovered state;
* **reads racing version swaps** — writer churn runs concurrently with
  routed readers, and every answer must still equal the per-version
  oracle at its stamp (the same contract the property suite checks
  single-threaded).
"""

import threading

import numpy as np
import pytest

from repro.core.rps import RelativePrefixSumCube
from repro.faults import FaultPlan
from repro.routing import QueryRouter
from repro.serve import CubeService, DurabilityPolicy, ServiceClosedError

from .conftest import brute_range_sum

SHAPES = {1: (48,), 2: (16, 12), 3: (8, 6, 10)}
GRANULARITY = {1: 4, 2: 4, 3: 2}


def _workload(shape, seed, rounds=4, queries=12, writes=3):
    """Per-round query pages (aligned + unaligned mix) and write groups."""
    rng = np.random.default_rng(seed)
    g = GRANULARITY[len(shape)]
    plan = []
    for _ in range(rounds):
        lows, highs = [], []
        for _ in range(queries):
            if rng.random() < 0.5:  # grid-aligned box
                lo, hi = [], []
                for n in shape:
                    blocks = n // g
                    a = int(rng.integers(0, blocks))
                    b = int(rng.integers(a, blocks))
                    lo.append(a * g)
                    hi.append(min((b + 1) * g - 1, n - 1))
            else:
                lo, hi = [], []
                for n in shape:
                    a, b = sorted(int(x) for x in rng.integers(0, n, 2))
                    lo.append(a)
                    hi.append(b)
            lows.append(lo)
            highs.append(hi)
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(-9, 10) or 3),
            )
            for _ in range(writes)
        ]
        plan.append((np.array(lows), np.array(highs), group))
    return plan


@pytest.mark.parametrize("d", [1, 2, 3])
def test_cache_rollup_and_direct_agree_bitwise(d):
    """Quiesced differential, d=1..3: direct RPS, the cache tier, and
    the rollup tier return identical bits round after round, with
    writes (and therefore invalidation) between rounds."""
    shape = SHAPES[d]
    g = GRANULARITY[d]
    rng = np.random.default_rng(d)
    cube = rng.integers(0, 100, shape).astype(np.float64)
    plan = _workload(shape, seed=d + 10)
    with CubeService(RelativePrefixSumCube, cube) as direct_service, \
            CubeService(RelativePrefixSumCube, cube) as cached_service, \
            CubeService(RelativePrefixSumCube, cube) as rollup_service:
        with QueryRouter(
            cached_service, enable_rollup=False, observe_every=1
        ) as cache_router, QueryRouter(
            rollup_service, enable_cache=False, auto_build=False,
            observe_every=1,
        ) as rollup_router:
            for lows, highs, group in plan:
                rollup_router.build_rollup(g)
                direct, _ = direct_service.query_many(lows, highs)
                direct = np.asarray(direct)

                cold = cache_router.route_many(lows, highs)
                warm = cache_router.route_many(lows, highs)
                assert set(cold.tiers) == {"rps"}
                assert set(warm.tiers) == {"cache"}
                assert np.array_equal(np.asarray(cold.values), direct)
                assert np.array_equal(np.asarray(warm.values), direct)

                rolled = rollup_router.route_many(lows, highs)
                aligned = np.asarray(rolled.tiers) == "rollup"
                assert aligned.any(), "workload produced no aligned boxes"
                assert np.array_equal(np.asarray(rolled.values), direct)

                for service in (
                    direct_service, cached_service, rollup_service
                ):
                    service.submit_batch(group)
                    service.flush()


def test_dashboard_scenario_routed_equals_direct():
    """Workload fixture: the named dashboard scenario (hotspot reads,
    append-trickle writes) replayed through a router with every tier
    enabled matches direct RPS bit for bit at each step."""
    from repro.workloads.scenarios import SCENARIOS

    scenario = SCENARIOS["dashboard"]
    shape = (24, 24)
    cube = scenario.make_cube(shape, seed=5).astype(np.float64)
    queries = scenario.make_queries(shape, 40, seed=5)
    updates = scenario.make_updates(shape, 40, seed=5)
    with CubeService(RelativePrefixSumCube, cube) as direct_service, \
            CubeService(RelativePrefixSumCube, cube) as routed_service:
        with QueryRouter(routed_service, observe_every=1) as router:
            router.build_rollup(4)
            for step, (low, high) in enumerate(queries):
                direct, _ = direct_service.query_many([low], [high])
                routed = router.route_many([low], [high])
                # ask again: the repeat must come from a cache tier and
                # still match
                again = router.route_many([low], [high])
                assert np.array_equal(np.asarray(routed.values), direct)
                assert np.array_equal(np.asarray(again.values), direct)
                assert set(again.tiers) == {"cache"}
                if step < len(updates):
                    cell, delta = updates[step]
                    group = [(cell, float(delta))]
                    for service in (direct_service, routed_service):
                        service.submit_batch(group)
                        service.flush()


class TestCrashMatrix:
    """Recovered-from-crash services must serve routers exactly."""

    def _check_recovered(self, tmp_path, expected):
        recovered = CubeService.recover(
            tmp_path,
            RelativePrefixSumCube,
            durability=DurabilityPolicy(dir=tmp_path),
        )
        shape = expected.shape
        rng = np.random.default_rng(99)
        lows, highs = [], []
        for _ in range(16):
            lo, hi = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, 2))
                lo.append(a)
                hi.append(b)
            lows.append(lo)
            highs.append(hi)
        lows.append([0] * len(shape))
        highs.append([n - 1 for n in shape])
        with recovered:
            direct, _ = recovered.query_many(lows, highs)
            oracle = np.array([
                brute_range_sum(expected, lo, hi)
                for lo, hi in zip(lows, highs)
            ])
            assert np.array_equal(np.asarray(direct), oracle)
            with QueryRouter(recovered, observe_every=1) as router:
                router.build_rollup(4)
                cold = router.route_many(lows, highs)
                warm = router.route_many(lows, highs)
                assert np.array_equal(np.asarray(cold.values), oracle)
                assert np.array_equal(np.asarray(warm.values), oracle)
                assert set(warm.tiers) == {"cache"}

    def test_crash_stop_after_flush(self, tmp_path):
        base = np.zeros((12, 12), dtype=np.int64)
        expected = base.copy()
        service = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=3),
        )
        for i in range(7):
            cell = (i, (i * 5) % 12)
            service.submit_batch([(cell, i + 1)])
            expected[cell] += i + 1
        service.flush()
        service.abandon()  # power loss: no drain, no final checkpoint
        self._check_recovered(tmp_path, expected)

    def test_injected_crash_mid_batch(self, tmp_path):
        base = np.zeros((12, 12), dtype=np.int64)
        expected = base.copy()
        service = CubeService(
            RelativePrefixSumCube,
            base,
            durability=DurabilityPolicy(dir=tmp_path, checkpoint_every=2),
            fault_plan=FaultPlan(seed=0, crash_at_group=5),
        )
        with pytest.raises(ServiceClosedError):
            for i in range(5):
                cell = (i, i)
                service.submit_batch([(cell, 2)])
                expected[cell] += 2
            service.flush(timeout=10)
        # every acked group is recovered — the crash died *applying*
        # group 5, after its WAL record was fsynced
        self._check_recovered(tmp_path, expected)


def test_reads_racing_version_swaps():
    """Concurrency differential: routed readers race a writer that
    churns snapshot versions; every answer must equal the per-version
    oracle at its own stamp — cache and rollup tiers included."""
    shape = (12, 12)
    rng = np.random.default_rng(42)
    cube = rng.integers(0, 50, shape).astype(np.float64)
    n_groups = 60
    groups = []
    states = [cube.copy()]
    for _ in range(n_groups):
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(1, 9)),
            )
            for _ in range(2)
        ]
        groups.append(group)
        state = states[-1].copy()
        for cell, delta in group:
            state[cell] += delta
        states.append(state)
    page_lows = np.array([[0, 0], [2, 3], [4, 0], [0, 4]])
    page_highs = np.array([[11, 11], [9, 10], [7, 11], [11, 7]])
    errors = []
    stop = threading.Event()

    with CubeService(RelativePrefixSumCube, cube) as service:
        with QueryRouter(service, auto_build=False, observe_every=1) as router:

            def reader():
                while not stop.is_set():
                    batch = router.route_many(page_lows, page_highs)
                    for lo, hi, value, stamp, tier in zip(
                        page_lows, page_highs, batch.values,
                        batch.stamps, batch.tiers,
                    ):
                        expect = brute_range_sum(states[stamp], lo, hi)
                        if value != expect:
                            errors.append((tuple(lo), tuple(hi), tier,
                                           stamp, value, expect))
                            return

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            for i, group in enumerate(groups):
                router.submit_batch(group)
                if i % 7 == 0:
                    router.flush()
                if i % 10 == 0 and not stop.is_set():
                    # occasionally publish a rollup snapshot for readers
                    # to race against the next version swap
                    router.build_rollup(4)
            router.flush()
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()
    assert not errors, f"stale/torn routed reads: {errors[:3]}"

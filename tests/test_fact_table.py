"""Unit tests for fact tables (repro.cube.fact_table)."""

import pytest

from repro.cube.fact_table import FactTable
from repro.errors import SchemaError


class TestBasics:
    def test_empty(self):
        table = FactTable()
        assert len(table) == 0
        assert list(table) == []

    def test_append_and_iterate(self):
        table = FactTable()
        table.append({"age": 37, "sales": 100})
        table.append({"age": 40, "sales": 50})
        assert len(table) == 2
        assert [r["age"] for r in table] == [37, 40]

    def test_constructor_records(self):
        table = FactTable([{"a": 1}, {"a": 2}])
        assert len(table) == 2

    def test_extend(self):
        table = FactTable()
        table.extend({"a": i} for i in range(5))
        assert len(table) == 5

    def test_records_are_copied(self):
        record = {"a": 1}
        table = FactTable([record])
        record["a"] = 999
        assert table[0]["a"] == 1

    def test_getitem_returns_copy(self):
        table = FactTable([{"a": 1}])
        table[0]["a"] = 999
        assert table[0]["a"] == 1

    def test_columns(self):
        table = FactTable([{"b": 1, "a": 2}, {"c": 3}])
        assert table.columns() == ["a", "b", "c"]


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "facts.csv"
        table = FactTable(
            [
                {"age": 37, "day": "2026-01-15", "sales": 250.5},
                {"age": 40, "day": "2026-01-16", "sales": 99.0},
            ]
        )
        table.to_csv(path)
        loaded = FactTable.from_csv(
            path, converters={"age": int, "sales": float}
        )
        assert len(loaded) == 2
        assert loaded[0] == {"age": 37, "day": "2026-01-15", "sales": 250.5}

    def test_without_converters_strings(self, tmp_path):
        path = tmp_path / "facts.csv"
        FactTable([{"x": 1}]).to_csv(path)
        loaded = FactTable.from_csv(path)
        assert loaded[0]["x"] == "1"

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            FactTable.from_csv(path)

    def test_repr(self):
        assert "2 records" in repr(FactTable([{}, {}]))

"""Live resharding: split/merge migrations, epoch fencing, rollback."""

import threading

import numpy as np
import pytest

from repro.cluster import (
    BreakerPolicy,
    CircuitBreaker,
    CubeCluster,
    ReshardError,
    ShardMap,
)
from repro import RelativePrefixSumCube
from repro.cluster.reshard import PHASES
from repro.errors import ClusterError
from repro.faults import FaultPlan, InjectedFault

from .conftest import brute_range_sum, random_range

SHAPE = (24, 10)


def make_cube(rng):
    return rng.integers(0, 40, SHAPE).astype(np.int64)


def make_cluster(tmp_path, cube, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault(
        "breaker", BreakerPolicy(failure_threshold=2, cooldown_s=60.0)
    )
    return CubeCluster(
        RelativePrefixSumCube, cube, data_dir=tmp_path, **kwargs
    )


def apply_group(cluster, oracle, rng, per_group=4):
    group = []
    for _ in range(per_group):
        cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
        delta = float(rng.integers(-6, 7) or 1)
        group.append((cell, delta))
        oracle[cell] += delta
    cluster.submit_batch(group)


def assert_exact_everywhere(cluster, oracle, rng, queries=12):
    for _ in range(queries):
        low, high = random_range(rng, SHAPE)
        assert cluster.range_sum(low, high) == pytest.approx(
            brute_range_sum(oracle, low, high)
        )


class TestShardMapEpochs:
    def test_initial_epoch_zero_and_split_bumps(self):
        shardmap = ShardMap(SHAPE, 2)
        assert shardmap.epoch == 0
        split = shardmap.split_shard(0)
        assert split.epoch == 1
        assert split.num_shards == 3
        merged = split.merge_shards(0)
        assert merged.epoch == 2
        assert merged.bounds == shardmap.bounds

    def test_from_bounds_validates_coverage(self):
        with pytest.raises(ClusterError):
            ShardMap.from_bounds(SHAPE, [(0, 10), (12, 24)])
        with pytest.raises(ClusterError):
            ShardMap.from_bounds(SHAPE, [(0, 10), (10, 20)])
        with pytest.raises(ClusterError):
            ShardMap.from_bounds(SHAPE, [(0, 0), (0, 24)])

    def test_split_requires_interior_row(self):
        shardmap = ShardMap(SHAPE, 2)
        start, stop = shardmap.bounds[0]
        with pytest.raises(ClusterError):
            shardmap.split_shard(0, at_row=start)
        with pytest.raises(ClusterError):
            shardmap.split_shard(0, at_row=stop)


class TestLiveSplit:
    def test_split_preserves_exact_answers(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        with make_cluster(tmp_path, cube) as cluster:
            apply_group(cluster, oracle, rng)
            summary = cluster.split_shard(0)
            assert summary["ok"]
            assert summary["new_epoch"] == 1
            assert cluster.shardmap.num_shards == 3
            assert cluster.epoch == 1
            assert summary["verify"]["mismatches"] == []
            assert_exact_everywhere(cluster, oracle, rng)
            # the new topology keeps accepting writes
            apply_group(cluster, oracle, rng)
            assert_exact_everywhere(cluster, oracle, rng)

    def test_merge_preserves_exact_answers(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        with make_cluster(tmp_path, cube, num_shards=3) as cluster:
            apply_group(cluster, oracle, rng)
            summary = cluster.merge_shards(1)
            assert summary["ok"]
            assert cluster.shardmap.num_shards == 2
            assert_exact_everywhere(cluster, oracle, rng)
            apply_group(cluster, oracle, rng)
            assert_exact_everywhere(cluster, oracle, rng)

    def test_phases_fire_in_order(self, tmp_path, rng):
        cube = make_cube(rng)
        phases = []
        with make_cluster(tmp_path, cube) as cluster:
            cluster.split_shard(0, phase_hook=phases.append)
        assert tuple(phases) == PHASES

    def test_writes_at_every_phase_boundary_are_never_lost(
        self, tmp_path, rng
    ):
        """The dual-write window's core promise: a group acked at any
        phase boundary is served by whichever topology wins."""
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        with make_cluster(tmp_path, cube) as cluster:

            def write_at_phase(phase):
                # re-entrant by design: the hook runs outside the
                # topology lock, so a client write at the exact phase
                # boundary is the realistic interleaving
                apply_group(cluster, oracle, rng)

            cluster.split_shard(0, phase_hook=write_at_phase)
            assert_exact_everywhere(cluster, oracle, rng)
            metrics = cluster.metrics.snapshot()
            assert metrics["dual_writes"] >= 1

    def test_concurrent_write_stream_through_split(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        lock = threading.Lock()
        stop = threading.Event()
        errors = []

        with make_cluster(tmp_path, cube) as cluster:
            def writer():
                wrng = np.random.default_rng(7)
                while not stop.is_set():
                    cell = tuple(
                        int(wrng.integers(0, n)) for n in SHAPE
                    )
                    delta = float(wrng.integers(1, 5))
                    try:
                        with lock:
                            cluster.submit_batch([(cell, delta)])
                            oracle[cell] += delta
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                cluster.split_shard(0)
                cluster.merge_shards(0)
            finally:
                stop.set()
                thread.join(timeout=30.0)
            assert not errors
            cluster.flush()
            with lock:
                assert_exact_everywhere(cluster, oracle, rng)

    def test_shard_versions_receipt_carries_epoch(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            _, receipt = cluster.range_sum_many(
                [(0, 0)], [(23, 9)], return_shard_versions=True
            )
            assert receipt["epoch"] == 0
            cluster.split_shard(0)
            _, receipt = cluster.range_sum_many(
                [(0, 0)], [(23, 9)], return_shard_versions=True
            )
            assert receipt["epoch"] == 1
            assert set(receipt["versions"]) <= {0, 1, 2}

    def test_stamp_is_epoch_prefixed_and_atomic(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            assert cluster.stamp() == (0, 0, 0)
            cluster.submit_batch([((0, 0), 1.0)])
            assert cluster.stamp()[0] == 0
            cluster.split_shard(1)
            stamp = cluster.stamp()
            assert stamp[0] == 1
            assert len(stamp) == 1 + cluster.shardmap.num_shards


class TestRollback:
    @pytest.mark.parametrize(
        "phase", ["plan", "seed", "tail_replay", "dual_write", "flip",
                  "verify"]
    )
    def test_injected_failure_rolls_back_with_zero_acked_loss(
        self, tmp_path, rng, phase
    ):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=3, reshard_fail_at=phase)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            apply_group(cluster, oracle, rng)
            with pytest.raises(ReshardError) as info:
                cluster.split_shard(0)
            assert info.value.rolled_back
            assert info.value.phase == phase
            assert cluster.epoch == 0
            assert cluster.shardmap.num_shards == 2
            # every acked group still served, exactly
            assert_exact_everywhere(cluster, oracle, rng)
            apply_group(cluster, oracle, rng)
            assert_exact_everywhere(cluster, oracle, rng)
            assert cluster.metrics.snapshot()["reshard_rollbacks"] == 1

    def test_epoch_never_reused_after_rollback(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=3, reshard_fail_at="flip")
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            with pytest.raises(ReshardError):
                cluster.split_shard(0)
            assert cluster.epoch == 0
            plan.reshard_fail_at = frozenset()
            summary = cluster.split_shard(0)
            # epoch 1 was burned by the failed attempt
            assert summary["new_epoch"] == 2
            assert cluster.epoch == 2

    def test_acked_write_during_dual_window_survives_verify_rollback(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=3, reshard_fail_at="verify")
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:

            def write_mid_migration(phase):
                if phase in ("dual_write", "flip"):
                    apply_group(cluster, oracle, rng)

            with pytest.raises(ReshardError) as info:
                cluster.split_shard(0, phase_hook=write_mid_migration)
            assert info.value.rolled_back
            # groups acked under the new epoch were reverse-mirrored:
            # the restored topology serves them
            assert_exact_everywhere(cluster, oracle, rng)

    def test_only_one_migration_at_a_time(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:

            def nested(phase):
                if phase == "dual_write":
                    with pytest.raises(ReshardError):
                        cluster.merge_shards(0)

            cluster.split_shard(0, phase_hook=nested)
            assert cluster.shardmap.num_shards == 3


class TestStatsAtomicity:
    def test_stats_includes_epoch_vector_and_migration(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            report = cluster.stats()
            assert report["epoch"] == 0
            assert report["shardmap"]["epoch"] == 0
            assert len(report["version_vector"]) == 2
            assert report["migration"] is None
            seen = []

            def capture(phase):
                if phase == "dual_write":
                    seen.append(cluster.stats()["migration"])

            cluster.split_shard(0, phase_hook=capture)
            assert seen and seen[0]["kind"] == "split"
            assert seen[0]["mode"] in ("buffer", "dual")
            assert cluster.stats()["migration"] is None

    def test_stats_never_torn_across_epoch_flips(self, tmp_path, rng):
        """Regression: stats() used to read the shard map and per-node
        receipts without a lock, so a concurrent flip could pair the
        new map with the old nodes. Race it hard and require every
        snapshot to be internally consistent."""
        cube = make_cube(rng)
        torn = []
        stop = threading.Event()

        with make_cluster(tmp_path, cube) as cluster:
            def hammer():
                while not stop.is_set():
                    report = cluster.stats()
                    num_shards = report["shardmap"]["num_shards"]
                    if len(report["shardmap"]["bounds"]) != num_shards:
                        torn.append(report)
                    if len(report["version_vector"]) != num_shards:
                        torn.append(report)
                    if report["epoch"] != report["shardmap"]["epoch"]:
                        torn.append(report)
                    non_warming_shards = {
                        node["shard"]
                        for node in report["nodes"].values()
                        if node["role"] != "warming"
                    }
                    if non_warming_shards - set(range(num_shards)):
                        torn.append(report)

            threads = [
                threading.Thread(target=hammer) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                for _ in range(3):
                    cluster.split_shard(0)
                    cluster.merge_shards(0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
        assert torn == []


class TestWarmingBreakers:
    def test_warming_failures_never_trip(self):
        breaker = CircuitBreaker(
            "t0", BreakerPolicy(failure_threshold=2, cooldown_s=60.0)
        )
        breaker.set_warming(True)
        for _ in range(10):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.warming_failures == 10

    def test_leaving_warming_resets_failure_charge(self):
        breaker = CircuitBreaker(
            "t0", BreakerPolicy(failure_threshold=2, cooldown_s=60.0)
        )
        breaker.set_warming(True)
        for _ in range(5):
            breaker.record_failure()
        breaker.set_warming(False)
        # one post-warming failure must not trip a threshold-2 breaker
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_migration_targets_probed_without_quarantine(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            observed = []

            def probe_targets(phase):
                if phase == "dual_write":
                    targets = cluster.migration_target_nodes()
                    observed.append([n.node_id for n in targets])
                    results = cluster.monitor.tick()
                    for node in targets:
                        assert node.node_id in results
                        assert cluster.breaker(node.node_id).warming

            cluster.split_shard(0, phase_hook=probe_targets)
            assert observed and len(observed[0]) == 2 * 2
            # post-flip the targets are live members with warming off
            for node_id in observed[0]:
                assert not cluster.breaker(node_id).warming


class TestScrubberBudget:
    def test_repair_budget_derives_from_probe_timeout(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            cluster.monitor.probe_timeout_s = 0.5
            budget = cluster.scrubber.repair_budget()
            assert budget == pytest.approx(
                0.5 * cluster.scrubber.REPAIR_BUDGET_PROBES
            )
            cluster.scrubber.repair_timeout = 3.0
            assert cluster.scrubber.repair_budget() == pytest.approx(3.0)

    def test_verify_migration_reports_clean_targets(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            reports = []

            def grab(phase):
                if phase == "retire":
                    pass

            summary = cluster.split_shard(0, phase_hook=grab)
            verify = summary["verify"]
            assert verify["targets"] == 2
            assert verify["verified"] == 2
            assert verify["mismatches"] == []


class TestFaultPlanReshard:
    def test_phase_fault_fires_once(self):
        plan = FaultPlan(reshard_fail_at=("seed",))
        with pytest.raises(InjectedFault):
            plan.on_reshard_phase("seed")
        # second entry passes: the fault is one-shot per phase
        plan.on_reshard_phase("seed")
        plan.on_reshard_phase("flip")

    def test_fired_fault_is_tallied(self):
        plan = FaultPlan(reshard_fail_at="plan")
        with pytest.raises(InjectedFault):
            plan.on_reshard_phase("plan")
        assert plan.stats().get("reshard_phase_failures") == 1

"""Unit tests for aggregate operators (repro.aggregates.operators)."""

import math

import numpy as np
import pytest

from repro.aggregates.operators import SUM, PRODUCT, AggregateCube, InvertibleOperator
from repro.baselines.naive import NaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError


class TestInvertibleOperator:
    def test_sum_inverse_law(self):
        assert SUM.satisfies_inverse_law(7, 3)
        assert SUM.combine(2, 3) == 5
        assert SUM.invert(5, 3) == 2
        assert SUM.identity == 0

    def test_product_inverse_law(self):
        assert PRODUCT.satisfies_inverse_law(6.0, 2.0)
        assert PRODUCT.identity == 1

    def test_custom_operator(self):
        xor = InvertibleOperator("xor", lambda a, b: a ^ b, lambda a, b: a ^ b, 0)
        assert xor.satisfies_inverse_law(0b1010, 0b0110)


class TestAggregateCube:
    @pytest.fixture
    def sales(self, rng):
        values = rng.integers(0, 100, size=(12, 12))
        counts = rng.integers(0, 5, size=(12, 12))
        values = np.where(counts > 0, values, 0)
        return values, counts

    def test_range_sum(self, sales):
        values, counts = sales
        agg = AggregateCube(values, counts, box_size=4)
        assert agg.range_sum((2, 2), (9, 9)) == values[2:10, 2:10].sum()

    def test_range_count(self, sales):
        values, counts = sales
        agg = AggregateCube(values, counts, box_size=4)
        assert agg.range_count((0, 0), (11, 11)) == counts.sum()

    def test_range_average(self, sales):
        values, counts = sales
        agg = AggregateCube(values, counts, box_size=4)
        expected = values[1:5, 1:5].sum() / counts[1:5, 1:5].sum()
        assert agg.range_average((1, 1), (4, 4)) == pytest.approx(expected)

    def test_average_of_empty_region_is_nan(self):
        values = np.zeros((6, 6))
        agg = AggregateCube(values, np.zeros((6, 6), dtype=int), box_size=3)
        assert math.isnan(agg.range_average((0, 0), (5, 5)))

    def test_default_counts_from_nonzero(self):
        values = np.array([[5, 0], [0, 2]])
        agg = AggregateCube(values, box_size=1)
        assert agg.range_count((0, 0), (1, 1)) == 2

    def test_counts_shape_mismatch(self):
        with pytest.raises(RangeError):
            AggregateCube(np.ones((3, 3)), np.ones((2, 2)))

    def test_alternate_backend(self, sales):
        values, counts = sales
        agg = AggregateCube(values, counts, method=NaiveCube)
        assert isinstance(agg.sums, NaiveCube)
        assert agg.range_sum((0, 0), (11, 11)) == values.sum()

    def test_default_backend_is_rps(self, sales):
        values, counts = sales
        agg = AggregateCube(values, counts)
        assert isinstance(agg.sums, RelativePrefixSumCube)


class TestRollingAggregates:
    @pytest.fixture
    def daily(self):
        # 1 x 10 "time series" cube: sales by day.
        values = np.array([[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]])
        counts = np.ones_like(values)
        return AggregateCube(values, counts, box_size=3)

    def test_rolling_sum(self, daily):
        windows = daily.rolling_sum(1, 3, (0, 0), (0, 9))
        # Window starting at day 0 covers days 0-2: 1+2+3 = 6, etc.
        assert windows[0] == 6
        assert windows[1] == 9
        # final windows clip at the boundary
        assert windows[-1] == 10
        assert windows[-2] == 19

    def test_rolling_average(self, daily):
        averages = daily.rolling_average(1, 2, (0, 0), (0, 9))
        assert averages[0] == pytest.approx(1.5)
        assert averages[-1] == pytest.approx(10.0)

    def test_rolling_window_validation(self, daily):
        with pytest.raises(RangeError):
            daily.rolling_sum(1, 0, (0, 0), (0, 9))
        with pytest.raises(RangeError):
            daily.rolling_average(1, -2, (0, 0), (0, 9))

    def test_rolling_average_empty_windows_nan(self):
        values = np.array([[0, 0, 5]])
        counts = np.array([[0, 0, 1]])
        agg = AggregateCube(values, counts, box_size=2)
        averages = agg.rolling_average(1, 1, (0, 0), (0, 2))
        assert math.isnan(averages[0])
        assert averages[2] == pytest.approx(5.0)


class TestRecordRetract:
    def test_record_updates_both_structures(self, rng):
        values = rng.integers(0, 10, size=(8, 8)).astype(float)
        agg = AggregateCube(values, np.ones((8, 8), dtype=int), box_size=3)
        total = agg.range_sum((0, 0), (7, 7))
        count = agg.range_count((0, 0), (7, 7))
        agg.record((3, 3), 25.0)
        assert agg.range_sum((0, 0), (7, 7)) == pytest.approx(total + 25.0)
        assert agg.range_count((0, 0), (7, 7)) == count + 1

    def test_retract_is_inverse_of_record(self, rng):
        values = rng.integers(0, 10, size=(8, 8)).astype(float)
        agg = AggregateCube(values, np.ones((8, 8), dtype=int), box_size=3)
        before_sum = agg.range_sum((0, 0), (7, 7))
        before_count = agg.range_count((0, 0), (7, 7))
        agg.record((2, 5), 13.0)
        agg.retract((2, 5), 13.0)
        assert agg.range_sum((0, 0), (7, 7)) == pytest.approx(before_sum)
        assert agg.range_count((0, 0), (7, 7)) == before_count

    def test_record_multiple_occurrences(self):
        agg = AggregateCube(np.zeros((4, 4)), np.zeros((4, 4), dtype=int),
                            box_size=2)
        agg.record((1, 1), 30.0, occurrences=3)
        assert agg.range_average((1, 1), (1, 1)) == pytest.approx(10.0)

"""Unit tests for the sparse naive baseline (repro.baselines.sparse)."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.sparse import SparseNaiveCube
from repro.workloads import datagen
from tests.conftest import brute_range_sum, random_range


class TestQueries:
    def test_matches_dense_oracle(self, rng):
        a = datagen.sparse_cube((20, 20), density=0.1, seed=1)
        cube = SparseNaiveCube(a)
        for _ in range(40):
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_prefix_sum(self, rng):
        a = datagen.sparse_cube((15, 15), density=0.2, seed=2)
        cube = SparseNaiveCube(a)
        dense = NaiveCube(a)
        for t in [(0, 0), (7, 3), (14, 14)]:
            assert cube.prefix_sum(t) == dense.prefix_sum(t)

    def test_query_cost_is_nnz_not_volume(self):
        a = np.zeros((50, 50), dtype=np.int64)
        a[10, 10] = 5
        a[40, 40] = 7
        cube = SparseNaiveCube(a)
        before = cube.counter.snapshot()
        cube.range_sum((0, 0), (49, 49))
        # 2 stored cells scanned, not 2500
        assert before.delta(cube.counter).cells_read == 2

    def test_empty_cube(self):
        cube = SparseNaiveCube(np.zeros((8, 8)))
        assert cube.nonzero_cells == 0
        assert cube.range_sum((0, 0), (7, 7)) == 0


class TestUpdates:
    def test_o1_updates(self, rng):
        a = datagen.sparse_cube((20, 20), density=0.05, seed=3)
        cube = SparseNaiveCube(a)
        before = cube.counter.snapshot()
        cube.apply_delta((5, 5), 9)
        assert before.delta(cube.counter).cells_written == 1

    def test_cancelling_delta_frees_the_cell(self):
        a = np.zeros((6, 6), dtype=np.int64)
        a[2, 2] = 4
        cube = SparseNaiveCube(a)
        assert cube.nonzero_cells == 1
        cube.apply_delta((2, 2), -4)
        assert cube.nonzero_cells == 0
        assert cube.cell_value((2, 2)) == 0

    def test_update_creates_cell(self):
        cube = SparseNaiveCube(np.zeros((6, 6)))
        cube.apply_delta((3, 4), 2.5)
        assert cube.nonzero_cells == 1
        assert cube.cell_value((3, 4)) == pytest.approx(2.5)

    def test_updates_keep_queries_correct(self, rng):
        a = datagen.sparse_cube((12, 12), density=0.1, seed=4)
        cube = SparseNaiveCube(a)
        a = a.copy()
        for _ in range(30):
            cell = tuple(int(x) for x in rng.integers(0, 12, size=2))
            delta = int(rng.integers(-3, 4))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)


class TestStorage:
    def test_storage_is_nnz(self, rng):
        a = datagen.sparse_cube((30, 30), density=0.07, seed=5)
        cube = SparseNaiveCube(a)
        assert cube.storage_cells() == np.count_nonzero(a)
        assert cube.storage_cells() < a.size / 5

    def test_to_array_roundtrip(self, rng):
        a = datagen.sparse_cube((10, 14), density=0.15, seed=6)
        assert np.array_equal(SparseNaiveCube(a).to_array(), a)

    def test_set_semantics(self, rng):
        a = datagen.sparse_cube((8, 8), density=0.2, seed=7)
        cube = SparseNaiveCube(a)
        cube.update((1, 1), 42)
        assert cube.cell_value((1, 1)) == 42

    def test_verify_passes(self, rng):
        a = datagen.sparse_cube((10, 10), density=0.2, seed=8)
        SparseNaiveCube(a).verify(probes=15)

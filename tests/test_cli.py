"""Unit tests for the repro-bench CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 11):
            assert f"E{i}" in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "E3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "64" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "E1", "E5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 15" in out

    def test_run_with_csv(self, capsys, tmp_path):
        target = tmp_path / "csvs"
        assert main(["run", "E3", "--csv", str(target)]) == 0
        assert (target / "E3.csv").exists()
        assert "wrote E3" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["run", "E42"])


class TestDemo:
    def test_demo_walks_the_paper_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "168" in out          # the worked query result
        assert "16 cells" in out     # RPS update cost
        assert "64" in out           # prefix sum comparison


class TestIngest:
    def write_csv(self, path, rows):
        lines = ["x,y,sales"] + [f"{x},{y},{s}" for x, y, s in rows]
        path.write_text("\n".join(lines) + "\n")

    def test_csv_to_durable_cube(self, capsys, tmp_path):
        csv = tmp_path / "facts.csv"
        self.write_csv(csv, [(0, 0, 5.0), (1, 2, 3.0), (99, 0, 1.0)])
        assert main([
            "ingest", str(csv), "--state", str(tmp_path / "state"),
            "--dim", "x:0:3", "--dim", "y:0:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "created durable state" in out
        assert '"rows_applied": 2' in out
        assert '"rows_quarantined": 1' in out

    def test_rerun_resumes_not_doubles(self, capsys, tmp_path):
        import json

        import numpy as np

        from repro import CubeService, RelativePrefixSumCube

        csv = tmp_path / "facts.csv"
        self.write_csv(csv, [(0, 0, 5.0), (1, 2, 3.0)])
        state = tmp_path / "state"
        argv = ["ingest", str(csv), "--state", str(state),
                "--dim", "x:0:3", "--dim", "y:0:3"]
        assert main(argv) == 0
        capsys.readouterr()
        # the second run must fence on the checkpoint and apply nothing
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "recovered durable state" in out
        report = json.loads(out[out.index("{"):])
        assert report["rows_applied"] == 0
        assert report["offset"] == 2
        svc = CubeService.recover(state, RelativePrefixSumCube)
        try:
            array, _ = svc.snapshot_array()
        finally:
            svc.close()
        expected = np.zeros((4, 4))
        expected[0, 0] = 5.0
        expected[1, 2] = 3.0
        assert np.array_equal(array, expected)

    def test_missing_dim_is_an_ingest_error(self, tmp_path):
        from repro.errors import IngestError

        csv = tmp_path / "facts.csv"
        self.write_csv(csv, [(0, 0, 1.0)])
        with pytest.raises(IngestError):
            main(["ingest", str(csv), "--state", str(tmp_path / "s")])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_alias(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["all"])
        assert args.experiments == []

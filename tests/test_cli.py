"""Unit tests for the repro-bench CLI (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 11):
            assert f"E{i}" in out


class TestRun:
    def test_run_single(self, capsys):
        assert main(["run", "E3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "64" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "E1", "E5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 15" in out

    def test_run_with_csv(self, capsys, tmp_path):
        target = tmp_path / "csvs"
        assert main(["run", "E3", "--csv", str(target)]) == 0
        assert (target / "E3.csv").exists()
        assert "wrote E3" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["run", "E42"])


class TestDemo:
    def test_demo_walks_the_paper_example(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "168" in out          # the worked query result
        assert "16 cells" in out     # RPS update cost
        assert "64" in out           # prefix sum comparison


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_alias(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["all"])
        assert args.experiments == []

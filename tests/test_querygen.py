"""Unit tests for query-stream generators (repro.workloads.querygen)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import querygen


def assert_valid_range(shape, low, high):
    assert len(low) == len(high) == len(shape)
    for l, h, n in zip(low, high, shape):
        assert 0 <= l <= h < n


class TestRandomRanges:
    def test_count_and_validity(self):
        shape = (20, 30)
        ranges = list(querygen.random_ranges(shape, 50, seed=1))
        assert len(ranges) == 50
        for low, high in ranges:
            assert_valid_range(shape, low, high)

    def test_deterministic(self):
        a = list(querygen.random_ranges((10, 10), 20, seed=7))
        b = list(querygen.random_ranges((10, 10), 20, seed=7))
        assert a == b


class TestFixedExtent:
    def test_extent_respected(self):
        shape = (100,)
        for low, high in querygen.fixed_extent_ranges(shape, 0.25, 20, seed=2):
            assert high[0] - low[0] + 1 == 25

    def test_full_extent(self):
        for low, high in querygen.fixed_extent_ranges((10, 10), 1.0, 5):
            assert low == (0, 0)
            assert high == (9, 9)

    def test_minimum_width_one(self):
        for low, high in querygen.fixed_extent_ranges((100,), 0.001, 5):
            assert high[0] == low[0]

    def test_invalid_extent(self):
        with pytest.raises(WorkloadError):
            list(querygen.fixed_extent_ranges((10,), 0.0, 1))
        with pytest.raises(WorkloadError):
            list(querygen.fixed_extent_ranges((10,), 1.5, 1))


class TestPointQueries:
    def test_degenerate_ranges(self):
        for low, high in querygen.point_queries((9, 9), 30, seed=3):
            assert low == high
            assert_valid_range((9, 9), low, high)


class TestHotspot:
    def test_hot_queries_concentrate(self):
        shape = (100, 100)
        ranges = list(
            querygen.hotspot_ranges(
                shape, 200, hotspot_fraction=0.2, hot_probability=1.0, seed=4
            )
        )
        for low, high in ranges:
            assert_valid_range(shape, low, high)
            for l, h, n in zip(low, high, shape):
                base = (n - 20) // 2
                assert base <= l <= h < base + 20

    def test_cold_queries_roam(self):
        shape = (100,)
        ranges = list(
            querygen.hotspot_ranges(
                shape, 100, hot_probability=0.0, seed=5
            )
        )
        # with no hotspot bias, some queries start outside the center
        assert any(low[0] < 30 for low, _ in ranges)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(querygen.hotspot_ranges((10,), 1, hotspot_fraction=0))
        with pytest.raises(WorkloadError):
            list(querygen.hotspot_ranges((10,), 1, hot_probability=2))


class TestSlidingWindows:
    def test_window_positions(self):
        windows = list(querygen.sliding_windows((5, 10), axis=1, window=3))
        assert len(windows) == 8
        first_low, first_high = windows[0]
        assert first_low == (0, 0)
        assert first_high == (4, 2)
        last_low, last_high = windows[-1]
        assert last_low == (0, 7)
        assert last_high == (4, 9)

    def test_window_covers_full_other_axes(self):
        for low, high in querygen.sliding_windows((5, 10), axis=1, window=2):
            assert low[0] == 0 and high[0] == 4

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(querygen.sliding_windows((5, 10), axis=2, window=1))
        with pytest.raises(WorkloadError):
            list(querygen.sliding_windows((5, 10), axis=0, window=6))

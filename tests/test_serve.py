"""The serving layer: snapshot isolation, ordering, and lifecycle.

The crucial property is freedom from torn reads: a reader hammering the
service while the writer applies batches must only ever observe sums
consistent with a *complete* pre- or post-batch snapshot. The stress
test verifies this against exact per-version oracles — the snapshot
version returned with each read names the precise logical state, so
every observed value is checked against the matching brute-force oracle,
not merely against a set of plausible answers.
"""

import threading
import time

import numpy as np
import pytest

from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.serve import CubeService, ServiceClosedError

SHAPE = (24, 24)


def _make_workload(seed, n_batches, shape=SHAPE):
    """Seeded batches plus the oracle array after each batch prefix."""
    rng = np.random.default_rng(seed)
    array = rng.integers(0, 50, size=shape)
    oracles = [array.copy()]
    batches = []
    for _ in range(n_batches):
        state = oracles[-1].copy()
        batch = []
        for _ in range(int(rng.integers(1, 9))):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-9, 10)) or 3
            batch.append((cell, delta))
            state[cell] += delta
        batches.append(batch)
        oracles.append(state)
    probes_lo, probes_hi = [], []
    for _ in range(8):
        lo, hi = [], []
        for n in shape:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            lo.append(a)
            hi.append(b)
        probes_lo.append(lo)
        probes_hi.append(hi)
    lows = np.asarray(probes_lo, dtype=np.intp)
    highs = np.asarray(probes_hi, dtype=np.intp)
    expected = [
        np.array(
            [state[tuple(slice(l, h + 1) for l, h in zip(lo, hi))].sum()
             for lo, hi in zip(lows, highs)]
        )
        for state in oracles
    ]
    return array, batches, lows, highs, expected


class TestBasics:
    def test_reads_reflect_flushed_writes(self):
        array, batches, lows, highs, expected = _make_workload(1, 5)
        with CubeService(RelativePrefixSumCube, array) as svc:
            assert np.array_equal(
                svc.range_sum_many(lows, highs), expected[0]
            )
            for k, batch in enumerate(batches, start=1):
                seq = svc.submit_batch(batch)
                assert seq == k
                svc.flush()
                assert svc.version == k
                values, version = svc.query_many(lows, highs)
                assert version == k
                assert np.array_equal(values, expected[k])

    def test_scalar_reads_and_total(self):
        array, batches, _, _, _ = _make_workload(2, 3)
        with CubeService(PrefixSumCube, array) as svc:
            for batch in batches:
                svc.submit_batch(batch)
            svc.flush()
            final = array.copy()
            for batch in batches:
                for cell, delta in batch:
                    final[cell] += delta
            assert svc.total() == final.sum()
            assert svc.cell_value((3, 4)) == final[3, 4]
            assert svc.range_sum((0, 0), (5, 5)) == final[:6, :6].sum()
            assert svc.prefix_sum((5, 5)) == final[:6, :6].sum()

    def test_coalescing_merges_same_cell_deltas(self):
        array = np.zeros((4, 4), dtype=np.int64)
        with CubeService(RelativePrefixSumCube, array) as svc:
            svc.submit_batch([((1, 1), 5), ((1, 1), -2), ((2, 2), 7)])
            svc.flush()
            assert svc.cell_value((1, 1)) == 3
            assert svc.cell_value((2, 2)) == 7
            stats = svc.stats()
            assert stats["updates_submitted"] == 3
            assert stats["updates_applied"] == 2  # (1,1) pair coalesced
            assert stats["updates_coalesced"] == 1

    def test_closed_service_rejects_updates(self):
        svc = CubeService(PrefixSumCube, np.ones((3, 3)))
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit_delta((0, 0), 1)

    def test_close_drains_pending_updates(self):
        svc = CubeService(PrefixSumCube, np.zeros((6, 6), dtype=np.int64))
        for i in range(6):
            svc.submit_delta((i, i), i + 1)
        svc.close()
        assert svc.version == 6
        assert svc._front.method.total() == sum(range(1, 7))

    def test_metrics_wiring(self):
        array, batches, lows, highs, _ = _make_workload(3, 4)
        with CubeService(RelativePrefixSumCube, array) as svc:
            for batch in batches:
                svc.submit_batch(batch)
            svc.flush()
            svc.range_sum_many(lows, highs)
            svc.range_sum_many(lows, highs)
            stats = svc.stats()
            assert stats["queries_served"] == 2 * len(lows)
            assert stats["read_calls"] == 2
            assert stats["groups_applied"] == len(batches)
            assert stats["groups_pending"] == 0
            assert stats["read_latency"]["count"] == 2
            assert stats["apply_latency"]["count"] >= 1
            assert stats["read_latency"]["p95_s"] >= 0.0


class TestWriterDeath:
    """Genuine writer death (an injected crash — supervision quarantines
    mere poison groups, so killing the writer now takes a fault plan)."""

    @staticmethod
    def _dead_service():
        from repro.faults import FaultPlan

        svc = CubeService(
            PrefixSumCube,
            np.zeros((4, 4), dtype=np.int64),
            fault_plan=FaultPlan(seed=0, crash_at_group=1),
        )
        svc.submit_batch([((0, 0), 1)])
        return svc

    def test_submit_after_writer_death_raises(self):
        """A dead writer must fail fast at submit time — before the fix,
        submits kept enqueueing into a queue nothing would ever drain."""
        svc = self._dead_service()
        with pytest.raises(ServiceClosedError):
            svc.flush(timeout=10)
        with pytest.raises(ServiceClosedError):
            svc.submit_delta((0, 0), 1)
        with pytest.raises(ServiceClosedError):
            svc.submit_batch([((0, 0), 1)])
        with pytest.raises(ServiceClosedError):
            svc.close()

    def test_reads_after_writer_death_raise(self):
        svc = self._dead_service()
        with pytest.raises(ServiceClosedError):
            svc.flush(timeout=10)
        with pytest.raises(ServiceClosedError):
            svc.total()

    def test_writer_death_counted(self):
        svc = self._dead_service()
        with pytest.raises(ServiceClosedError):
            svc.flush(timeout=10)
        assert svc.stats()["writer_errors"] == 1


class TestStatsConsistency:
    def test_version_never_ahead_of_groups_applied(self):
        """The writer publishes the snapshot and the applied-group count
        atomically; before the fix, stats() polled between the two could
        observe ``version > groups_applied``."""
        array = np.zeros((16, 16), dtype=np.int64)
        violations = []
        stop = threading.Event()

        def poll(svc):
            while not stop.is_set():
                stats = svc.stats()
                if stats["version"] > stats["groups_applied"]:
                    violations.append(
                        (stats["version"], stats["groups_applied"])
                    )
                    return

        def read(svc):
            # keeps readers pinned to retiring snapshots, widening the
            # window between publish and the retired buffer's catch-up
            while not stop.is_set():
                svc.total()

        with CubeService(RelativePrefixSumCube, array) as svc:
            threads = [
                threading.Thread(target=poll, args=(svc,), daemon=True),
                threading.Thread(target=read, args=(svc,), daemon=True),
            ]
            for thread in threads:
                thread.start()
            for i in range(200):
                svc.submit_delta((i % 16, (i * 7) % 16), 1)
            svc.flush()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
                assert not thread.is_alive()
        assert not violations, (
            f"stats reported version {violations[0][0]} with only "
            f"{violations[0][1]} groups applied"
        )

    def test_reader_snapshot_never_behind_observed_stats_version(self):
        """Regression for the router's freshness contract: a reader that
        first observes ``stats()['version'] == v`` must then be served a
        snapshot stamped >= v. The query router keys cache freshness on
        exactly this handoff (observe the version, then read), so a
        stats() that runs ahead of the snapshot reads actually served
        would let a cache admit entries the backend cannot reproduce —
        an invisible staleness bug with no torn read to betray it."""
        array = np.zeros((16, 16), dtype=np.int64)
        violations = []
        stop = threading.Event()

        def observe_then_read(svc):
            while not stop.is_set():
                observed = svc.stats()["version"]
                _, read_version = svc.query_many([(0, 0)], [(15, 15)])
                if read_version < observed:
                    violations.append((observed, read_version))
                    return

        with CubeService(RelativePrefixSumCube, array) as svc:
            threads = [
                threading.Thread(
                    target=observe_then_read, args=(svc,), daemon=True
                )
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for i in range(200):
                svc.submit_delta((i % 16, (i * 3) % 16), 1)
            svc.flush()
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
                assert not thread.is_alive()
        assert not violations, (
            f"reader observed stats version {violations[0][0]} but was "
            f"then served snapshot version {violations[0][1]}"
        )

    def test_stats_after_flush_account_every_group(self):
        array = np.zeros((8, 8), dtype=np.int64)
        with CubeService(PrefixSumCube, array) as svc:
            for i in range(5):
                svc.submit_delta((i, i), 1)
            svc.flush()
            stats = svc.stats()
            assert stats["version"] == stats["groups_applied"] == 5
            assert stats["groups_pending"] == 0
            assert stats["updates_applied"] + stats["updates_coalesced"] == 5

    def test_stats_expose_queue_depth_and_wal_bytes(self, tmp_path):
        """Regression: the observability keys health monitors alarm on
        must exist in every stats() snapshot — ``queue_depth`` (the true
        submission backlog, including the retired buffer's catch-up) and
        ``wal_bytes_written``."""
        from repro.serve import DurabilityPolicy

        array = np.zeros((8, 8), dtype=np.int64)
        # no durability: the keys are still present (zeroed WAL bytes)
        with CubeService(PrefixSumCube, array) as svc:
            stats = svc.stats()
            assert stats["queue_depth"] == 0
            assert stats["wal_bytes_written"] == 0
            assert stats["wal_enabled"] is False
        with CubeService(
            RelativePrefixSumCube,
            array,
            durability=DurabilityPolicy(dir=tmp_path),
        ) as svc:
            for i in range(4):
                svc.submit_delta((i, i), 1)
            svc.flush()
            stats = svc.stats()
            assert stats["queue_depth"] == 0  # drained after flush
            assert stats["wal_bytes_written"] > 0
            assert stats["wal_enabled"] is True
            before = stats["wal_bytes_written"]
            svc.submit_delta((0, 0), 2)
            svc.flush()
            assert svc.stats()["wal_bytes_written"] > before


@pytest.mark.slow
class TestConcurrentStress:
    """N reader threads during continuous writer batches: every observed
    (values, version) pair must match the version's exact oracle."""

    READERS = 4
    BATCHES = 60

    def test_no_torn_reads_under_concurrent_batches(self):
        array, batches, lows, highs, expected = _make_workload(
            42, self.BATCHES
        )
        errors = []
        versions_seen = set()
        stop = threading.Event()

        def reader(svc):
            try:
                while not stop.is_set():
                    values, version = svc.query_many(lows, highs)
                    versions_seen.add(version)
                    if not np.array_equal(values, expected[version]):
                        errors.append(
                            f"version {version}: got {values.tolist()}, "
                            f"expected {expected[version].tolist()}"
                        )
                        return
            except Exception as exc:  # surface thread failures
                errors.append(repr(exc))

        with CubeService(
            RelativePrefixSumCube, array, method_kwargs={"box_size": 5}
        ) as svc:
            threads = [
                threading.Thread(target=reader, args=(svc,), daemon=True)
                for _ in range(self.READERS)
            ]
            for thread in threads:
                thread.start()
            for batch in batches:
                svc.submit_batch(batch)
                time.sleep(0.0005)  # let readers overlap the applies
            svc.flush()
            # final read is post-everything
            values, version = svc.query_many(lows, highs)
            assert version == self.BATCHES
            assert np.array_equal(values, expected[-1])
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
                assert not thread.is_alive(), "reader thread hung"
        assert not errors, errors[0]
        # the readers genuinely overlapped the write stream
        assert len(versions_seen) > 2, (
            f"readers only saw versions {sorted(versions_seen)}; "
            "no concurrency was exercised"
        )
        # and the writer's structures survived the churn intact
        svc._front.method.verify_structures()

    def test_interleaved_submit_and_read_from_many_threads(self):
        """Writers submitting from several threads, readers checking
        monotonic versions — totals must always equal a prefix state."""
        rng = np.random.default_rng(7)
        array = rng.integers(0, 20, size=(16, 16))
        # every group adds exactly +1 somewhere: total(version v) = base + v
        cells = [
            tuple(int(x) for x in rng.integers(0, 16, size=2))
            for _ in range(80)
        ]
        base = int(array.sum())
        errors = []

        def submitter(svc, chunk):
            try:
                for cell in chunk:
                    svc.submit_delta(cell, 1)
            except Exception as exc:
                errors.append(repr(exc))

        full_lo = np.array([[0, 0]], dtype=np.intp)
        full_hi = np.array([[15, 15]], dtype=np.intp)

        def reader(svc, stop):
            last_version = -1
            try:
                while not stop.is_set():
                    values, version = svc.query_many(full_lo, full_hi)
                    total = values[0]
                    if int(total) != base + version:
                        errors.append(
                            f"total {total} at version {version}"
                        )
                        return
                    if version < last_version:
                        errors.append("version went backwards")
                        return
                    last_version = version
            except Exception as exc:
                errors.append(repr(exc))

        stop = threading.Event()
        with CubeService(RelativePrefixSumCube, array) as svc:
            readers = [
                threading.Thread(
                    target=reader, args=(svc, stop), daemon=True
                )
                for _ in range(3)
            ]
            submitters = [
                threading.Thread(
                    target=submitter, args=(svc, cells[i::4]), daemon=True
                )
                for i in range(4)
            ]
            for thread in readers + submitters:
                thread.start()
            for thread in submitters:
                thread.join(timeout=10)
            svc.flush()
            stop.set()
            for thread in readers:
                thread.join(timeout=10)
            assert svc.version == len(cells)
            assert int(svc.total()) == base + len(cells)
        assert not errors, errors[0]


class TestServePathFixes:
    """Regression tests for the serve-path bug trio: the flush timeout
    message, flush waiters racing close/abandon, and the hardcoded
    self_check rebuild wait."""

    @staticmethod
    def _stalled_service(latency_seconds=1.2, method_cls=PrefixSumCube):
        """A service whose writer sleeps >= latency_seconds/2 applying
        group 1 (injected apply latency), one group per cycle."""
        from repro.faults import FaultPlan

        return CubeService(
            method_cls,
            np.zeros((6, 6), dtype=np.int64),
            fault_plan=FaultPlan(
                seed=0, latency_at=(1,), latency_seconds=latency_seconds
            ),
            max_groups_per_cycle=1,
        )

    def test_flush_timeout_reports_completed_not_applied(self):
        """The wait condition tracks _completed_groups; before the fix
        the timeout message reported _applied_groups, which runs one
        writer cycle ahead — the error could claim progress the waiter
        never observed."""
        svc = CubeService(PrefixSumCube, np.zeros((6, 6), dtype=np.int64))
        gate = threading.Event()
        original = svc.metrics.record_apply_latency

        def stall(seconds, swap_wait_seconds):
            # between the applied-groups publish and the completed-groups
            # bump: applied == 1 while the flush condition still sees 0
            gate.wait(timeout=10)
            original(seconds, swap_wait_seconds)

        svc.metrics.record_apply_latency = stall
        try:
            svc.submit_batch([((0, 0), 1)])
            with pytest.raises(TimeoutError) as excinfo:
                svc.flush(timeout=0.3)
            message = str(excinfo.value)
            assert "0/1" in message, message
            assert "completed" in message, message
            assert "applied" not in message, message
        finally:
            gate.set()
            svc.close()

    def test_abandon_wakes_blocked_flush_promptly(self):
        """A flush blocked in the state-lock wait while abandon() kills
        the writer must raise ServiceClosedError as soon as the writer
        exits — before the fix it slept out its whole timeout."""
        svc = self._stalled_service()
        svc.submit_batch([((0, 0), 1)])   # group 1: writer sleeps in apply
        svc.submit_batch([((1, 1), 2)])   # group 2: never applied
        caught = []

        def do_flush():
            try:
                svc.flush(timeout=30.0)
            except BaseException as error:  # noqa: BLE001
                caught.append(error)

        waiter = threading.Thread(target=do_flush)
        waiter.start()
        time.sleep(0.1)  # let the flush reach its wait
        start = time.monotonic()
        svc.abandon()
        waiter.join(timeout=10)
        elapsed = time.monotonic() - start
        assert not waiter.is_alive(), "flush waiter still blocked"
        assert elapsed < 10.0, f"flush took {elapsed:.1f}s to fail"
        assert caught and isinstance(caught[0], ServiceClosedError), caught
        assert "1/2" in str(caught[0])

    def test_flush_after_writer_exit_fails_immediately(self):
        svc = self._stalled_service()
        svc.submit_batch([((0, 0), 1)])
        svc.submit_batch([((1, 1), 2)])
        svc.abandon()
        start = time.monotonic()
        with pytest.raises(ServiceClosedError):
            svc.flush(timeout=30.0)
        assert time.monotonic() - start < 5.0

    def test_self_check_timeout_parameter_and_context(self):
        """self_check(repair=True) hardcoded a 300 s rebuild wait; it now
        takes a timeout and reports the elapsed wait on expiry."""
        svc = self._stalled_service(method_cls=RelativePrefixSumCube)
        try:
            svc.submit_batch([((0, 0), 1)])  # writer busy >= 0.6 s
            # corrupt the published snapshot's overlay (range sums go
            # wrong, to_array() stays right) so the check fails and the
            # repair path queues a rebuild behind the stalled cycle
            method = svc._front.method
            mask = next(iter(method.overlay._values))
            method.overlay._values[mask][...] += 1000
            with pytest.raises(TimeoutError) as excinfo:
                svc.self_check(repair=True, timeout=0.05)
            message = str(excinfo.value)
            assert "0.05" in message, message
            assert "waited" in message, message
        finally:
            svc.flush(timeout=10)
            svc.close()

    def test_self_check_deadline_caps_the_wait(self):
        from repro.deadline import Deadline

        svc = self._stalled_service(method_cls=RelativePrefixSumCube)
        try:
            svc.submit_batch([((0, 0), 1)])
            method = svc._front.method
            mask = next(iter(method.overlay._values))
            method.overlay._values[mask][...] += 1000
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                svc.self_check(repair=True, deadline=Deadline.after(0.05))
            assert time.monotonic() - start < 5.0
        finally:
            svc.flush(timeout=10)
            svc.close()


class TestFloatDeltaGroups:
    """Acked groups with float deltas must never be quarantined away.

    An int64-seeded cube receiving integral float64 deltas (exactly what
    WAL replay and cross-process clients produce) used to raise
    ``UFuncTypeError`` inside the incremental apply path; supervision
    then quarantined the group *after* it had been durably acked —
    silent loss. Delta coercion in the method base class fixes this;
    these tests pin the service-level contract.
    """

    def test_paced_float_delta_groups_apply_exactly(self):
        rng = np.random.default_rng(7)
        array = rng.integers(0, 50, size=SHAPE)
        oracle = np.asarray(array, dtype=np.float64).copy()
        with CubeService(
            RelativePrefixSumCube, array, max_groups_per_cycle=1
        ) as svc:
            # one group per cycle forces the incremental apply path —
            # the path that used to raise and quarantine
            for _ in range(40):
                group = []
                for _ in range(3):
                    cell = tuple(int(x) for x in rng.integers(0, 24, size=2))
                    group.append((cell, float(int(rng.integers(-9, 10)) or 1)))
                svc.submit_batch(group)
                for cell, delta in group:
                    oracle[cell] += delta
            svc.flush()
            assert svc.quarantined_groups() == ()
            assert svc.stats()["groups_quarantined"] == 0
            reconstructed, _ = svc.snapshot_array()
            assert np.array_equal(
                np.asarray(reconstructed, dtype=np.float64), oracle
            )

    def test_fractional_deltas_survive_via_promotion(self):
        array = np.zeros((8, 8), dtype=np.int64)
        with CubeService(
            RelativePrefixSumCube, array, max_groups_per_cycle=1
        ) as svc:
            svc.submit_batch([((1, 1), 0.25)])
            svc.submit_batch([((1, 1), 0.25)])
            svc.flush()
            assert svc.quarantined_groups() == ()
            assert float(svc.cell_value((1, 1))) == pytest.approx(0.5)

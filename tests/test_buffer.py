"""Unit tests for the LRU buffer pool (repro.storage.buffer)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_pool(capacity=2, pages=8, page_size=4):
    disk = SimulatedDisk(page_size=page_size)
    disk.allocate(pages)
    return disk, BufferPool(disk, capacity)


class TestCaching:
    def test_miss_then_hit(self):
        disk, pool = make_pool()
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.pages_read == 1

    def test_capacity_evicts_lru(self):
        disk, pool = make_pool(capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # evicts page 0
        assert pool.stats.evictions == 1
        pool.get_page(1)  # still cached
        assert pool.stats.hits == 1
        pool.get_page(0)  # must re-read
        assert pool.stats.misses == 4

    def test_access_refreshes_recency(self):
        disk, pool = make_pool(capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)       # 1 is now least recent
        pool.get_page(2)       # evicts 1
        pool.get_page(0)
        assert pool.stats.hits == 2  # the refresh and the final access

    def test_invalid_capacity(self):
        disk = SimulatedDisk(page_size=4)
        with pytest.raises(StorageError):
            BufferPool(disk, 0)


class TestWriteBack:
    def test_dirty_page_written_on_eviction(self):
        disk, pool = make_pool(capacity=1)
        frame = pool.get_page(0, for_write=True)
        frame[0] = 42.0
        pool.get_page(1)  # evicts dirty page 0
        assert disk.stats.pages_written == 1
        assert disk.read_page(0)[0] == 42.0

    def test_clean_page_evicted_without_write(self):
        disk, pool = make_pool(capacity=1)
        pool.get_page(0)
        pool.get_page(1)
        assert disk.stats.pages_written == 0

    def test_flush(self):
        disk, pool = make_pool(capacity=4)
        pool.get_page(0, for_write=True)[1] = 7.0
        pool.get_page(2, for_write=True)[2] = 9.0
        written = pool.flush()
        assert written == 2
        assert disk.read_page(0)[1] == 7.0
        assert disk.read_page(2)[2] == 9.0
        assert pool.flush() == 0  # nothing dirty anymore

    def test_drop_flushes_and_clears(self):
        disk, pool = make_pool(capacity=4)
        pool.get_page(0, for_write=True)[0] = 5.0
        pool.drop()
        assert pool.cached_pages == 0
        assert disk.read_page(0)[0] == 5.0
        pool.get_page(0)
        assert pool.stats.misses == 2  # cold again

    def test_mutation_without_for_write_lost_on_eviction(self):
        """Frames must be pinned dirty explicitly — undirty writes are
        discarded at eviction, as in a real buffer pool misuse."""
        disk, pool = make_pool(capacity=1)
        pool.get_page(0)[0] = 123.0  # not marked dirty
        pool.get_page(1)
        assert disk.read_page(0)[0] == 0.0


class TestStats:
    def test_hit_rate(self):
        disk, pool = make_pool()
        assert pool.stats.hit_rate == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_repr(self):
        _, pool = make_pool()
        assert "BufferPool" in repr(pool)

"""Tests for batch updates and the rebuild-vs-incremental ablation."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError
from repro.workloads import updategen
from tests.conftest import METHOD_CLASSES, brute_range_sum, random_range


def apply_to_oracle(oracle, updates):
    for cell, delta in updates:
        oracle[cell] += delta
    return oracle


class TestBatchCorrectness:
    @pytest.mark.parametrize("method_class", METHOD_CLASSES,
                             ids=lambda c: c.name)
    def test_batch_equals_sequential(self, rng, method_class):
        a = rng.integers(0, 20, size=(12, 12))
        updates = list(updategen.random_updates(a.shape, 30, seed=5))
        batched = method_class(a)
        batched.apply_batch(list(updates))
        oracle = apply_to_oracle(a.copy(), updates)
        assert np.array_equal(batched.to_array(), oracle)

    def test_empty_batch(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (6, 6)), box_size=3)
        assert cube.apply_batch([]) == 0

    def test_batch_returns_count(self, rng):
        cube = NaiveCube(rng.integers(0, 5, (6, 6)))
        assert cube.apply_batch([((0, 0), 1), ((5, 5), 2)]) == 2

    def test_duplicate_cells_accumulate(self, rng):
        cube = PrefixSumCube(rng.integers(0, 5, (6, 6)))
        base = cube.cell_value((2, 2))
        cube.apply_batch([((2, 2), 3), ((2, 2), 4)])
        assert cube.cell_value((2, 2)) == base + 7


class TestRpsStrategies:
    @pytest.fixture
    def cube_and_updates(self, rng):
        a = rng.integers(0, 20, size=(32, 32))
        updates = list(updategen.random_updates(a.shape, 50, seed=6))
        return a, updates

    def test_incremental_and_rebuild_agree(self, cube_and_updates):
        a, updates = cube_and_updates
        incremental = RelativePrefixSumCube(a, box_size=8)
        rebuilt = RelativePrefixSumCube(a, box_size=8)
        incremental.apply_batch(list(updates), strategy="incremental")
        rebuilt.apply_batch(list(updates), strategy="rebuild")
        assert np.array_equal(incremental.to_array(), rebuilt.to_array())
        for mask in incremental.overlay.masks():
            assert np.array_equal(
                incremental.overlay.values_array(mask),
                rebuilt.overlay.values_array(mask),
            )

    def test_rebuild_cost_independent_of_batch_size(self, cube_and_updates):
        a, updates = cube_and_updates
        costs = []
        for m in (5, 50):
            cube = RelativePrefixSumCube(a, box_size=8)
            before = cube.counter.snapshot()
            cube.apply_batch(list(updates[:m]), strategy="rebuild")
            costs.append(before.delta(cube.counter).cells_written)
        assert costs[0] == costs[1]

    def test_incremental_cost_linear_in_batch_size(self, cube_and_updates):
        a, updates = cube_and_updates
        costs = []
        for m in (10, 40):
            cube = RelativePrefixSumCube(a, box_size=8)
            before = cube.counter.snapshot()
            cube.apply_batch(list(updates[:m]), strategy="incremental")
            costs.append(before.delta(cube.counter).cells_written)
        assert costs[1] > 2 * costs[0]

    def test_auto_picks_incremental_for_tiny_batches(self, cube_and_updates):
        a, updates = cube_and_updates
        cube = RelativePrefixSumCube(a, box_size=8)
        rebuild_cost = cube.storage_cells()
        before = cube.counter.snapshot()
        cube.apply_batch(list(updates[:2]), strategy="auto")
        assert before.delta(cube.counter).cells_written < rebuild_cost

    def test_auto_picks_rebuild_for_huge_batches(self, rng):
        a = rng.integers(0, 20, size=(16, 16))
        cube = RelativePrefixSumCube(a, box_size=4)
        # adversarial updates, each near the worst case
        updates = [((1, 1), 1)] * 300
        before = cube.counter.snapshot()
        cube.apply_batch(updates, strategy="auto")
        written = before.delta(cube.counter).cells_written
        # rebuild cost, not 300 x worst-case cascades
        assert written == cube.storage_cells()
        assert cube.cell_value((1, 1)) == a[1, 1] + 300

    def test_unknown_strategy_rejected(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (6, 6)), box_size=3)
        with pytest.raises(RangeError):
            cube.apply_batch([((0, 0), 1)], strategy="magic")

    def test_queries_correct_after_auto_batches(self, rng):
        a = rng.integers(0, 20, size=(20, 20))
        cube = RelativePrefixSumCube(a, box_size=5)
        oracle = a.copy()
        for seed in range(4):
            updates = list(
                updategen.random_updates(a.shape, 25, seed=seed)
            )
            cube.apply_batch(list(updates))
            apply_to_oracle(oracle, updates)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(
                oracle, low, high
            )


VECTOR_SHAPES_AND_BOXES = [
    ((23,), 4),             # d=1, partial trailing box
    ((17, 6), (5, 3)),      # d=2, non-square, per-axis boxes
    ((9, 14, 5), 3),        # d=3, odd sizes
    ((5, 3, 6, 4), 2),      # d=4
]


def _update_batch(rng, shape, m):
    """(m+5, d) rows with duplicates and one explicit zero delta."""
    idx = np.stack(
        [rng.integers(0, n, size=m) for n in shape], axis=1
    ).astype(np.intp)
    idx = np.vstack([idx, idx[:5]])  # duplicate cells accumulate
    deltas = rng.integers(-9, 10, size=len(idx)).astype(np.int64)
    deltas[2] = 0  # zero deltas still travel (and charge) like the loop
    return idx, deltas


class TestVectorizedStrategy:
    """The vectorized engine must be indistinguishable from the looped
    incremental path: same values, same structures byte-for-byte, same
    counter ledger (totals and per structure)."""

    @pytest.mark.parametrize(
        "shape,box", VECTOR_SHAPES_AND_BOXES, ids=lambda v: str(v)
    )
    def test_vectorized_matches_incremental_exactly(self, rng, shape, box):
        array = rng.integers(-50, 50, size=shape)
        looped = RelativePrefixSumCube(array, box_size=box)
        vectorized = RelativePrefixSumCube(array, box_size=box)
        idx, deltas = _update_batch(rng, shape, 40)

        loop_before = looped.counter.snapshot()
        looped.apply_batch_array(idx, deltas, strategy="incremental")
        loop_cost = loop_before.delta(looped.counter)
        vec_before = vectorized.counter.snapshot()
        vectorized.apply_batch_array(idx, deltas, strategy="vectorized")
        vec_cost = vec_before.delta(vectorized.counter)

        assert np.array_equal(looped.rp.array(), vectorized.rp.array())
        for mask in looped.overlay.masks():
            assert np.array_equal(
                looped.overlay.values_array(mask),
                vectorized.overlay.values_array(mask),
            ), f"overlay subset {mask:#b} diverged"
        assert loop_cost.cells_written == vec_cost.cells_written
        assert loop_cost.cells_read == vec_cost.cells_read
        assert (
            looped.counter.by_structure == vectorized.counter.by_structure
        )
        vectorized.verify_structures()

    @pytest.mark.parametrize(
        "shape,box", VECTOR_SHAPES_AND_BOXES, ids=lambda v: str(v)
    )
    def test_vectorized_through_list_api(self, rng, shape, box):
        array = rng.integers(-20, 20, size=shape)
        cube = RelativePrefixSumCube(array, box_size=box)
        idx, deltas = _update_batch(rng, shape, 25)
        updates = [
            (tuple(int(c) for c in row), int(dv))
            for row, dv in zip(idx, deltas)
        ]
        cube.apply_batch(updates, strategy="vectorized")
        oracle = array.astype(np.int64)
        np.add.at(oracle, tuple(idx.T), deltas)
        assert np.array_equal(cube.to_array(), oracle)
        cube.verify_structures()

    def test_all_zero_coalesced_deltas_are_a_noop_in_values(self, rng):
        """Deltas that cancel pairwise leave every structure unchanged
        but still charge the cascade cells (the loop would too)."""
        array = rng.integers(0, 30, size=(18, 18))
        cube = RelativePrefixSumCube(array, box_size=4)
        rp_before = cube.rp.array()
        idx = np.array([[3, 5], [3, 5], [10, 2], [10, 2]], dtype=np.intp)
        deltas = np.array([7, -7, 4, -4], dtype=np.int64)
        before = cube.counter.snapshot()
        cube.apply_batch_array(idx, deltas, strategy="vectorized")
        assert before.delta(cube.counter).cells_written > 0
        assert np.array_equal(cube.rp.array(), rp_before)
        assert np.array_equal(cube.to_array(), array)
        cube.verify_structures()

    def test_update_cost_many_matches_scalar_breakdown(self, rng):
        array = rng.integers(0, 9, size=(19, 13))
        cube = RelativePrefixSumCube(array, box_size=(4, 3))
        idx = np.stack(
            [rng.integers(0, n, size=30) for n in array.shape], axis=1
        )
        costs = cube.update_cost_many(idx)
        for row, cost in zip(idx, costs):
            breakdown = cube.update_cost_breakdown(tuple(int(c) for c in row))
            assert int(cost) == breakdown["total"], tuple(row)


class TestAutoStrategySelection:
    """``auto`` = logical cost model (incremental-vs-rebuild semantics)
    nested with the wall-clock model (looped-vs-vectorized execution)."""

    @pytest.fixture
    def cube(self, rng):
        return RelativePrefixSumCube(
            rng.integers(0, 9, size=(128, 128)), box_size=8
        )

    def test_tiny_batches_stay_looped(self, cube, rng):
        idx = np.stack(
            [rng.integers(0, 128, size=5) for _ in range(2)], axis=1
        )
        assert cube.choose_batch_strategy(idx) == "incremental"

    def test_medium_batches_go_vectorized(self, cube):
        # cheap cascades (high coordinates), enough rows that one
        # whole-structure pass beats m interpreter round-trips
        idx = np.full((60, 2), 127, dtype=np.intp)
        assert cube.choose_batch_strategy(idx) == "vectorized"

    def test_huge_expensive_batches_rebuild(self, cube):
        idx = np.ones((500, 2), dtype=np.intp)  # near-worst-case cascades
        assert cube.choose_batch_strategy(idx) == "rebuild"

    def test_crossover_threshold_is_the_documented_model(self, cube):
        pass_cells = (
            cube.rp.storage_cells() + cube.overlay.allocated_cells()
        )
        threshold = -(-pass_cells // cube.VECTORIZED_CELLS_PER_CASCADE)
        below = np.full((threshold - 1, 2), 127, dtype=np.intp)
        at = np.full((threshold, 2), 127, dtype=np.intp)
        assert cube.choose_batch_strategy(below) == "incremental"
        assert cube.choose_batch_strategy(at) == "vectorized"

    def test_auto_array_path_applies_correctly(self, rng):
        array = rng.integers(0, 9, size=(64, 64))
        cube = RelativePrefixSumCube(array, box_size=8)
        idx = np.stack(
            [rng.integers(0, 64, size=200) for _ in range(2)], axis=1
        )
        deltas = rng.integers(-5, 6, size=200).astype(np.int64)
        cube.apply_batch_array(idx, deltas)  # auto
        oracle = array.astype(np.int64)
        np.add.at(oracle, tuple(idx.T), deltas)
        assert np.array_equal(cube.to_array(), oracle)
        cube.verify_structures()

    def test_unknown_strategy_rejected_on_array_path(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (6, 6)), box_size=3)
        with pytest.raises(RangeError):
            cube.apply_batch_array(
                np.zeros((1, 2), dtype=np.intp), [1], strategy="magic"
            )
        with pytest.raises(RangeError):  # checked even for empty batches
            cube.apply_batch_array(
                np.empty((0, 2), dtype=np.intp), [], strategy="magic"
            )


class TestPrefixSumBatch:
    def test_one_pass_cost(self, rng):
        """However many updates, the PS batch costs one n^d pass."""
        a = rng.integers(0, 20, size=(32, 32))
        for m in (1, 100):
            cube = PrefixSumCube(a)
            updates = list(updategen.random_updates(a.shape, m, seed=m))
            before = cube.counter.snapshot()
            cube.apply_batch(updates)
            assert before.delta(cube.counter).cells_written == a.size

    def test_batch_beats_sequential_for_daily_loads(self, rng):
        """The daily-batch scenario: folding the batch is far cheaper
        than replaying it update by update."""
        a = rng.integers(0, 20, size=(32, 32))
        updates = list(updategen.random_updates(a.shape, 64, seed=9))
        sequential = PrefixSumCube(a)
        for cell, delta in updates:
            sequential.apply_delta(cell, delta)
        batched = PrefixSumCube(a)
        batched.apply_batch(list(updates))
        assert (
            batched.counter.cells_written
            < sequential.counter.cells_written / 5
        )
        assert np.array_equal(batched.prefix_array(),
                              sequential.prefix_array())

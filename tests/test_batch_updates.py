"""Tests for batch updates and the rebuild-vs-incremental ablation."""

import numpy as np
import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import RangeError
from repro.workloads import updategen
from tests.conftest import METHOD_CLASSES, brute_range_sum, random_range


def apply_to_oracle(oracle, updates):
    for cell, delta in updates:
        oracle[cell] += delta
    return oracle


class TestBatchCorrectness:
    @pytest.mark.parametrize("method_class", METHOD_CLASSES,
                             ids=lambda c: c.name)
    def test_batch_equals_sequential(self, rng, method_class):
        a = rng.integers(0, 20, size=(12, 12))
        updates = list(updategen.random_updates(a.shape, 30, seed=5))
        batched = method_class(a)
        batched.apply_batch(list(updates))
        oracle = apply_to_oracle(a.copy(), updates)
        assert np.array_equal(batched.to_array(), oracle)

    def test_empty_batch(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (6, 6)), box_size=3)
        assert cube.apply_batch([]) == 0

    def test_batch_returns_count(self, rng):
        cube = NaiveCube(rng.integers(0, 5, (6, 6)))
        assert cube.apply_batch([((0, 0), 1), ((5, 5), 2)]) == 2

    def test_duplicate_cells_accumulate(self, rng):
        cube = PrefixSumCube(rng.integers(0, 5, (6, 6)))
        base = cube.cell_value((2, 2))
        cube.apply_batch([((2, 2), 3), ((2, 2), 4)])
        assert cube.cell_value((2, 2)) == base + 7


class TestRpsStrategies:
    @pytest.fixture
    def cube_and_updates(self, rng):
        a = rng.integers(0, 20, size=(32, 32))
        updates = list(updategen.random_updates(a.shape, 50, seed=6))
        return a, updates

    def test_incremental_and_rebuild_agree(self, cube_and_updates):
        a, updates = cube_and_updates
        incremental = RelativePrefixSumCube(a, box_size=8)
        rebuilt = RelativePrefixSumCube(a, box_size=8)
        incremental.apply_batch(list(updates), strategy="incremental")
        rebuilt.apply_batch(list(updates), strategy="rebuild")
        assert np.array_equal(incremental.to_array(), rebuilt.to_array())
        for mask in incremental.overlay.masks():
            assert np.array_equal(
                incremental.overlay.values_array(mask),
                rebuilt.overlay.values_array(mask),
            )

    def test_rebuild_cost_independent_of_batch_size(self, cube_and_updates):
        a, updates = cube_and_updates
        costs = []
        for m in (5, 50):
            cube = RelativePrefixSumCube(a, box_size=8)
            before = cube.counter.snapshot()
            cube.apply_batch(list(updates[:m]), strategy="rebuild")
            costs.append(before.delta(cube.counter).cells_written)
        assert costs[0] == costs[1]

    def test_incremental_cost_linear_in_batch_size(self, cube_and_updates):
        a, updates = cube_and_updates
        costs = []
        for m in (10, 40):
            cube = RelativePrefixSumCube(a, box_size=8)
            before = cube.counter.snapshot()
            cube.apply_batch(list(updates[:m]), strategy="incremental")
            costs.append(before.delta(cube.counter).cells_written)
        assert costs[1] > 2 * costs[0]

    def test_auto_picks_incremental_for_tiny_batches(self, cube_and_updates):
        a, updates = cube_and_updates
        cube = RelativePrefixSumCube(a, box_size=8)
        rebuild_cost = cube.storage_cells()
        before = cube.counter.snapshot()
        cube.apply_batch(list(updates[:2]), strategy="auto")
        assert before.delta(cube.counter).cells_written < rebuild_cost

    def test_auto_picks_rebuild_for_huge_batches(self, rng):
        a = rng.integers(0, 20, size=(16, 16))
        cube = RelativePrefixSumCube(a, box_size=4)
        # adversarial updates, each near the worst case
        updates = [((1, 1), 1)] * 300
        before = cube.counter.snapshot()
        cube.apply_batch(updates, strategy="auto")
        written = before.delta(cube.counter).cells_written
        # rebuild cost, not 300 x worst-case cascades
        assert written == cube.storage_cells()
        assert cube.cell_value((1, 1)) == a[1, 1] + 300

    def test_unknown_strategy_rejected(self, rng):
        cube = RelativePrefixSumCube(rng.integers(0, 5, (6, 6)), box_size=3)
        with pytest.raises(RangeError):
            cube.apply_batch([((0, 0), 1)], strategy="magic")

    def test_queries_correct_after_auto_batches(self, rng):
        a = rng.integers(0, 20, size=(20, 20))
        cube = RelativePrefixSumCube(a, box_size=5)
        oracle = a.copy()
        for seed in range(4):
            updates = list(
                updategen.random_updates(a.shape, 25, seed=seed)
            )
            cube.apply_batch(list(updates))
            apply_to_oracle(oracle, updates)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(
                oracle, low, high
            )


class TestPrefixSumBatch:
    def test_one_pass_cost(self, rng):
        """However many updates, the PS batch costs one n^d pass."""
        a = rng.integers(0, 20, size=(32, 32))
        for m in (1, 100):
            cube = PrefixSumCube(a)
            updates = list(updategen.random_updates(a.shape, m, seed=m))
            before = cube.counter.snapshot()
            cube.apply_batch(updates)
            assert before.delta(cube.counter).cells_written == a.size

    def test_batch_beats_sequential_for_daily_loads(self, rng):
        """The daily-batch scenario: folding the batch is far cheaper
        than replaying it update by update."""
        a = rng.integers(0, 20, size=(32, 32))
        updates = list(updategen.random_updates(a.shape, 64, seed=9))
        sequential = PrefixSumCube(a)
        for cell, delta in updates:
            sequential.apply_delta(cell, delta)
        batched = PrefixSumCube(a)
        batched.apply_batch(list(updates))
        assert (
            batched.counter.cells_written
            < sequential.counter.cells_written / 5
        )
        assert np.array_equal(batched.prefix_array(),
                              sequential.prefix_array())

"""Unit tests for the overlay structure (repro.core.overlay)."""

import itertools

import numpy as np
import pytest

from repro import paper
from repro.core.overlay import Overlay, _block_lengths, _exclusive_blocked_cumsum
from repro.errors import RangeError
from repro.metrics.counters import AccessCounter


def brute_stored(array, box_size, cell):
    """Oracle for a stored overlay value (DESIGN.md Section 1).

    Z = anchor-aligned coordinates of the cell; the value is
    prod_{j not in Z}(a_j, c_j] x (prod_{j in Z}[0, a_j] - prod_{j in Z}{a_j}).
    """
    k = box_size
    anchor = tuple((c // k) * k for c in cell)
    z = [j for j, c in enumerate(cell) if c % k == 0]
    s1 = tuple(
        slice(0, anchor[j] + 1) if j in z else slice(anchor[j] + 1, cell[j] + 1)
        for j in range(array.ndim)
    )
    s2 = tuple(
        slice(anchor[j], anchor[j] + 1) if j in z
        else slice(anchor[j] + 1, cell[j] + 1)
        for j in range(array.ndim)
    )
    return array[s1].sum() - array[s2].sum()


class TestExclusiveBlockedCumsum:
    def test_zero_at_block_starts(self):
        a = np.arange(1, 10)
        out = _exclusive_blocked_cumsum(a, 0, 3)
        assert out[0] == out[3] == out[6] == 0

    def test_values(self):
        a = np.arange(1, 10)  # 1..9
        out = _exclusive_blocked_cumsum(a, 0, 3)
        assert out.tolist() == [0, 2, 5, 0, 5, 11, 0, 8, 17]


class TestAnchors:
    def test_paper_anchor_values(self, paper_cube):
        overlay = Overlay(paper_cube, paper.BOX_SIZE)
        assert np.array_equal(
            overlay.anchors_array().astype(np.int64), paper.OVERLAY_ANCHORS
        )

    def test_anchor_is_prefix_minus_cell(self, rng):
        a = rng.integers(0, 10, size=(12, 12))
        overlay = Overlay(a, 4)
        for anchor in itertools.product((0, 4, 8), repeat=2):
            expected = (
                a[: anchor[0] + 1, : anchor[1] + 1].sum() - a[anchor]
            )
            assert overlay.anchor_value(anchor) == expected

    def test_anchor_lookup_rejects_non_anchor(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        with pytest.raises(RangeError):
            overlay.anchor_value((1, 3))

    def test_first_anchor_is_zero(self, rng):
        a = rng.integers(0, 10, size=(8, 8))
        overlay = Overlay(a, 4)
        assert overlay.anchor_value((0, 0)) == 0


class TestBorderValues:
    def test_paper_row_borders(self, paper_cube):
        overlay = Overlay(paper_cube, paper.BOX_SIZE)
        for cell, expected in paper.BORDER_ROW_VALUES.items():
            assert overlay.border_value(cell) == expected, cell

    def test_paper_column_borders(self, paper_cube):
        overlay = Overlay(paper_cube, paper.BOX_SIZE)
        for cell, expected in paper.BORDER_COLUMN_VALUES.items():
            assert overlay.border_value(cell) == expected, cell

    def test_border_cumulative_property_2d(self, paper_cube):
        # X_2 includes X_1 (Figure 8): values grow along the face.
        overlay = Overlay(paper_cube, 3)
        x1 = overlay.border_value((6, 4))
        x2 = overlay.border_value((6, 5))
        col5_above = paper_cube[:6, 5].sum()
        assert x2 == x1 + col5_above

    @pytest.mark.parametrize("shape,k", [
        ((9, 9), 3),
        ((10, 7), 3),
        ((8, 8, 8), 2),
        ((6, 5, 7), 3),
        ((5, 4, 3, 4), 2),
    ])
    def test_all_stored_values_match_bruteforce(self, rng, shape, k):
        a = rng.integers(0, 10, size=shape)
        overlay = Overlay(a, k)
        for cell in itertools.product(*(range(n) for n in shape)):
            z = [j for j, c in enumerate(cell) if c % k == 0]
            if not z:
                continue
            expected = brute_stored(a, k, cell)
            if len(z) == len(shape):
                got = overlay.anchor_value(cell)
            else:
                got = overlay.border_value(cell)
            assert got == expected, (cell, got, expected)

    def test_border_lookup_rejects_interior_cell(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        with pytest.raises(RangeError):
            overlay.border_value((1, 1))

    def test_border_lookup_rejects_anchor(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        with pytest.raises(RangeError):
            overlay.border_value((3, 3))


class TestPrefixContribution:
    def test_matches_prefix_minus_rp(self, rng):
        """overlay contribution + RP == full prefix sum, everywhere."""
        for shape, k in [((9, 9), 3), ((10, 7), 3), ((6, 6, 6), 2),
                         ((5, 4, 6), 3)]:
            a = rng.integers(0, 10, size=shape)
            overlay = Overlay(a, k)
            prefix = a.copy()
            for axis in range(a.ndim):
                prefix = np.cumsum(prefix, axis=axis)
            for t in itertools.product(*(range(n) for n in shape)):
                anchor = tuple((x // k) * k for x in t)
                rp = a[tuple(slice(x, y + 1) for x, y in zip(anchor, t))].sum()
                assert overlay.prefix_contribution(t) + rp == prefix[t], t

    def test_read_count_2d_interior(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        before = overlay.counter.snapshot()
        overlay.prefix_contribution((7, 5))
        # Paper's count for d=2: one anchor + two border values.
        assert before.delta(overlay.counter).cells_read == 3

    def test_read_count_bounded_by_2_to_d(self, rng):
        a = rng.integers(0, 5, size=(8, 8, 8))
        overlay = Overlay(a, 2)
        before = overlay.counter.snapshot()
        overlay.prefix_contribution((7, 7, 7))
        assert before.delta(overlay.counter).cells_read == 2**3 - 1

    def test_anchor_target_reads_one_value(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        before = overlay.counter.snapshot()
        overlay.prefix_contribution((3, 3))
        assert before.delta(overlay.counter).cells_read == 1


class TestUpdates:
    def test_paper_update_example(self, paper_cube):
        overlay = Overlay(paper_cube, paper.BOX_SIZE)
        touched = overlay.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        assert touched == paper.UPDATE_EXAMPLE_RPS_OVERLAY_CELLS
        for (r, c), value in paper.OVERLAY_CELLS_AFTER_UPDATE.items():
            if r % 3 == 0 and c % 3 == 0:
                assert overlay.anchor_value((r, c)) == value
            else:
                assert overlay.border_value((r, c)) == value

    def test_update_equals_rebuild(self, rng):
        """Incremental delta propagation == rebuilding from scratch."""
        for shape, k in [((9, 9), 3), ((10, 7), 3), ((6, 6, 6), 2)]:
            a = rng.integers(0, 10, size=shape)
            overlay = Overlay(a, k)
            for _ in range(12):
                cell = tuple(int(rng.integers(0, n)) for n in shape)
                delta = int(rng.integers(1, 5))
                a[cell] += delta
                overlay.apply_delta(cell, delta)
            fresh = Overlay(a, k)
            for mask in overlay.masks():
                assert np.array_equal(
                    overlay.values_array(mask), fresh.values_array(mask)
                ), (shape, k, mask)

    def test_update_at_anchor_touches_no_borders(self, paper_cube):
        """Paper Section 4.2: updating a cell directly under an anchor
        only changes other boxes' anchor values."""
        overlay = Overlay(paper_cube, 3)
        counter = overlay.counter
        overlay.apply_delta((0, 0), 1)
        assert counter.structure_written("overlay.border") == 0
        # anchors of all 8 other boxes change; own anchor excluded
        assert counter.structure_written("overlay.anchor") == 8

    def test_update_cost_prediction_matches_actual(self, rng):
        for shape, k in [((9, 9), 3), ((10, 10), 4), ((6, 6, 6), 2)]:
            a = rng.integers(0, 10, size=shape)
            overlay = Overlay(a, k)
            for _ in range(25):
                cell = tuple(int(rng.integers(0, n)) for n in shape)
                predicted = overlay.update_cost(cell)
                before = overlay.counter.snapshot()
                actual = overlay.apply_delta(cell, 1)
                written = before.delta(overlay.counter).cells_written
                assert predicted == actual == written, (shape, k, cell)

    def test_update_in_last_box_corner_touches_nothing(self):
        a = np.ones((9, 9), dtype=np.int64)
        overlay = Overlay(a, 3)
        # Cell (8, 8): nothing after it — no anchors, no borders change.
        assert overlay.apply_delta((8, 8), 5) == 0

    def test_worst_case_update_bounded_by_binomial(self, rng):
        """Worst-case overlay+RP update <= ((n/k) + k)^d (DESIGN.md)."""
        for n, d, k in [(64, 2, 8), (27, 3, 3), (16, 4, 4)]:
            a = rng.integers(0, 5, size=(n,) * d)
            overlay = Overlay(a, k)
            bound = (n // k + k) ** d
            for _ in range(20):
                cell = tuple(int(rng.integers(0, n)) for _ in range(d))
                rp_cells = int(
                    np.prod([k - c % k for c in cell])
                )
                assert overlay.update_cost(cell) + rp_cells <= bound


class TestStorage:
    def test_paper_storage_count_2d(self, paper_cube):
        overlay = Overlay(paper_cube, 3)
        # 9 boxes x (3^2 - 2^2) = 45
        assert overlay.paper_storage_cells() == 9 * 5
        assert overlay.storage_cells() == 9 * 5

    def test_storage_matches_paper_formula_3d(self, rng):
        a = rng.integers(0, 5, size=(8, 8, 8))
        overlay = Overlay(a, 2)
        # 64 boxes x (2^3 - 1^3) = 448
        assert overlay.storage_cells() == overlay.paper_storage_cells() == 448

    def test_storage_shrinks_with_box_size(self, rng):
        a = rng.integers(0, 10, size=(64, 64))
        small = Overlay(a, 4).storage_cells()
        large = Overlay(a, 16).storage_cells()
        assert large < small

    def test_allocated_at_least_used(self, rng):
        a = rng.integers(0, 5, size=(9, 9))
        overlay = Overlay(a, 3)
        assert overlay.allocated_cells() >= overlay.storage_cells()


class TestSharedCounter:
    def test_external_counter_is_charged(self, paper_cube):
        counter = AccessCounter()
        overlay = Overlay(paper_cube, 3, counter=counter)
        overlay.anchor_value((0, 0))
        overlay.border_value((3, 4))
        assert counter.cells_read == 2


def test_block_lengths_partial():
    assert _block_lengths(10, 3).tolist() == [3, 3, 3, 1]
    assert _block_lengths(9, 3).tolist() == [3, 3, 3]
    assert _block_lengths(2, 5).tolist() == [2]

"""Unit tests for page layouts (repro.storage.layout)."""

import itertools

import pytest

from repro.errors import StorageError
from repro.storage.layout import BoxAlignedLayout, RowMajorLayout


class TestRowMajorLayout:
    def test_page_count(self):
        layout = RowMajorLayout((4, 4), page_size=5)
        assert layout.page_count == 4  # ceil(16 / 5)

    def test_locate_sequence(self):
        layout = RowMajorLayout((2, 3), page_size=4)
        flats = [layout.locate((i, j)) for i in range(2) for j in range(3)]
        assert flats == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1)]

    def test_bijective(self):
        layout = RowMajorLayout((3, 4, 2), page_size=5)
        seen = set()
        for coord in itertools.product(range(3), range(4), range(2)):
            address = layout.locate(coord)
            assert address not in seen
            seen.add(address)

    def test_out_of_bounds(self):
        layout = RowMajorLayout((3, 3), page_size=2)
        with pytest.raises(StorageError):
            layout.locate((3, 0))

    def test_bad_page_size(self):
        with pytest.raises(StorageError):
            RowMajorLayout((3, 3), page_size=0)


class TestBoxAlignedLayout:
    def test_page_per_box(self):
        layout = BoxAlignedLayout((9, 9), box_size=3)
        assert layout.page_count == 9
        assert layout.page_size == 9

    def test_cells_of_one_box_share_a_page(self):
        layout = BoxAlignedLayout((9, 9), box_size=3)
        pages = {
            layout.locate((i, j))[0]
            for i in range(3, 6)
            for j in range(6, 9)
        }
        assert len(pages) == 1

    def test_distinct_boxes_distinct_pages(self):
        layout = BoxAlignedLayout((9, 9), box_size=3)
        pages = {
            layout.locate((3 * bi, 3 * bj))[0]
            for bi in range(3)
            for bj in range(3)
        }
        assert len(pages) == 9

    def test_slots_unique_within_page(self):
        layout = BoxAlignedLayout((6, 6), box_size=3)
        slots = {
            layout.locate((i, j))[1] for i in range(3) for j in range(3)
        }
        assert slots == set(range(9))

    def test_partial_boxes_padded(self):
        layout = BoxAlignedLayout((10, 10), box_size=3)
        assert layout.page_count == 16
        page, slot = layout.locate((9, 9))
        assert page == 15
        assert 0 <= slot < layout.page_size

    def test_page_of_box(self):
        layout = BoxAlignedLayout((9, 9), box_size=3)
        assert layout.page_of_box((0, 0)) == 0
        assert layout.page_of_box((2, 2)) == 8
        assert layout.page_of_box((1, 0)) == layout.locate((3, 0))[0]

    def test_3d(self):
        layout = BoxAlignedLayout((4, 4, 4), box_size=2)
        assert layout.page_count == 8
        assert layout.page_size == 8
        pages = {
            layout.locate(c)[0]
            for c in itertools.product(range(2), range(2), range(2))
        }
        assert pages == {0}

    def test_out_of_bounds(self):
        layout = BoxAlignedLayout((4, 4), box_size=2)
        with pytest.raises(StorageError):
            layout.locate((0, 4))

    def test_pages_for_cells(self):
        layout = BoxAlignedLayout((9, 9), box_size=3)
        pages = layout.pages_for_cells(iter([(0, 0), (1, 1), (8, 8)]))
        assert len(pages) == 2

"""Unit tests for the relative prefix array (repro.core.rp)."""

import numpy as np
import pytest

from repro import paper
from repro.core.rp import RelativePrefixArray
from repro.errors import RangeError


class TestConstruction:
    def test_paper_rp_table(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, paper.BOX_SIZE)
        assert np.array_equal(rp.array(), paper.ARRAY_RP)

    def test_value_definition(self, rng):
        a = rng.integers(0, 10, size=(10, 7))
        rp = RelativePrefixArray(a, 3)
        for i in range(10):
            for j in range(7):
                ai, aj = (i // 3) * 3, (j // 3) * 3
                assert rp.value((i, j)) == a[ai : i + 1, aj : j + 1].sum()

    def test_anchor_cells_equal_source(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        rp = RelativePrefixArray(a, 3)
        for i in (0, 3, 6):
            for j in (0, 3, 6):
                assert rp.value((i, j)) == a[i, j]


class TestCellValue:
    def test_recovers_source_cells(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        rp = RelativePrefixArray(a, 3)
        for idx in np.ndindex(9, 9):
            assert rp.cell_value(idx) == a[idx]

    def test_recovers_after_updates(self, rng):
        a = rng.integers(0, 10, size=(8, 8))
        rp = RelativePrefixArray(a, 3)
        for _ in range(10):
            cell = tuple(int(x) for x in rng.integers(0, 8, size=2))
            delta = int(rng.integers(1, 5))
            a[cell] += delta
            rp.apply_delta(cell, delta)
        for idx in np.ndindex(8, 8):
            assert rp.cell_value(idx) == a[idx]


class TestUpdates:
    def test_paper_update_cascade(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, paper.BOX_SIZE)
        written = rp.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        assert written == paper.UPDATE_EXAMPLE_RPS_RP_CELLS
        assert np.array_equal(rp.array(), paper.ARRAY_RP_AFTER_UPDATE)

    def test_cascade_never_leaves_box(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        rp = RelativePrefixArray(a, 3)
        before = rp.array()
        rp.apply_delta((4, 4), 7)
        after = rp.array()
        changed = np.argwhere(before != after)
        for i, j in changed:
            assert 3 <= i < 6 and 3 <= j < 6

    def test_update_at_box_corner_changes_one_cell(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        rp = RelativePrefixArray(a, 3)
        assert rp.apply_delta((5, 5), 1) == 1

    def test_update_at_anchor_changes_whole_box(self, rng):
        a = rng.integers(0, 10, size=(9, 9))
        rp = RelativePrefixArray(a, 3)
        assert rp.apply_delta((3, 3), 1) == 9

    def test_update_in_partial_box(self, rng):
        a = rng.integers(0, 10, size=(10, 10))
        rp = RelativePrefixArray(a, 3)
        # box anchored at (9, 9) is 1x1
        assert rp.apply_delta((9, 9), 1) == 1
        assert rp.value((9, 9)) == a[9, 9] + 1

    def test_update_equals_rebuild(self, rng):
        a = rng.integers(0, 10, size=(7, 11))
        rp = RelativePrefixArray(a, 4)
        for _ in range(15):
            cell = tuple(
                int(rng.integers(0, n)) for n in a.shape
            )
            delta = int(rng.integers(-3, 4))
            a[cell] += delta
            rp.apply_delta(cell, delta)
        fresh = RelativePrefixArray(a, 4)
        assert np.array_equal(rp.array(), fresh.array())


class TestAccounting:
    def test_reads_charged(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, 3)
        rp.value((4, 4))
        assert rp.counter.structure_read("RP") == 1

    def test_writes_charged(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, 3)
        rp.apply_delta((1, 1), 1)
        assert rp.counter.structure_written("RP") == 4

    def test_storage_equals_source_size(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, 3)
        assert rp.storage_cells() == paper_cube.size


class TestValidation:
    def test_out_of_bounds_lookup(self, paper_cube):
        rp = RelativePrefixArray(paper_cube, 3)
        with pytest.raises(RangeError):
            rp.value((9, 0))

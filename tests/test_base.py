"""Unit tests for the method interface (repro.core.base)."""

import numpy as np
import pytest

from repro.core.base import RangeSumMethod
from repro.errors import DimensionError


class TestConstruction:
    def test_zero_dim_rejected(self, method_class):
        with pytest.raises(DimensionError):
            method_class(np.array(5))

    def test_empty_rejected(self, method_class):
        with pytest.raises(DimensionError):
            method_class(np.zeros((0, 3)))

    def test_non_numeric_rejected(self, method_class):
        with pytest.raises(TypeError):
            method_class(np.array(["a", "b"]))

    def test_int_input_promoted_to_int64(self, method_class):
        cube = method_class(np.arange(8, dtype=np.int8))
        assert cube.total() == 28  # would overflow int8 semantics otherwise

    def test_float_input_stays_float(self, method_class):
        cube = method_class(np.ones((4, 4), dtype=np.float32))
        assert float(cube.total()) == pytest.approx(16.0)

    def test_shape_metadata(self, method_class):
        cube = method_class(np.ones((3, 4, 5)))
        assert cube.shape == (3, 4, 5)
        assert cube.ndim == 3


class TestSharedBehaviour:
    def test_total_equals_full_range(self, method_class, rng):
        a = rng.integers(0, 9, size=(7, 7))
        cube = method_class(a)
        assert cube.total() == cube.range_sum((0, 0), (6, 6)) == a.sum()

    def test_cell_value(self, method_class, rng):
        a = rng.integers(0, 9, size=(6, 6))
        cube = method_class(a)
        for idx in [(0, 0), (3, 4), (5, 5)]:
            assert cube.cell_value(idx) == a[idx]

    def test_update_is_set_not_add(self, method_class, rng):
        a = rng.integers(1, 9, size=(5, 5))
        cube = method_class(a)
        cube.update((2, 2), 100)
        cube.update((2, 2), 100)  # idempotent
        assert cube.cell_value((2, 2)) == 100

    def test_to_array_roundtrip(self, method_class, rng):
        a = rng.integers(-9, 9, size=(6, 5))
        assert np.array_equal(method_class(a).to_array(), a)

    def test_methods_agree_pairwise(self, rng):
        from tests.conftest import METHOD_CLASSES, random_range

        a = rng.integers(0, 20, size=(11, 13))
        cubes = [cls(a) for cls in METHOD_CLASSES]
        for _ in range(25):
            low, high = random_range(rng, a.shape)
            answers = {int(c.range_sum(low, high)) for c in cubes}
            assert len(answers) == 1, (low, high, answers)

    def test_repr(self, method_class):
        cube = method_class(np.ones((4, 4)))
        assert type(cube).__name__ in repr(cube)

    def test_name_attribute(self, method_class):
        assert method_class.name != RangeSumMethod.name


class TestVerify:
    def test_clean_structure_passes(self, method_class, rng):
        cube = method_class(rng.integers(0, 9, size=(8, 8)))
        cube.verify(probes=20)  # no raise

    def test_verified_after_updates(self, method_class, rng):
        cube = method_class(rng.integers(0, 9, size=(8, 8)))
        for _ in range(15):
            cell = tuple(int(x) for x in rng.integers(0, 8, size=2))
            cube.apply_delta(cell, int(rng.integers(-3, 4)))
        cube.verify(probes=20)

    def test_corruption_detected(self, rng):
        from repro.core.rps import RelativePrefixSumCube
        from repro.errors import RangeError
        import pytest

        cube = RelativePrefixSumCube(
            rng.integers(0, 9, size=(9, 9)), box_size=3
        )
        # Sabotage an overlay anchor value: queries crossing that box's
        # anchor now disagree with the RP-derived reconstruction.
        # (Corrupting an RP cell instead would be self-consistent: the
        # reconstruction is derived from RP, so both sides shift together
        # — that class of fault is what verify_structures() catches.)
        full_mask = (1 << cube.ndim) - 1
        cube.overlay._values[full_mask][1, 1] += 1000
        with pytest.raises(RangeError):
            cube.verify(probes=200)

    def test_integer_cubes_verified_exactly_beyond_2_53(self, rng):
        """Integer verification must compare in native int64: float64 has
        53 mantissa bits, so an off-by-one at 2^62 vanishes under
        ``np.isclose`` — the old comparison waved this corruption
        through."""
        from repro.baselines.naive import NaiveCube
        from repro.errors import RangeError

        class _LyingNaive(NaiveCube):
            """Answers every range sum off by exactly one."""

            name = "lying"

            def range_sum(self, low, high):
                return super().range_sum(low, high) + 1

        array = np.full((2, 2), 2**60, dtype=np.int64)
        with pytest.raises(RangeError):
            _LyingNaive(array).verify(probes=8)
        # the exact comparison has no false positives on honest cubes
        NaiveCube(array).verify(probes=8)

    def test_float_cubes_keep_tolerant_verification(self, rng):
        """Floating cubes legitimately reorder arithmetic; verify stays
        tolerance-based for them."""
        from repro.baselines.prefix import PrefixSumCube

        array = rng.random((7, 7)) * 1e6
        PrefixSumCube(array).verify(probes=30)

    def test_rps_structural_verify(self, rng):
        from repro.core.rps import RelativePrefixSumCube
        from repro.errors import RangeError
        import pytest

        cube = RelativePrefixSumCube(
            rng.integers(0, 9, size=(9, 9)), box_size=3
        )
        for _ in range(10):
            cell = tuple(int(x) for x in rng.integers(0, 9, size=2))
            cube.apply_delta(cell, 2)
        cube.verify_structures()  # clean
        cube.overlay._values[3][1, 1] += 1  # corrupt an anchor value
        with pytest.raises(RangeError):
            cube.verify_structures()


class TestDeltaDtypeCoercion:
    """Float deltas on integer cubes must apply, not fail or truncate.

    The serving layer's WAL hands every replayed delta back as float64;
    before delta coercion, an integral float delta into an int64-built
    structure raised ``UFuncTypeError`` mid-apply — the service then
    quarantined the (already durably acked) group, silently losing it.
    """

    def test_integral_float_delta_stays_int_exact(self, method_class, rng):
        a = rng.integers(0, 9, size=(6, 6))
        cube = method_class(a)
        cube.apply_delta((2, 3), 5.0)
        cube.apply_delta((2, 3), -2.0)
        assert cube._dtype == np.int64
        assert cube.cell_value((2, 3)) == a[2, 3] + 3
        cube.verify(probes=20)

    def test_integral_float_batch_stays_int_exact(self, method_class, rng):
        a = rng.integers(0, 9, size=(6, 6))
        cube = method_class(a)
        indices = np.array([[1, 1], [4, 2], [1, 1]])
        cube.apply_batch_array(indices, np.array([3.0, -7.0, 4.0]))
        assert cube._dtype == np.int64
        assert cube.cell_value((1, 1)) == a[1, 1] + 7
        assert cube.cell_value((4, 2)) == a[4, 2] - 7
        cube.verify(probes=20)

    def test_fractional_delta_promotes_not_truncates(self, method_class, rng):
        a = rng.integers(0, 9, size=(6, 6))
        cube = method_class(a)
        cube.apply_delta((3, 3), 0.5)
        assert np.issubdtype(cube._dtype, np.floating)
        assert float(cube.cell_value((3, 3))) == pytest.approx(a[3, 3] + 0.5)
        # the promoted structure keeps answering exactly
        assert float(cube.total()) == pytest.approx(float(a.sum()) + 0.5)
        cube.verify(probes=20)

    def test_non_numeric_deltas_rejected(self, method_class):
        cube = method_class(np.ones((3, 3)))
        with pytest.raises(TypeError):
            cube.apply_delta((0, 0), "seven")

"""Unit tests for synthetic cube generators (repro.workloads.datagen)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import datagen


class TestUniform:
    def test_shape_and_bounds(self):
        cube = datagen.uniform_cube((10, 12), low=5, high=15, seed=1)
        assert cube.shape == (10, 12)
        assert cube.min() >= 5
        assert cube.max() < 15
        assert cube.dtype == np.int64

    def test_deterministic(self):
        a = datagen.uniform_cube((8, 8), seed=42)
        b = datagen.uniform_cube((8, 8), seed=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = datagen.uniform_cube((8, 8), seed=1)
        b = datagen.uniform_cube((8, 8), seed=2)
        assert not np.array_equal(a, b)

    def test_empty_value_range(self):
        with pytest.raises(WorkloadError):
            datagen.uniform_cube((4, 4), low=5, high=5)

    def test_invalid_shape(self):
        with pytest.raises(WorkloadError):
            datagen.uniform_cube((0, 4))
        with pytest.raises(WorkloadError):
            datagen.uniform_cube(())


class TestZipf:
    def test_heavy_tail(self):
        cube = datagen.zipf_cube((100, 100), exponent=1.3, seed=3)
        assert cube.min() >= 1
        # heavy-tailed: the max dwarfs the median
        assert cube.max() > 10 * np.median(cube)

    def test_cap(self):
        cube = datagen.zipf_cube((50, 50), exponent=1.1, cap=500, seed=3)
        assert cube.max() <= 500

    def test_invalid_exponent(self):
        with pytest.raises(WorkloadError):
            datagen.zipf_cube((4, 4), exponent=1.0)


class TestSparse:
    def test_density(self):
        cube = datagen.sparse_cube((100, 100), density=0.05, seed=4)
        nonzero = np.count_nonzero(cube) / cube.size
        assert 0.02 < nonzero < 0.09

    def test_density_zero(self):
        cube = datagen.sparse_cube((10, 10), density=0.0)
        assert cube.sum() == 0

    def test_invalid_density(self):
        with pytest.raises(WorkloadError):
            datagen.sparse_cube((4, 4), density=1.5)


class TestClustered:
    def test_hotspots_dominate(self):
        cube = datagen.clustered_cube((60, 60), clusters=2, seed=5)
        # cluster peaks are far above the background noise (0-2)
        assert cube.max() > 100

    def test_invalid_clusters(self):
        with pytest.raises(WorkloadError):
            datagen.clustered_cube((10, 10), clusters=0)


class TestDispatch:
    def test_make_cube(self):
        cube = datagen.make_cube("uniform", (6, 6), seed=0)
        assert cube.shape == (6, 6)

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            datagen.make_cube("fractal", (6, 6))

    def test_paper_example(self):
        from repro import paper

        assert np.array_equal(datagen.paper_example_cube(), paper.ARRAY_A)

    def test_all_generators_registered(self):
        assert set(datagen.GENERATORS) == {
            "uniform", "zipf", "sparse", "clustered",
        }

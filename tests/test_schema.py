"""Unit tests for cube schemas (repro.cube.schema)."""

import pytest

from repro.cube.encoders import (
    CategoricalEncoder,
    DateEncoder,
    IntegerEncoder,
)
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import SchemaError


@pytest.fixture
def schema():
    """The paper's insurance example: SALES by CUSTOMER_AGE x DATE_OF_SALE."""
    return CubeSchema(
        [
            Dimension("age", IntegerEncoder(20, 69)),
            Dimension("day", DateEncoder("2026-01-01", 90)),
        ],
        measure="sales",
    )


class TestConstruction:
    def test_shape_and_ndim(self, schema):
        assert schema.shape == (50, 90)
        assert schema.ndim == 2

    def test_dimension_lookup(self, schema):
        assert schema.axis_of("age") == 0
        assert schema.axis_of("day") == 1
        assert schema.dimension("age").size == 50

    def test_unknown_dimension(self, schema):
        with pytest.raises(SchemaError):
            schema.axis_of("region")

    def test_duplicate_names_rejected(self):
        dim = Dimension("x", IntegerEncoder(0, 9))
        with pytest.raises(SchemaError):
            CubeSchema([dim, dim], measure="m")

    def test_measure_name_collision_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                [Dimension("sales", IntegerEncoder(0, 9))], measure="sales"
            )

    def test_empty_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema([], measure="m")

    def test_empty_measure_rejected(self):
        with pytest.raises(SchemaError):
            CubeSchema(
                [Dimension("x", IntegerEncoder(0, 9))], measure=""
            )


class TestRecordEncoding:
    def test_encode_record(self, schema):
        coords, measure = schema.encode_record(
            {"age": 37, "day": "2026-01-15", "sales": 250.0}
        )
        assert coords == (17, 14)
        assert measure == 250.0

    def test_extra_keys_ignored(self, schema):
        coords, _ = schema.encode_record(
            {"age": 20, "day": "2026-01-01", "sales": 1, "region": "north"}
        )
        assert coords == (0, 0)

    def test_missing_dimension(self, schema):
        with pytest.raises(SchemaError):
            schema.encode_record({"age": 37, "sales": 1})

    def test_missing_measure(self, schema):
        with pytest.raises(SchemaError):
            schema.encode_record({"age": 37, "day": "2026-01-15"})


class TestSelectionEncoding:
    def test_full_selection(self, schema):
        low, high = schema.encode_selection(
            {"age": (37, 52), "day": ("2026-01-01", "2026-03-31")}
        )
        assert low == (17, 0)
        assert high == (32, 89)

    def test_partial_selection_spans_missing_dims(self, schema):
        low, high = schema.encode_selection({"age": (37, 52)})
        assert low == (17, 0)
        assert high == (32, 89)

    def test_empty_selection_is_full_cube(self, schema):
        low, high = schema.encode_selection({})
        assert low == (0, 0)
        assert high == (49, 89)

    def test_unknown_dimension_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.encode_selection({"region": (0, 1)})

    def test_malformed_bounds_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.encode_selection({"age": (37,)})

    def test_categorical_dimension(self):
        schema = CubeSchema(
            [Dimension("region", CategoricalEncoder(["n", "s", "e", "w"]))],
            measure="m",
        )
        low, high = schema.encode_selection({"region": ("s", "w")})
        assert (low, high) == ((1,), (3,))


def test_repr_mentions_dimensions(schema):
    text = repr(schema)
    assert "age[50]" in text and "day[90]" in text and "sales" in text

"""Unit tests for the analytic cost model (repro.metrics.complexity)."""

import math

import pytest

from repro.metrics import complexity
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen, updategen


class TestBasicCosts:
    def test_naive(self):
        assert complexity.naive_query_cost(10, 2) == 100
        assert complexity.naive_update_cost(10, 2) == 1

    def test_prefix(self):
        assert complexity.prefix_query_cost(10, 3) == 8
        assert complexity.prefix_update_cost(10, 3) == 1000

    def test_rps_query(self):
        # up to 2^d reads per region sum, 2^d region sums
        assert complexity.rps_query_cost(10, 2) == 4 * 4
        assert complexity.rps_query_cost(10, 3) == 8 * 8

    def test_products_match_paper_asymptotics(self):
        n, d = 4096, 2
        table = {r["method"]: r for r in complexity.method_cost_table(n, d)}
        assert table["naive"]["product"] == n**d
        assert table["prefix_sum"]["product"] == 2**d * n**d
        # RPS product is ~n^{d/2} scale, orders below n^d.
        assert table["rps"]["product"] < table["naive"]["product"] / 50

    def test_rps_product_scales_as_sqrt(self):
        """Quadrupling n should roughly double the RPS product (n^{d/2}
        with d=2) while the baselines' products grow 16x."""
        def product(n):
            rows = {r["method"]: r for r in complexity.method_cost_table(n, 2)}
            return rows["rps"]["product"], rows["naive"]["product"]
        rps_small, naive_small = product(256)
        rps_big, naive_big = product(4096)
        assert naive_big / naive_small == 256
        assert rps_big / rps_small < 32


class TestRpsUpdateFormula:
    def test_exact_formula_terms(self):
        # n=9, d=2, k=3: (k-1)^2 + 2*3*3 + (3-1)^2 = 4 + 18 + 4 = 26
        assert complexity.rps_update_cost(9, 2, 3) == 26

    def test_approx_close_to_exact_for_large_n(self):
        exact = complexity.rps_update_cost(1024, 2, 32)
        approx = complexity.rps_update_cost_approx(1024, 2, 32)
        assert approx == pytest.approx(exact, rel=0.15)

    def test_measured_worst_case_bounded_by_formula(self):
        for n, d, k in [(64, 2, 8), (81, 2, 9), (16, 3, 4)]:
            cube = datagen.uniform_cube((n,) * d, seed=1)
            rps = RelativePrefixSumCube(cube, box_size=k)
            worst = updategen.worst_case_cell((n,) * d, "rps")
            measured = rps.update_cost_breakdown(worst)["total"]
            assert measured <= complexity.rps_update_cost(n, d, k) + 1

    def test_approx_formula_d1(self):
        # k^1 + 1*n*k^{-1} + n/k = k + 2n/k
        assert complexity.rps_update_cost_approx(100, 1, 10) == pytest.approx(
            10 + 2 * 10
        )


class TestOptimalBoxSize:
    def test_sqrt_rule(self):
        assert complexity.optimal_box_size(256) == 16
        assert complexity.optimal_box_size(100) == 10

    def test_rounding(self):
        assert complexity.optimal_box_size(10) == 3

    def test_exact_search_near_sqrt(self):
        for n in (64, 100, 256, 400):
            exact = complexity.optimal_box_size(n, d=2, exact=True)
            assert abs(exact - math.sqrt(n)) <= max(2, 0.3 * math.sqrt(n))

    def test_exact_is_global_minimum(self):
        n, d = 144, 2
        k_star = complexity.optimal_box_size(n, d, exact=True)
        best = complexity.rps_update_cost(n, d, k_star)
        for k in range(1, n + 1):
            assert complexity.rps_update_cost(n, d, k) >= best

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            complexity.optimal_box_size(0)


class TestStorageRatios:
    def test_paper_example_k100_d2(self):
        # "(100^2 - 99^2) = 199 cells ... less than 2%"
        assert complexity.overlay_cells_per_box(100, 2) == 199
        assert complexity.overlay_storage_ratio(100, 2) == pytest.approx(
            0.0199
        )

    def test_ratio_decreases_with_k(self):
        ratios = [complexity.overlay_storage_ratio(k, 2) for k in (2, 10, 50)]
        assert ratios == sorted(ratios, reverse=True)

    def test_ratio_increases_with_d(self):
        ratios = [complexity.overlay_storage_ratio(10, d) for d in (1, 2, 3, 4)]
        assert ratios == sorted(ratios)

    def test_allocated_vs_paper_count_asymptotics(self):
        # The backing arrays allocate slightly more than the paper's live
        # count; the ratio of the two tends to 1 as k grows.
        for d in (2, 3, 4):
            paper_count = complexity.overlay_cells_per_box(1000, d)
            allocated = complexity.allocated_cells_per_box(1000, d)
            assert allocated / paper_count == pytest.approx(1.0, rel=0.01)

    def test_update_cost_bound_at_optimal_k(self):
        # ((n/k) + k)^d at k = sqrt(n) is (2 sqrt(n))^d = O(n^{d/2}).
        assert complexity.rps_update_cost_bound(256, 2, 16) == 32**2

    def test_table_covers_grid(self):
        rows = complexity.storage_ratio_table((1, 2), (2, 4))
        assert len(rows) == 4
        assert {(r["d"], r["k"]) for r in rows} == {
            (1, 2), (1, 4), (2, 2), (2, 4),
        }

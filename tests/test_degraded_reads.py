"""Degraded reads: bounded-error answers from per-shard aggregates.

The contract under test, at every layer: exact stays the default (a
query spanning a dead shard raises), opting in via ``allow_estimate``
returns an answer carrying an explicit ``estimate=True`` marker whose
``[low, high]`` interval *contains the true acked sum*, and estimated
answers are never cached by the router nor stripped of their marker by
the wire protocol.
"""

import asyncio

import numpy as np
import pytest

from repro import (
    CubeClient,
    CubeServer,
    QueryRouter,
    RelativePrefixSumCube,
)
from repro.cluster import (
    BreakerPolicy,
    CubeCluster,
    RangeEstimate,
    ShardAggregates,
    SlabSummary,
)
from repro.cluster.shardmap import ShardMap
from repro.errors import ClusterError, ClusterUnavailableError
from repro.faults import FaultPlan
from repro.routing import ClusterBackend

from .conftest import brute_range_sum, random_range

SHAPE = (24, 10)


def make_cube(rng):
    return rng.integers(-30, 40, SHAPE).astype(np.int64)


def make_cluster(tmp_path, cube, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault(
        "breaker", BreakerPolicy(failure_threshold=2, cooldown_s=60.0)
    )
    return CubeCluster(
        RelativePrefixSumCube, cube, data_dir=tmp_path, **kwargs
    )


def kill_shard(plan, shard):
    plan.kill(f"s{shard}.n0")
    plan.kill(f"s{shard}.n1")


class TestSlabSummary:
    def test_full_box_is_exact(self, rng):
        slab = rng.integers(-20, 20, (9, 7)).astype(np.float64)
        summary = SlabSummary(slab, blocks_per_axis=4)
        est, lo, hi = summary.estimate_box((0, 0), (8, 6))
        truth = float(slab.sum())
        assert est == pytest.approx(truth)
        assert lo <= truth <= hi

    def test_every_box_interval_contains_truth(self, rng):
        slab = rng.standard_normal((13, 8)) * 25.0
        summary = SlabSummary(slab, blocks_per_axis=4)
        for _ in range(200):
            low, high = random_range(rng, slab.shape)
            truth = brute_range_sum(slab, low, high)
            est, lo, hi = summary.estimate_box(low, high)
            assert lo <= truth <= hi
            assert lo <= est <= hi or est == pytest.approx(truth)

    def test_apply_keeps_containment(self, rng):
        slab = rng.integers(-10, 10, (11, 6)).astype(np.float64)
        summary = SlabSummary(slab, blocks_per_axis=3)
        for _ in range(50):
            cell = tuple(int(rng.integers(0, n)) for n in slab.shape)
            delta = float(rng.integers(-8, 9))
            slab[cell] += delta
            summary.apply([(cell, delta)])
        for _ in range(100):
            low, high = random_range(rng, slab.shape)
            truth = brute_range_sum(slab, low, high)
            _, lo, hi = summary.estimate_box(low, high)
            assert lo <= truth <= hi

    def test_interval_is_not_vacuous(self, rng):
        """The bound must be an estimate, not +/- infinity: for a box
        aligned to block edges it collapses to (nearly) exact."""
        slab = np.arange(64.0).reshape(8, 8)
        summary = SlabSummary(slab, blocks_per_axis=4)
        # blocks are 2x2: this box covers blocks exactly
        est, lo, hi = summary.estimate_box((0, 0), (3, 3))
        truth = brute_range_sum(slab, (0, 0), (3, 3))
        assert est == pytest.approx(truth)
        assert hi - lo == pytest.approx(0.0, abs=1e-5)


class TestShardAggregates:
    def test_rebuild_replaces_topology(self, rng):
        cube = rng.integers(-5, 6, SHAPE).astype(np.float64)
        shardmap = ShardMap(SHAPE, 2)
        aggregates = ShardAggregates(shardmap, cube)
        assert aggregates.shards() == (0, 1)
        split = shardmap.split_shard(0)
        aggregates.rebuild(
            {
                shard: split.subarray(cube, shard)
                for shard in range(split.num_shards)
            }
        )
        assert aggregates.shards() == (0, 1, 2)
        truth = float(cube[0:2].sum())
        (est, lo, hi), = aggregates.estimate_boxes(
            0, [(0, 0)], [(1, SHAPE[1] - 1)]
        )
        assert lo <= truth <= hi

    def test_missing_shard_raises(self, rng):
        aggregates = ShardAggregates(ShardMap(SHAPE, 2))
        with pytest.raises(ClusterError):
            aggregates.estimate_boxes(0, [(0, 0)], [(1, 1)])


class TestRangeEstimateWire:
    def test_round_trip(self):
        estimate = RangeEstimate(
            value=12.5, low=10.0, high=15.0, confidence=1.0,
            degraded_shards=(1, 2), epoch=3,
        )
        back = RangeEstimate.from_wire(estimate.to_wire())
        assert back == estimate
        assert back.estimate is True
        assert back.contains(10.0) and back.contains(15.0)
        assert not back.contains(15.01)


class TestClusterDegradedReads:
    def test_exact_is_the_default(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            kill_shard(plan, 1)
            with pytest.raises(ClusterUnavailableError):
                cluster.range_sum((0, 0), (23, 9))

    def test_estimate_marker_and_containment(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            kill_shard(plan, 1)
            lows, highs = [], []
            for _ in range(20):
                low, high = random_range(rng, SHAPE)
                lows.append(low)
                highs.append(high)
            values, estimates = cluster.range_sum_many(
                lows, highs, allow_estimate=True
            )
            degraded = 0
            for low, high, value, estimate in zip(
                lows, highs, values, estimates
            ):
                truth = brute_range_sum(oracle, low, high)
                spans_dead = low[0] <= 15 and high[0] >= 8
                if estimate is None:
                    # healthy-shard boxes stay exact
                    assert not spans_dead
                    assert value == pytest.approx(truth)
                else:
                    degraded += 1
                    assert estimate.estimate is True
                    assert estimate.confidence == 1.0
                    assert 1 in estimate.degraded_shards
                    assert estimate.epoch == cluster.epoch
                    assert estimate.contains(truth)
                    assert value == pytest.approx(estimate.value)
            assert degraded >= 1
            metrics = cluster.metrics.snapshot()
            # one degraded read per batch call, tagged with the shard
            assert metrics["degraded_reads"] == 1
            assert metrics["degraded_shard_reads"].get(1, 0) >= 1

    def test_containment_survives_acked_writes(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            for _ in range(10):
                cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
                delta = float(rng.integers(-9, 10) or 3)
                cluster.submit_batch([(cell, delta)])
                oracle[cell] += delta
            kill_shard(plan, 0)
            low, high = (0, 0), (23, 9)
            values, estimates = cluster.range_sum_many(
                [low], [high], allow_estimate=True
            )
            truth = brute_range_sum(oracle, low, high)
            assert estimates[0] is not None
            assert estimates[0].contains(truth)

    def test_refusal_without_aggregates(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            kill_shard(plan, 2)
            # simulate a cluster whose aggregates were never seeded for
            # that shard: estimation must refuse, not fabricate
            cluster.aggregates.rebuild(
                {
                    shard: cluster.shardmap.subarray(cube, shard)
                    for shard in (0, 1)
                }
            )
            with pytest.raises(ClusterUnavailableError):
                cluster.range_sum_many(
                    [(0, 0)], [(23, 9)], allow_estimate=True
                )
            assert cluster.metrics.snapshot()["estimate_refused"] == 1

    def test_estimates_with_receipt_ordering(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            kill_shard(plan, 1)
            values, estimates, receipt = cluster.range_sum_many(
                [(0, 0)], [(23, 9)],
                allow_estimate=True, return_shard_versions=True,
            )
            assert estimates[0] is not None
            assert receipt["epoch"] == 0


class TestRouterDegradedReads:
    def test_estimates_flow_through_and_are_never_cached(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            router = QueryRouter(
                ClusterBackend(cluster), enable_rollup=False
            )
            kill_shard(plan, 1)
            low, high = (4, 1), (20, 8)  # spans the dead shard
            truth = brute_range_sum(oracle, low, high)
            values, estimates = router.range_sum_many(
                [low], [high], allow_estimate=True
            )
            assert estimates[0] is not None
            assert estimates[0].contains(truth)
            # a second identical call re-estimates rather than serving
            # the degraded answer from cache
            batch = router.route_many([low], [high], allow_estimate=True)
            assert batch.estimates[0] is not None
            assert batch.tiers[0] == "rps"

    def test_mixed_batch_caches_only_exact_slots(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            router = QueryRouter(
                ClusterBackend(cluster), enable_rollup=False
            )
            kill_shard(plan, 1)
            dead_box = ((4, 1), (20, 8))
            live_box = ((0, 0), (6, 9))  # shard 0 only
            batch = router.route_many(
                [dead_box[0], live_box[0]],
                [dead_box[1], live_box[1]],
                allow_estimate=True,
            )
            assert batch.estimates[0] is not None
            assert batch.estimates[1] is None
            again = router.route_many(
                [dead_box[0], live_box[0]],
                [dead_box[1], live_box[1]],
                allow_estimate=True,
            )
            # the exact slot serves from cache; the estimated one re-runs
            assert again.tiers[1] == "cache"
            assert again.tiers[0] == "rps"
            assert again.estimates[0] is not None

    def test_exact_default_still_raises_through_router(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            router = QueryRouter(
                ClusterBackend(cluster), enable_rollup=False
            )
            kill_shard(plan, 1)
            with pytest.raises(ClusterUnavailableError):
                router.range_sum_many([(4, 1)], [(20, 8)])


class TestNetDegradedReads:
    def test_wire_surface_marks_degraded_answers(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=5)
        with make_cluster(tmp_path, cube, fault_plan=plan) as cluster:
            router = QueryRouter(
                ClusterBackend(cluster), enable_rollup=False
            )
            with CubeServer(router, port=0) as server:
                host, port = server.address

                async def scenario():
                    async with await CubeClient.connect(
                        host, port
                    ) as client:
                        # healthy: estimates present but all None
                        values, estimates, version = (
                            await client.range_sum_many(
                                [(4, 1)], [(20, 8)],
                                allow_estimate=True,
                            )
                        )
                        assert estimates == [None]
                        assert version[0] == 0  # epoch prefix
                        kill_shard(plan, 1)
                        values, estimates, version = (
                            await client.range_sum_many(
                                [(2, 0)], [(21, 7)],
                                allow_estimate=True,
                            )
                        )
                        truth = brute_range_sum(
                            oracle, (2, 0), (21, 7)
                        )
                        assert isinstance(
                            estimates[0], RangeEstimate
                        )
                        assert estimates[0].estimate is True
                        assert estimates[0].contains(truth)
                        # exact path unchanged: no estimates in reply
                        exact_values, exact_version = (
                            await client.range_sum_many(
                                [(0, 0)], [(6, 9)]
                            )
                        )
                        assert exact_values[0] == pytest.approx(
                            brute_range_sum(oracle, (0, 0), (6, 9))
                        )

                asyncio.run(scenario())

"""Smoke tests: every example script runs to completion and self-checks.

The examples assert their own key facts internally (they are written to
fail loudly); these tests run each as a subprocess so the documented
entry points stay working.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_exist():
    assert set(EXAMPLES) >= {
        "quickstart.py",
        "insurance_sales.py",
        "near_real_time.py",
        "disk_resident.py",
        "box_size_tuning.py",
        "region_checksums.py",
        "retail_analytics.py",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "OK" in completed.stdout

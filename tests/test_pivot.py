"""Unit tests for pivot tables (repro.cube.pivot)."""

import pytest

from repro.cube.encoders import CategoricalEncoder, DateEncoder, IntegerEncoder
from repro.cube.engine import DataCubeEngine
from repro.cube.hierarchy import CalendarHierarchy
from repro.cube.pivot import pivot
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import RangeError

AGE_BANDS = [("young", (18, 35)), ("old", (36, 80))]
REGION_MEMBERS = [("n", ("n", "n")), ("s", ("s", "s"))]


@pytest.fixture
def engine():
    schema = CubeSchema(
        [
            Dimension("region", CategoricalEncoder(["n", "s"])),
            Dimension("age", IntegerEncoder(18, 80)),
            Dimension("day", DateEncoder("2026-01-01", 90)),
        ],
        measure="sales",
    )
    engine = DataCubeEngine(schema)
    facts = [
        ("n", 25, "2026-01-10", 10.0),
        ("n", 50, "2026-01-20", 20.0),
        ("s", 25, "2026-02-10", 40.0),
        ("s", 50, "2026-02-20", 80.0),
        ("s", 30, "2026-03-01", 5.0),
    ]
    for region, age, day, sales in facts:
        engine.ingest(
            {"region": region, "age": age, "day": day, "sales": sales}
        )
    return engine


class TestPivot:
    def test_cells(self, engine):
        table = pivot(engine, "region", REGION_MEMBERS, "age", AGE_BANDS)
        assert table.value("n", "young") == pytest.approx(10.0)
        assert table.value("n", "old") == pytest.approx(20.0)
        assert table.value("s", "young") == pytest.approx(45.0)
        assert table.value("s", "old") == pytest.approx(80.0)

    def test_margins_and_grand_total(self, engine):
        table = pivot(engine, "region", REGION_MEMBERS, "age", AGE_BANDS)
        assert table.row_totals["n"] == pytest.approx(30.0)
        assert table.row_totals["s"] == pytest.approx(125.0)
        assert table.column_totals["young"] == pytest.approx(55.0)
        assert table.column_totals["old"] == pytest.approx(100.0)
        assert table.grand_total == pytest.approx(155.0)

    def test_margins_consistent_with_cells(self, engine):
        table = pivot(engine, "region", REGION_MEMBERS, "age", AGE_BANDS)
        for row in table.row_labels:
            assert table.row_totals[row] == pytest.approx(
                sum(table.value(row, col) for col in table.column_labels)
            )
        assert table.grand_total == pytest.approx(
            sum(table.row_totals.values())
        )

    def test_count_aggregate(self, engine):
        table = pivot(
            engine, "region", REGION_MEMBERS, "age", AGE_BANDS,
            aggregate="count",
        )
        assert table.value("s", "young") == 2
        assert table.grand_total == 5

    def test_average_margins_are_true_averages(self, engine):
        table = pivot(
            engine, "region", REGION_MEMBERS, "age", AGE_BANDS,
            aggregate="average",
        )
        # s-row: (40 + 80 + 5) / 3, not the mean of the two cell averages
        assert table.row_totals["s"] == pytest.approx(125.0 / 3)

    def test_with_extra_selection(self, engine):
        table = pivot(
            engine, "region", REGION_MEMBERS, "age", AGE_BANDS,
            selection={"day": ("2026-01-01", "2026-01-31")},
        )
        assert table.grand_total == pytest.approx(30.0)
        assert table.value("s", "old") == pytest.approx(0.0)

    def test_hierarchy_members_as_axis(self, engine):
        months = CalendarHierarchy(engine, "day").members("month")
        table = pivot(engine, "region", REGION_MEMBERS, "day", months)
        assert table.value("s", "2026-02") == pytest.approx(120.0)
        assert table.value("n", "2026-03") == pytest.approx(0.0)

    def test_validation(self, engine):
        with pytest.raises(RangeError):
            pivot(engine, "region", REGION_MEMBERS, "region",
                  REGION_MEMBERS)
        with pytest.raises(RangeError):
            pivot(engine, "region", REGION_MEMBERS, "age", AGE_BANDS,
                  aggregate="mode")
        with pytest.raises(RangeError):
            pivot(engine, "region", REGION_MEMBERS, "age", AGE_BANDS,
                  selection={"age": (20, 30)})

    def test_render(self, engine):
        text = pivot(
            engine, "region", REGION_MEMBERS, "age", AGE_BANDS
        ).render()
        lines = text.splitlines()
        assert "young" in lines[0] and "total" in lines[0]
        assert lines[1].startswith("n")
        assert lines[-1].startswith("total")
        assert "155.0" in lines[-1]


class TestWeekLevel:
    def test_week_members_tile(self, engine):
        hierarchy = CalendarHierarchy(engine, "day")
        members = hierarchy.members("week")
        import datetime

        cursor = datetime.date(2026, 1, 1)
        for _, (start, end) in members:
            assert start == cursor
            cursor = end + datetime.timedelta(days=1)
        assert cursor == datetime.date(2026, 1, 1) + datetime.timedelta(
            days=90
        )

    def test_week_boundaries_are_sundays(self, engine):
        members = CalendarHierarchy(engine, "day").members("week")
        # every interior member ends on a Sunday (ISO weekday 7)
        for _, (start, end) in members[:-1]:
            assert end.isoweekday() == 7

    def test_week_labels_iso(self, engine):
        members = dict(CalendarHierarchy(engine, "day").members("week"))
        # 2026-01-01 falls in ISO week 2026-W01
        assert "2026-W01" in members

    def test_week_rollup_totals(self, engine):
        rollup = CalendarHierarchy(engine, "day").rollup("week")
        assert sum(rollup.values()) == pytest.approx(engine.sum())

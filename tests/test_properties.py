"""Property-based tests (hypothesis) on the core invariants.

The central invariant of the whole system: every range-sum method is an
exact, update-consistent replacement for the naive scan, for any cube,
any query, any update sequence, any box size.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.blocked import blocked_prefix_all_axes
from repro.core.rps import RelativePrefixSumCube
from repro.metrics import complexity


@st.composite
def cube_and_ops(draw, max_side=12, max_dims=3):
    """A random cube plus a random sequence of interleaved queries/updates."""
    d = draw(st.integers(1, max_dims))
    shape = tuple(draw(st.integers(2, max_side)) for _ in range(d))
    cells = draw(
        st.lists(
            st.integers(-50, 50),
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    array = np.array(cells, dtype=np.int64).reshape(shape)
    box_size = draw(st.integers(1, max_side))

    def coord():
        return tuple(draw(st.integers(0, n - 1)) for n in shape)

    ops = []
    for _ in range(draw(st.integers(1, 8))):
        if draw(st.booleans()):
            low = coord()
            high = tuple(draw(st.integers(l, n - 1)) for l, n in zip(low, shape))
            ops.append(("query", (low, high)))
        else:
            ops.append(("update", (coord(), draw(st.integers(-9, 9)))))
    return array, box_size, ops


@settings(max_examples=60, deadline=None)
@given(cube_and_ops())
def test_rps_equivalent_to_naive_under_any_op_sequence(data):
    array, box_size, ops = data
    rps = RelativePrefixSumCube(array, box_size=box_size)
    oracle = array.copy()
    for kind, payload in ops:
        if kind == "query":
            low, high = payload
            slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
            assert rps.range_sum(low, high) == oracle[slices].sum()
        else:
            cell, delta = payload
            oracle[cell] += delta
            rps.apply_delta(cell, delta)
    assert np.array_equal(rps.to_array(), oracle)


@settings(max_examples=40, deadline=None)
@given(cube_and_ops(max_side=10, max_dims=2))
def test_all_methods_agree(data):
    array, box_size, ops = data
    methods = [
        NaiveCube(array),
        PrefixSumCube(array),
        FenwickCube(array),
        RelativePrefixSumCube(array, box_size=box_size),
    ]
    for kind, payload in ops:
        if kind == "query":
            low, high = payload
            answers = {int(m.range_sum(low, high)) for m in methods}
            assert len(answers) == 1
        else:
            cell, delta = payload
            for m in methods:
                m.apply_delta(cell, delta)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=60),
    st.integers(1, 20),
)
def test_blocked_prefix_matches_definition_1d(cells, block):
    array = np.array(cells, dtype=np.int64)
    out = blocked_prefix_all_axes(array, block)
    for i in range(len(cells)):
        start = (i // block) * block
        assert out[i] == array[start : i + 1].sum()


@settings(max_examples=80, deadline=None)
@given(st.integers(2, 10_000), st.integers(1, 6))
def test_storage_ratio_formula_consistency(k, d):
    """k^d - (k-1)^d cells per box, always in (0, k^d]."""
    per_box = complexity.overlay_cells_per_box(k, d)
    assert 0 < per_box <= k**d
    # identity: sum over nonempty subsets Z of (k-1)^{d-|Z|}
    from math import comb

    subset_sum = sum(
        comb(d, z) * (k - 1) ** (d - z) for z in range(1, d + 1)
    )
    assert subset_sum == per_box


@settings(max_examples=50, deadline=None)
@given(st.integers(4, 4096), st.integers(2, 4))
def test_update_bound_dominates_paper_formula(n, d):
    """((n/k) + k)^d >= the paper's three-term formula at any valid k.

    Holds for d >= 2; the paper's formula is not meant for d = 1, where
    its border and anchor terms double-count the same cells (in one
    dimension every face cell *is* an anchor).
    """
    k = complexity.optimal_box_size(n)
    if k > n:
        return
    assert complexity.rps_update_cost_bound(n, d, k) >= (
        complexity.rps_update_cost(n, d, k)
    )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 12), st.integers(2, 12), st.integers(1, 13),
    st.integers(0, 1000),
)
def test_rps_prefix_sums_match_prefix_cube(rows, cols, box, seed):
    """Cross-implementation invariant: RPS and the Ho et al. prefix cube
    compute identical prefix sums everywhere."""
    rng = np.random.default_rng(seed)
    array = rng.integers(-20, 20, size=(rows, cols))
    rps = RelativePrefixSumCube(array, box_size=box)
    ps = PrefixSumCube(array)
    for idx in np.ndindex(rows, cols):
        assert rps.prefix_sum(idx) == ps.prefix_sum(idx)


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_update_cost_prediction_is_exact(data):
    """update_cost_breakdown predicts apply_delta's write count exactly."""
    n = data.draw(st.integers(4, 16))
    d = data.draw(st.integers(1, 3))
    k = data.draw(st.integers(1, n))
    rng = np.random.default_rng(data.draw(st.integers(0, 999)))
    array = rng.integers(0, 9, size=(n,) * d)
    rps = RelativePrefixSumCube(array, box_size=k)
    cell = tuple(data.draw(st.integers(0, n - 1)) for _ in range(d))
    predicted = rps.update_cost_breakdown(cell)["total"]
    before = rps.counter.snapshot()
    rps.apply_delta(cell, 1)
    assert before.delta(rps.counter).cells_written == predicted

"""Unit tests for the experiment harness (repro.bench.harness)."""

import pytest

from repro.bench.harness import report, run_all, run_experiment, save_csvs
from repro.errors import WorkloadError


class TestRunExperiment:
    def test_run_by_id(self):
        run = run_experiment("E3")
        assert run.table.experiment_id == "E3"
        assert run.seconds >= 0

    def test_case_insensitive(self):
        assert run_experiment("e5").table.experiment_id == "E5"

    def test_kwargs_forwarded(self):
        run = run_experiment("E7", n=64)
        assert "n=64" in run.table.title

    def test_unknown_id(self):
        with pytest.raises(WorkloadError):
            run_experiment("E99")


class TestRunAll:
    def test_selected_subset_in_order(self):
        runs = run_all(["E5", "E1"])
        assert [r.table.experiment_id for r in runs] == ["E5", "E1"]

    def test_report_renders_each(self):
        runs = run_all(["E1", "E3"])
        text = report(runs)
        assert "E1" in text and "E3" in text
        assert "Figure 2" in text and "Figure 4" in text


class TestSaveCsvs:
    def test_files_written(self, tmp_path):
        runs = run_all(["E3", "E5"])
        written = save_csvs(runs, tmp_path / "out")
        assert sorted(written) == ["E3", "E5"]
        for path in written.values():
            content = open(path).read()
            assert "," in content

    def test_directory_created(self, tmp_path):
        target = tmp_path / "deep" / "nested"
        save_csvs(run_all(["E3"]), target)
        assert (target / "E3.csv").exists()

"""repro.ingest units: sources, dead letters, checkpoints, targets,
rolling serve, measure validation, and the pipeline's quarantine and
backpressure behavior. Crash recovery is exercised separately in
``test_ingest_crash_matrix.py``."""

import csv
import json
import os

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cluster.degraded import RangeEstimate
from repro.cube.encoders import IntegerEncoder
from repro.cube.fact_table import FactTable, validate_measure
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import (
    DeadLetterCorruptionError,
    FenceError,
    IngestError,
    RangeError,
    SchemaError,
    ServiceOverloadedError,
)
from repro.ingest import (
    CheckpointStore,
    ColumnarSource,
    CSVSource,
    DeadLetterFile,
    IngestPipeline,
    MemorySource,
    RollingCubeService,
    RollingServiceTarget,
    ServiceTarget,
    read_dead_letters,
)
from repro.ingest.deadletter import _encode_entry
from repro.serve import CubeService


def make_schema(size=8):
    return CubeSchema(
        [
            Dimension("x", IntegerEncoder(0, size - 1)),
            Dimension("y", IntegerEncoder(0, size - 1)),
        ],
        "sales",
    )


def make_records(rng, n, size=8):
    return [
        {
            "x": int(rng.integers(0, size)),
            "y": int(rng.integers(0, size)),
            "sales": float(rng.integers(1, 10)),
        }
        for _ in range(n)
    ]


def oracle_of(records, size=8):
    cube = np.zeros((size, size))
    for r in records:
        cube[r["x"], r["y"]] += r["sales"]
    return cube


class TestSources:
    def test_memory_source_chunks_cover_offsets(self):
        records = [{"i": i} for i in range(10)]
        source = MemorySource(records, chunk_rows=3)
        chunks = list(source.chunks(0))
        assert [off for off, _ in chunks] == [0, 3, 6, 9]
        assert [len(rows) for _, rows in chunks] == [3, 3, 3, 1]
        flat = [r for _, rows in chunks for r in rows]
        assert flat == records

    def test_memory_source_resumes_mid_stream(self):
        records = [{"i": i} for i in range(10)]
        source = MemorySource(records, chunk_rows=4)
        chunks = list(source.chunks(5))
        assert chunks[0][0] == 5
        assert [r["i"] for _, rows in chunks for r in rows] == list(range(5, 10))

    def test_columnar_source_yields_scalars(self):
        source = ColumnarSource(
            {"x": np.arange(5), "sales": np.linspace(0, 1, 5)}, chunk_rows=2
        )
        rows = [r for _, rows in source.chunks(0) for r in rows]
        assert len(rows) == 5
        assert isinstance(rows[3]["x"], int)
        assert isinstance(rows[3]["sales"], float)

    def test_columnar_source_rejects_ragged_columns(self):
        with pytest.raises(IngestError):
            ColumnarSource({"a": np.arange(3), "b": np.arange(4)})

    def test_csv_source_resume_and_converter_failure(self, tmp_path):
        path = tmp_path / "rows.csv"
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["x", "sales"])
            writer.writerow(["1", "2.5"])
            writer.writerow(["oops", "3.0"])
            writer.writerow(["2", "4.0"])
        source = CSVSource(
            path, chunk_rows=2,
            converters={"x": int, "sales": float},
        )
        rows = [r for _, rows in source.chunks(0) for r in rows]
        assert rows[0] == {"x": 1, "sales": 2.5}
        # the failed conversion keeps the raw string so the pipeline
        # can quarantine the row with the real encoding error
        assert rows[1]["x"] == "oops"
        resumed = [r for _, rows in source.chunks(2) for r in rows]
        assert resumed == [{"x": 2, "sales": 4.0}]


class TestDeadLetterFile:
    def test_roundtrip_and_counters(self, tmp_path):
        path = tmp_path / "dead.log"
        with DeadLetterFile(path) as dlq:
            dlq.append(3, "schema", "bad x", {"x": 99})
            dlq.append(7, "encoding", "bad y", {"y": -1})
            dlq.sync()
            assert dlq.counters() == {"schema": 1, "encoding": 1}
            assert dlq.total == 2
        entries = read_dead_letters(path)
        assert [(e["offset"], e["reason"]) for e in entries] == [
            (3, "schema"), (7, "encoding"),
        ]
        assert entries[0]["record"] == {"x": 99}

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "dead.log"
        with DeadLetterFile(path) as dlq:
            dlq.append(1, "schema", "a", None)
            dlq.sync()
        with open(path, "ab") as fh:
            fh.write(b"deadbeef\t{\"torn")
        assert [e["offset"] for e in read_dead_letters(path)] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "dead.log"
        entry = lambda i: {"offset": i, "reason": "schema",
                           "error": "x", "record": None}
        bad = bytearray(_encode_entry(entry(2)))
        bad[0:8] = b"00000000"
        with open(path, "wb") as fh:
            fh.write(_encode_entry(entry(1)) + bytes(bad)
                     + _encode_entry(entry(3)))
        with pytest.raises(DeadLetterCorruptionError):
            read_dead_letters(path)

    def test_clean_stream_creates_no_file(self, tmp_path):
        """The append handle opens lazily: a run that quarantines
        nothing must not leave an empty quarantine file behind."""
        path = tmp_path / "dead.log"
        with DeadLetterFile(path) as dl:
            assert dl.total == 0
            dl.sync()
            assert dl.truncate_from(0) == 0
        assert not os.path.exists(path)

    def test_truncate_from_drops_replayed_entries(self, tmp_path):
        path = tmp_path / "dead.log"
        with DeadLetterFile(path) as dlq:
            for offset in (2, 5, 9):
                dlq.append(offset, "schema", "x", None)
            dlq.sync()
            assert dlq.truncate_from(5) == 2
            dlq.append(5, "encoding", "y", None)
            dlq.sync()
            assert dlq.counters() == {"schema": 1, "encoding": 1}
        assert [(e["offset"], e["reason"]) for e in read_dead_letters(path)] \
            == [(2, "schema"), (5, "encoding")]


class TestCheckpointStore:
    def test_missing_file_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "ck.json").load() is None

    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck.json")
        state = {"offset": 42, "pending": None, "target_state": {}}
        store.save(state)
        assert store.load() == state

    def test_corruption_refuses_to_guess(self, tmp_path):
        path = tmp_path / "ck.json"
        store = CheckpointStore(path)
        store.save({"offset": 42, "pending": None})
        raw = json.loads(path.read_text())
        raw["state"]["offset"] = 41
        path.write_text(json.dumps(raw))
        with pytest.raises(IngestError):
            store.load()


class TestValidateMeasure:
    def test_rejects_bools_and_non_numbers(self):
        with pytest.raises(SchemaError):
            validate_measure(True)
        with pytest.raises(SchemaError):
            validate_measure("12")

    def test_rejects_non_finite(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(SchemaError):
                validate_measure(bad)

    def test_lossless_cast_passes_int_dtype(self):
        assert validate_measure(7, np.dtype(np.int64)) == 7.0
        assert validate_measure(7.0, np.dtype(np.int64)) == 7.0

    def test_promotion_gate(self):
        # fractional on an integer cube needs a dtype promotion: legal
        # by default (the engine's backend rebuilds itself) but refused
        # when the caller cannot afford the O(n^d) rebuild
        assert validate_measure(2.5, np.dtype(np.int64)) == 2.5
        with pytest.raises(SchemaError):
            validate_measure(2.5, np.dtype(np.int64), allow_promotion=False)

    def test_fact_table_audit_reports_offsets(self):
        schema = make_schema()
        table = FactTable(
            [
                {"x": 1, "y": 1, "sales": 5},
                {"x": 1, "y": 1, "sales": float("nan")},
                {"x": 99, "y": 1, "sales": 5},
            ]
        )
        bad = table.validate(schema)
        assert [i for i, _ in bad] == [1, 2]

    def test_engine_ingest_rejects_nan_at_ingest_time(self):
        from repro.cube.engine import DataCubeEngine

        engine = DataCubeEngine(make_schema(4))
        with pytest.raises(SchemaError):
            engine.ingest({"x": 1, "y": 1, "sales": float("nan")})
        # fractional-on-int still promotes (PR 8 semantics preserved)
        engine.ingest({"x": 1, "y": 1, "sales": 2.5})
        assert engine.sum() == 2.5


class TestRollingCubeService:
    def make(self, window=4, size=4):
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((window, size))
        )
        return svc, RollingCubeService(svc)

    def test_window_sum_matches_oracle(self, rng):
        svc, roller = self.make()
        with svc:
            oracle = {}
            for _ in range(60):
                slot = int(rng.integers(0, 4))
                cell = int(rng.integers(0, 4))
                amount = float(rng.integers(1, 5))
                roller.record(slot, (cell,), amount)
                oracle[(slot, cell)] = oracle.get((slot, cell), 0.0) + amount
            roller.flush()
            total = roller.window_sum(0, 3)
            assert total == pytest.approx(sum(oracle.values()))

    def test_advance_retires_oldest_slab(self):
        svc, roller = self.make(window=3)
        with svc:
            roller.record(0, (0,), 5.0)
            roller.record(1, (1,), 7.0)
            roller.record(2, (2,), 9.0)
            roller.advance()  # slot 0 expires; its slice now serves slot 3
            roller.flush()
            assert roller.oldest_slot == 1
            assert roller.window_sum(1, 3) == pytest.approx(16.0)
            with pytest.raises(RangeError):
                roller.window_sum(0, 0)

    def test_reads_during_roll_are_exact_or_estimate(self):
        svc, roller = self.make(window=3)
        with svc:
            roller.record(0, (0,), 5.0)
            roller.flush()
            # slot 3 reuses slot 0's physical slice: its zeroing group
            # is pending until the service applies it
            roller.advance(3)
            answer = roller.window_sum(3, 3, allow_estimate=True)
            if isinstance(answer, RangeEstimate):
                assert answer.low <= 0.0 <= answer.high
            else:
                assert answer == pytest.approx(0.0)
            # the default path flushes: always exact
            assert roller.window_sum(3, 3) == pytest.approx(0.0)

    def test_advance_is_idempotent_when_slab_empty(self):
        svc, roller = self.make(window=3)
        with svc:
            roller.advance()
            version = svc.version
            roller.newest_slot -= 1
            roller.advance()  # replay: already-zero slice, no group
            svc.flush()
            assert svc.version == version

    def test_target_rejects_expired_slots(self):
        svc, roller = self.make(window=3)
        with svc:
            target = RollingServiceTarget(roller)
            roller.advance(3)
            ok, reason = target.admit((0, 0))
            assert not ok and reason == "expired_slot"
            assert target.admit((3, 0)) == (True, "")
            assert target.state() == {"newest_slot": 3}


class FlakyTarget(ServiceTarget):
    """Overloads the first ``fail`` submits, then behaves."""

    def __init__(self, service, fail):
        super().__init__(service)
        self.fail = fail
        self.attempts = 0

    def submit(self, pairs, *, timeout=None):
        self.attempts += 1
        if self.attempts <= self.fail:
            raise ServiceOverloadedError("synthetic overload")
        return super().submit(pairs, timeout=timeout)


class TestPipeline:
    def run_pipeline(self, tmp_path, records, target_of=None, **kwargs):
        schema = make_schema()
        with CubeService(RelativePrefixSumCube, np.zeros((8, 8))) as svc:
            target = (target_of or ServiceTarget)(svc)
            kwargs.setdefault("group_rows", 64)
            with IngestPipeline(
                MemorySource(records, chunk_rows=32), schema, target,
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                **kwargs,
            ) as pipe:
                report = pipe.run()
            svc.flush()
            array, _ = svc.snapshot_array()
        return report, array, target

    def test_clean_stream_is_exact(self, tmp_path, rng):
        records = make_records(rng, 300)
        report, array, _ = self.run_pipeline(tmp_path, records)
        assert np.array_equal(array, oracle_of(records))
        assert report["rows_applied"] == 300
        assert report["deadletter_total"] == 0
        assert not os.path.exists(tmp_path / "dead.log")

    def test_quarantine_reasons(self, tmp_path, rng):
        records = make_records(rng, 100)
        records.insert(10, {"x": 99, "y": 0, "sales": 1.0})
        records.insert(20, {"x": 0, "sales": 1.0})
        records.insert(30, {"x": 0, "y": 0, "sales": float("inf")})
        records.insert(40, {"x": 0, "y": 0, "sales": "a lot"})
        report, array, _ = self.run_pipeline(tmp_path, records)
        expected = oracle_of(
            [r for i, r in enumerate(records) if i not in (10, 20, 30, 40)]
        )
        assert np.array_equal(array, expected)
        reasons = report["quarantine_reasons"]
        assert reasons["encoding"] == 1
        assert reasons["schema"] == 3
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == [10, 20, 30, 40]

    def test_unparseable_dimension_value_quarantines(self, tmp_path, rng):
        """A dimension value the encoder cannot even parse (the CSV
        reality: 'notanint' in an integer column) quarantines as an
        encoding failure instead of killing the run."""
        records = make_records(rng, 60)
        records.insert(7, {"x": "notanint", "y": 0, "sales": 1.0})
        report, array, _ = self.run_pipeline(tmp_path, records)
        assert report["quarantine_reasons"] == {"encoding": 1}
        expected = oracle_of([r for i, r in enumerate(records) if i != 7])
        assert np.array_equal(array, expected)

    def test_measure_dtype_gate_quarantines_fractions(self, tmp_path, rng):
        records = make_records(rng, 50)
        records.insert(5, {"x": 0, "y": 0, "sales": 2.5})
        report, array, _ = self.run_pipeline(
            tmp_path, records, measure_dtype=np.int64
        )
        assert report["quarantine_reasons"] == {"measure_dtype": 1}
        expected = oracle_of([r for i, r in enumerate(records) if i != 5])
        assert np.array_equal(array, expected)

    def test_overload_shrinks_groups_and_retries(self, tmp_path, rng):
        records = make_records(rng, 200)
        report, array, target = self.run_pipeline(
            tmp_path, records,
            target_of=lambda svc: FlakyTarget(svc, fail=2),
            group_rows=64, min_group_rows=8, backoff_seconds=0.001,
        )
        assert np.array_equal(array, oracle_of(records))
        assert report["overload_backoffs"] == 2
        # two halvings from 64, then queue-drained growth doubles per
        # committed group — the point is it adapted, not the end value
        assert report["group_rows"] >= 8

    def test_overload_exhaustion_raises(self, tmp_path, rng):
        records = make_records(rng, 100)
        with pytest.raises(ServiceOverloadedError):
            self.run_pipeline(
                tmp_path, records,
                target_of=lambda svc: FlakyTarget(svc, fail=100),
                max_submit_retries=2, backoff_seconds=0.0,
            )

    def test_coalesce_merges_cell_deltas(self, tmp_path):
        records = [{"x": 1, "y": 1, "sales": 2.0} for _ in range(50)]
        report, array, _ = self.run_pipeline(tmp_path, records)
        assert array[1, 1] == 100.0
        assert report["cells_submitted"] == report["groups_submitted"]

    def test_empty_source_checkpoints_offset_zero(self, tmp_path):
        report, _, _ = self.run_pipeline(tmp_path, [])
        assert report["offset"] == 0
        store = CheckpointStore(tmp_path / "ck.json")
        assert store.load()["offset"] == 0

    def test_fence_error_on_foreign_writer(self, tmp_path, rng):
        """A second writer advancing the sequence domain voids the
        fence; the pipeline must fail loud, not double-apply."""
        records = make_records(rng, 100)
        schema = make_schema()

        class RacingTarget(ServiceTarget):
            def submit(self, pairs, *, timeout=None):
                # a foreign writer sneaks a group in before ours
                self.service.submit_batch([((0, 0), 0.5)], timeout=timeout)
                return super().submit(pairs, timeout=timeout)

        with CubeService(RelativePrefixSumCube, np.zeros((8, 8))) as svc:
            with IngestPipeline(
                MemorySource(records, chunk_rows=32), schema,
                RacingTarget(svc),
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                group_rows=64,
            ) as pipe:
                with pytest.raises(FenceError):
                    pipe.run()


class OverloadFirstZeroing:
    """Service proxy: overloads the first slab-zeroing (all-negative)
    group, then behaves — the roll-path overload image."""

    def __init__(self, service):
        self._service = service
        self.tripped = False

    def __getattr__(self, name):
        return getattr(self._service, name)

    def submit_batch(self, updates, **kwargs):
        updates = list(updates)
        if not self.tripped and updates and all(
            delta < 0 for _, delta in updates
        ):
            self.tripped = True
            raise ServiceOverloadedError("synthetic overload during roll")
        return self._service.submit_batch(updates, **kwargs)


class TestRollingPipelineEdges:
    """The pre-submit roll under backpressure and mid-group expiry."""

    def slot_schema(self):
        return CubeSchema(
            [Dimension("x", IntegerEncoder(0, 7))], "sales"
        )

    def day_records(self, rng, day, n):
        return [
            {
                "day": day,
                "x": int(rng.integers(0, 8)),
                "sales": float(rng.integers(1, 10)),
            }
            for _ in range(n)
        ]

    def run_rolling(self, tmp_path, records, wrap=None, **kwargs):
        svc = CubeService(RelativePrefixSumCube, np.zeros((2, 8)))
        with svc:
            roller = RollingCubeService(wrap(svc) if wrap else svc)
            kwargs.setdefault("group_rows", 64)
            with IngestPipeline(
                MemorySource(records, chunk_rows=32), self.slot_schema(),
                RollingServiceTarget(roller),
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                time_column="day",
                queue_depth_low=-1, queue_depth_high=10 ** 9,
                backoff_seconds=0.001,
                **kwargs,
            ) as pipe:
                report = pipe.run()
            svc.flush()
            array, _ = svc.snapshot_array()
        return report, array, roller

    def test_roll_overload_backs_off_and_rezeroes(self, tmp_path, rng):
        """An overloaded slab-zeroing submit during ``prepare`` must
        back off and retry (not kill the run), and the retried advance
        must re-zero the slab it stopped in front of."""
        records = (
            self.day_records(rng, 0, 64) + self.day_records(rng, 2, 64)
        )
        report, array, roller = self.run_rolling(
            tmp_path, records, wrap=OverloadFirstZeroing
        )
        expected = np.zeros((2, 8))
        for r in records[64:]:  # day 2 lands on physical slot 0
            expected[0, r["x"]] += r["sales"]
        assert np.array_equal(array, expected)
        assert report["overload_backoffs"] >= 1
        assert report["deadletter_total"] == 0
        assert roller.newest_slot == 2

    def test_roll_expired_rows_keep_their_records(self, tmp_path, rng):
        """A row expired by its own group's roll dead-letters with the
        original source record, not a placeholder — the entry must stay
        replayable."""
        day0 = self.day_records(rng, 0, 32)
        day2 = self.day_records(rng, 2, 32)
        report, array, _ = self.run_rolling(tmp_path, day0 + day2)
        expected = np.zeros((2, 8))
        for r in day2:
            expected[0, r["x"]] += r["sales"]
        assert np.array_equal(array, expected)
        assert report["quarantine_reasons"] == {"expired_slot": 32}
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == list(range(32))
        assert [e["record"] for e in dead] == day0

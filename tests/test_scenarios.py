"""Unit tests for workload scenarios (repro.workloads.scenarios)."""

import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.errors import WorkloadError
from repro.workloads.scenarios import SCENARIOS, get_scenario, run_scenario


class TestRegistry:
    def test_expected_scenarios(self):
        assert set(SCENARIOS) == {
            "dashboard", "nightly_etl", "audit", "ticker",
        }

    def test_get_scenario(self):
        assert get_scenario("audit").name == "audit"

    def test_unknown_scenario(self):
        with pytest.raises(WorkloadError):
            get_scenario("apocalypse")

    def test_descriptions_nonempty(self):
        for scenario in SCENARIOS.values():
            assert scenario.description


class TestRunScenario:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_runs_verified(self, name):
        result = run_scenario(
            name, RelativePrefixSumCube, shape=(32, 32), operations=20,
        )
        assert result.mismatches == 0
        assert result.queries > 0

    def test_audit_has_no_updates(self):
        result = run_scenario(
            "audit", NaiveCube, shape=(32, 32), operations=20
        )
        assert result.updates == 0

    def test_etl_is_update_heavy(self):
        result = run_scenario(
            "nightly_etl", RelativePrefixSumCube,
            shape=(32, 32), operations=20,
        )
        assert result.updates > result.queries

    def test_deterministic_given_seed(self):
        first = run_scenario(
            "dashboard", NaiveCube, shape=(32, 32), operations=20, seed=5,
            verify=False,
        )
        second = run_scenario(
            "dashboard", NaiveCube, shape=(32, 32), operations=20, seed=5,
            verify=False,
        )
        assert first.query_cells_read == second.query_cells_read
        assert first.update_cells_written == second.update_cells_written

    def test_scenario_separates_methods(self):
        """The ETL scenario's update bias must hurt the prefix-sum method
        more than RPS, matching the paper's motivation."""
        ps = run_scenario(
            "nightly_etl", PrefixSumCube, shape=(64, 64), operations=30,
            verify=False,
        )
        rps = run_scenario(
            "nightly_etl", RelativePrefixSumCube, shape=(64, 64),
            operations=30, verify=False,
        )
        assert rps.cells_per_update < ps.cells_per_update / 5


class TestCliWorkload:
    def test_listing(self, capsys):
        from repro.cli import main

        assert main(["workload"]) == 0
        out = capsys.readouterr().out
        assert "dashboard" in out and "nightly_etl" in out

    def test_run_via_cli(self, capsys):
        from repro.cli import main

        assert main([
            "workload", "audit", "--n", "32", "--ops", "10",
            "--methods", "rps",
        ]) == 0
        out = capsys.readouterr().out
        assert "rps" in out
        assert "mismatches" in out

    def test_unknown_method_rejected(self):
        from repro.cli import main

        with pytest.raises(WorkloadError):
            main(["workload", "audit", "--methods", "quantum"])

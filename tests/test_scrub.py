"""Anti-entropy scrubber: digest comparison, repair, resync."""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cluster import CubeCluster
from repro.faults import FaultPlan

from .conftest import brute_range_sum, random_range

SHAPE = (10, 8)


@pytest.fixture
def cluster(tmp_path, rng):
    cube = rng.integers(0, 25, SHAPE).astype(np.int64)
    built = CubeCluster(
        RelativePrefixSumCube,
        cube,
        data_dir=tmp_path,
        num_shards=2,
        replication_factor=2,
    )
    yield built, cube
    built.close()


def corrupt_replica(cluster, node_id, amount=997.0):
    """Flip live RP storage on a replica.

    The cluster is flushed first so the corrupted front buffer stays the
    published one — otherwise a pending group's buffer swap would hide
    the damage from the digest until the next republish.
    """
    cluster.flush()
    node = cluster.node(node_id)
    node.service._front.method.rp._rp.flat[0] += amount
    return node


class TestScrubOnce:
    def test_clean_cluster_has_no_divergence(self, cluster):
        built, _ = cluster
        report = built.scrubber.scrub_once()
        assert report["shards"] == 2
        assert report["checks"] == 2  # one replica per shard
        assert report["divergences"] == 0
        assert report["repairs"] == 0
        assert report["skipped"] == []

    def test_detects_and_repairs_corrupted_replica(self, cluster, rng):
        built, cube = cluster
        corrupt_replica(built, "s0.n1")
        report = built.scrubber.scrub_once()
        assert report["divergences"] == 1
        assert report["repairs"] == 1
        # the next round sees a converged cluster again
        clean = built.scrubber.scrub_once()
        assert clean["divergences"] == 0
        metrics = built.stats()["metrics"]
        assert metrics["scrub_divergences"] == 1
        assert metrics["scrub_repairs"] == 1
        # and the repaired replica serves exact sums
        for _ in range(10):
            low, high = random_range(rng, SHAPE)
            assert built.range_sum(low, high) == brute_range_sum(
                cube, low, high
            )

    def test_phantom_update_on_replica_is_detected(self, cluster):
        built, cube = cluster
        built.flush()
        node = built.node("s1.n1")
        # an update the primary never saw: version skew, not bit rot
        node.service.submit_batch([((0, 0), 123.0)])
        node.service.flush()
        report = built.scrubber.scrub_once()
        assert report["divergences"] == 1
        assert built.scrubber.scrub_once()["divergences"] == 0
        assert built.total() == cube.sum()

    def test_lagging_replica_is_resynced_without_digesting(self, cluster):
        built, _ = cluster
        node = built.node("s0.n1")
        node.lagging = True
        report = built.scrubber.scrub_once()
        assert report["resyncs"] == 1
        assert not node.lagging
        # it was convicted by the lag flag, not by a digest check
        assert report["divergences"] == 0

    def test_dead_primary_skips_shard_instead_of_crashing(
        self, tmp_path, rng
    ):
        cube = rng.integers(0, 25, SHAPE).astype(np.int64)
        plan = FaultPlan(seed=2)
        with CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp_path,
            num_shards=2,
            replication_factor=2,
            fault_plan=plan,
        ) as built:
            plan.kill("s1.n0")
            report = built.scrubber.scrub_once()
            assert len(report["skipped"]) == 1
            assert "shard 1" in report["skipped"][0]
            # the healthy shard was still fully scrubbed
            assert report["checks"] == 1

    def test_resync_failure_is_contained_per_shard(self, tmp_path, rng):
        """A resync that cannot read the primary's durable log must be
        recorded as skipped, not abort the whole round."""
        cube = rng.integers(0, 25, SHAPE).astype(np.int64)
        with CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp_path,
            num_shards=2,
            replication_factor=2,
        ) as built:
            built.node("s0.n1").lagging = True
            # make shard 0's directory unrecoverable for resync
            for path in (tmp_path / "shard-0").glob("ckpt-*.npz"):
                path.unlink()
            report = built.scrubber.scrub_once()
            assert report["resyncs"] == 0
            assert len(report["skipped"]) == 1
            assert "s0.n1" in report["skipped"][0]
            # the other shard was still fully scrubbed
            assert report["shards"] == 2
            assert report["checks"] == 1

    def test_scrub_round_metric_counts_checks(self, cluster):
        built, _ = cluster
        built.scrubber.scrub_once()
        built.scrubber.scrub_once()
        metrics = built.stats()["metrics"]
        assert metrics["scrub_rounds"] == 2
        assert metrics["scrub_digest_checks"] == 4

    def test_background_thread_starts_and_stops(self, cluster):
        import time

        built, _ = cluster
        built.scrubber.start(interval_s=0.01)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if built.stats()["metrics"]["scrub_rounds"] > 0:
                    break
                time.sleep(0.01)
            assert built.stats()["metrics"]["scrub_rounds"] > 0
        finally:
            built.scrubber.stop()

    def test_shard_visit_order_is_seeded(self, cluster):
        built, _ = cluster
        # two scrubbers with the same seed shuffle identically
        import random

        first = random.Random(0)
        second = random.Random(0)
        items = list(range(8))
        a, b = items[:], items[:]
        first.shuffle(a)
        second.shuffle(b)
        assert a == b
        # and the cluster's scrubber still converges regardless of order
        corrupt_replica(built, "s1.n1")
        assert built.scrubber.scrub_once()["divergences"] == 1
        assert built.scrubber.scrub_once()["divergences"] == 0

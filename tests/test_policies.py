"""Unit tests for buffer replacement policies (repro.storage.policies)."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import LatencyModel, SimulatedDisk
from repro.storage.policies import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    make_policy,
)


def make_pool(policy, capacity=3, pages=10):
    disk = SimulatedDisk(page_size=2)
    disk.allocate(pages)
    return disk, BufferPool(disk, capacity, policy=policy)


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        for page in (0, 1, 2):
            policy.admitted(page)
        policy.touched(0)  # 1 is now the least recent
        assert policy.evict() == 1

    def test_removed_forgotten(self):
        policy = LruPolicy()
        policy.admitted(0)
        policy.admitted(1)
        policy.removed(0)
        assert policy.evict() == 1


class TestFifo:
    def test_ignores_recency(self):
        policy = FifoPolicy()
        for page in (0, 1, 2):
            policy.admitted(page)
        policy.touched(0)
        policy.touched(0)
        assert policy.evict() == 0  # still first in

    def test_empty_raises(self):
        with pytest.raises(StorageError):
            FifoPolicy().evict()


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        for page in (0, 1, 2):
            policy.admitted(page)
        # All referenced: the hand clears 0, 1, 2 then evicts 0.
        assert policy.evict() == 0

    def test_reference_bit_protects(self):
        policy = ClockPolicy()
        for page in (0, 1, 2):
            policy.admitted(page)
        first = policy.evict()      # clears all bits, evicts 0
        policy.touched(1)           # re-reference 1
        second = policy.evict()     # 1 gets a second chance -> evicts 2
        assert (first, second) == (0, 2)

    def test_removed_mid_ring(self):
        policy = ClockPolicy()
        for page in (0, 1, 2):
            policy.admitted(page)
        policy.removed(1)
        evicted = {policy.evict(), policy.evict()}
        assert evicted == {0, 2}


class TestMakePolicy:
    def test_names(self):
        assert make_policy("lru").name == "lru"
        assert make_policy("fifo").name == "fifo"
        assert make_policy("clock").name == "clock"
        assert make_policy(None).name == "lru"

    def test_unknown(self):
        with pytest.raises(StorageError):
            make_policy("belady")


class TestPoolWithPolicies:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
    def test_durability_under_any_policy(self, policy):
        disk, pool = make_pool(policy, capacity=2, pages=6)
        for page in range(6):
            frame = pool.get_page(page, for_write=True)
            frame[0] = float(page)
        pool.flush()
        for page in range(6):
            assert disk.read_page(page)[0] == float(page)

    def test_scan_resistant_workload_differentiates(self):
        """A loop over capacity+1 pages: FIFO==LRU thrash; CLOCK too —
        but a hot page mixed into the loop separates LRU from FIFO."""
        def run(policy):
            disk, pool = make_pool(policy, capacity=3, pages=8)
            for _ in range(6):
                pool.get_page(0)          # hot page
                pool.get_page(1 + (_ % 2))
                pool.get_page(3 + (_ % 3))
            return pool.stats.hits

        assert run("lru") >= run("fifo")


class TestLatencyModel:
    def test_default_charges_nothing(self):
        disk = SimulatedDisk(page_size=2)
        disk.allocate(4)
        disk.read_page(0)
        disk.read_page(3)
        assert disk.stats.elapsed == 0.0

    def test_seek_plus_transfer(self):
        disk = SimulatedDisk(
            page_size=2, latency=LatencyModel(seek=10.0, transfer=1.0)
        )
        disk.allocate(4)
        disk.read_page(0)   # seek + transfer
        disk.read_page(1)   # sequential: transfer only
        disk.read_page(3)   # seek + transfer
        assert disk.stats.elapsed == pytest.approx(10 + 1 + 1 + 10 + 1)

    def test_same_page_counts_as_sequential(self):
        disk = SimulatedDisk(
            page_size=2, latency=LatencyModel(seek=5.0, transfer=1.0)
        )
        disk.allocate(2)
        disk.read_page(0)
        disk.write_page(0, np.zeros(2))
        assert disk.stats.elapsed == pytest.approx(5 + 1 + 1)

    def test_reset_clears_elapsed(self):
        disk = SimulatedDisk(
            page_size=2, latency=LatencyModel(seek=5.0, transfer=1.0)
        )
        disk.allocate(1)
        disk.read_page(0)
        disk.stats.reset()
        assert disk.stats.elapsed == 0.0

"""Unit tests for method profiling (repro.metrics.profile)."""

import pytest

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.metrics.profile import characterize, render_profile


@pytest.fixture(scope="module")
def rps_profile():
    return characterize(
        RelativePrefixSumCube, shape=(32, 32), operations=30, box_size=6
    )


class TestCharacterize:
    def test_sections_present(self, rps_profile):
        assert rps_profile["method"] == "rps"
        assert rps_profile["cube_cells"] == 1024
        for section in ("query", "update"):
            for key in ("mean_cells", "median_cells", "max_cells",
                        "worst_case_cells", "mean_seconds"):
                assert key in rps_profile[section]

    def test_rps_shape_of_costs(self, rps_profile):
        # constant-ish queries, bounded updates
        assert rps_profile["query"]["max_cells"] <= 16
        assert rps_profile["update"]["worst_case_cells"] < 1024

    def test_naive_profile_extremes(self):
        profile = characterize(NaiveCube, shape=(32, 32), operations=30)
        assert profile["update"]["max_cells"] == 1
        assert profile["query"]["worst_case_cells"] == 30 * 30

    def test_prefix_profile_extremes(self):
        profile = characterize(PrefixSumCube, shape=(32, 32), operations=30)
        assert profile["query"]["max_cells"] <= 4
        assert profile["update"]["worst_case_cells"] == 1024

    def test_method_kwargs_forwarded(self):
        profile = characterize(
            RelativePrefixSumCube, shape=(32, 32), operations=10,
            box_size=16,
        )
        # larger boxes -> larger in-box RP cascades possible
        assert profile["update"]["max_cells"] >= 16

    def test_probes_leave_structure_consistent(self):
        """characterize applies +1/-1 worst-case probes; net effect zero."""
        profile = characterize(
            RelativePrefixSumCube, shape=(16, 16), operations=10
        )
        assert profile["cost_product_worst"] > 0


class TestRenderProfile:
    def test_render_contains_key_figures(self, rps_profile):
        text = render_profile(rps_profile)
        assert "profile: rps" in text
        assert "32x32" in text
        assert "query" in text and "update" in text
        assert "product" in text


class TestCliProfile:
    def test_cli_runs(self, capsys):
        from repro.cli import main

        assert main([
            "profile", "--n", "32", "--ops", "10", "--methods", "rps",
            "--box-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile: rps" in out

    def test_cli_rejects_unknown_method(self):
        from repro.cli import main
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["profile", "--methods", "oracle"])

"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import paper
from repro.baselines import FenwickCube, NaiveCube, PrefixSumCube
from repro.core import RelativePrefixSumCube


@pytest.fixture
def paper_cube():
    """A fresh copy of the paper's 9x9 example array (Figure 1)."""
    return paper.ARRAY_A.copy()


@pytest.fixture
def rng():
    """Deterministic random generator for test data."""
    return np.random.default_rng(12345)


#: All in-memory method classes, for parametrized equivalence tests.
METHOD_CLASSES = [NaiveCube, PrefixSumCube, FenwickCube, RelativePrefixSumCube]


@pytest.fixture(params=METHOD_CLASSES, ids=lambda c: c.name)
def method_class(request):
    """Parametrize a test over every range-sum method."""
    return request.param


def brute_range_sum(array, low, high):
    """Oracle: direct scan of the inclusive range."""
    slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
    return array[slices].sum()


def random_range(generator, shape):
    """A uniformly random inclusive range within ``shape``."""
    low, high = [], []
    for n in shape:
        a, b = sorted(int(x) for x in generator.integers(0, n, size=2))
        low.append(a)
        high.append(b)
    return tuple(low), tuple(high)

"""Edge-case tests across the method family.

Degenerate shapes, extreme box sizes, numeric corner cases — the inputs
that exercise boundary arithmetic rather than the happy path.
"""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.baselines.sparse import SparseNaiveCube
from repro.core.rps import RelativePrefixSumCube
from tests.conftest import METHOD_CLASSES


ALL_METHODS = METHOD_CLASSES + [SparseNaiveCube]


@pytest.mark.parametrize("method_class", ALL_METHODS, ids=lambda c: c.name)
class TestDegenerateShapes:
    def test_single_cell_cube(self, method_class):
        cube = method_class(np.array([[7]]))
        assert cube.total() == 7
        assert cube.range_sum((0, 0), (0, 0)) == 7
        cube.apply_delta((0, 0), 3)
        assert cube.total() == 10

    def test_one_dimensional(self, method_class, rng):
        a = rng.integers(-5, 10, size=(17,))
        cube = method_class(a)
        assert cube.range_sum((3,), (11,)) == a[3:12].sum()
        cube.apply_delta((0,), 5)
        assert cube.total() == a.sum() + 5

    def test_single_row(self, method_class, rng):
        a = rng.integers(0, 9, size=(1, 13))
        cube = method_class(a)
        assert cube.range_sum((0, 2), (0, 9)) == a[0, 2:10].sum()

    def test_single_column(self, method_class, rng):
        a = rng.integers(0, 9, size=(13, 1))
        cube = method_class(a)
        assert cube.range_sum((2, 0), (9, 0)) == a[2:10, 0].sum()

    def test_five_dimensions(self, method_class, rng):
        a = rng.integers(0, 5, size=(3, 3, 3, 3, 3))
        cube = method_class(a)
        low, high = (0, 1, 0, 2, 1), (2, 2, 1, 2, 2)
        slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
        assert cube.range_sum(low, high) == a[slices].sum()

    def test_prime_dimension_sizes(self, method_class, rng):
        a = rng.integers(0, 9, size=(7, 11))
        cube = method_class(a)
        assert cube.total() == a.sum()
        cube.apply_delta((6, 10), 1)
        assert cube.total() == a.sum() + 1


class TestNumericEdges:
    def test_all_zero_cube(self):
        for cls in ALL_METHODS:
            cube = cls(np.zeros((6, 6)))
            assert cube.total() == 0
            assert cube.range_sum((1, 1), (4, 4)) == 0

    def test_negative_values(self, rng):
        a = rng.integers(-100, -1, size=(8, 8))
        for cls in ALL_METHODS:
            cube = cls(a)
            assert cube.range_sum((2, 2), (5, 5)) == a[2:6, 2:6].sum()

    def test_large_values_no_overflow(self):
        # int8 input promoted to int64: sums that would overflow int8
        a = np.full((16, 16), 127, dtype=np.int8)
        for cls in (NaiveCube, PrefixSumCube, FenwickCube,
                    RelativePrefixSumCube):
            cube = cls(a)
            assert cube.total() == 127 * 256

    def test_float_precision_stability(self, rng):
        a = rng.random((20, 20)) * 1e6
        cube = RelativePrefixSumCube(a, box_size=5)
        for _ in range(10):
            low = tuple(int(x) for x in rng.integers(0, 20, size=2))
            high = tuple(int(rng.integers(l, 20)) for l in low)
            slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
            assert cube.range_sum(low, high) == pytest.approx(
                a[slices].sum(), rel=1e-9
            )

    def test_alternating_sign_cancellation(self):
        a = np.indices((10, 10)).sum(axis=0) % 2 * 2 - 1  # +1/-1 checker
        cube = RelativePrefixSumCube(a, box_size=3)
        assert cube.total() == a.sum()
        assert cube.range_sum((0, 0), (9, 8)) == a[:, :9].sum()


class TestBoxSizeExtremes:
    @pytest.mark.parametrize("k", [1, 2, 9, 10, 100])
    def test_every_k_correct_on_9x9(self, paper_cube, k):
        cube = RelativePrefixSumCube(paper_cube, box_size=k)
        assert cube.range_sum((2, 3), (7, 8)) == (
            paper_cube[2:8, 3:9].sum()
        )
        cube.apply_delta((4, 4), 5)
        assert cube.cell_value((4, 4)) == paper_cube[4, 4] + 5

    def test_k_equal_n(self, rng):
        """One box covering everything: the overlay carries no weight
        (V=0 for the single box) and RP degenerates to full prefix sums."""
        a = rng.integers(0, 9, size=(8, 8))
        cube = RelativePrefixSumCube(a, box_size=8)
        assert cube.overlay.anchor_value((0, 0)) == 0
        before = cube.counter.snapshot()
        cube.apply_delta((0, 0), 1)
        # the cascade fills the whole (single) box
        assert before.delta(cube.counter).cells_written == 64

    def test_k_one_rp_is_identity(self, rng):
        """k=1: every cell is its own box; RP stores A itself."""
        a = rng.integers(0, 9, size=(6, 6))
        cube = RelativePrefixSumCube(a, box_size=1)
        assert np.array_equal(cube.rp.array(), a)
        before = cube.counter.snapshot()
        cube.apply_delta((3, 3), 1)
        assert cube.rp.counter.structure_written("RP") == 1


class TestDegenerateBoxBatchPaths:
    """k=1, k=n_i and k>n_i on the RPS query/update/batch paths.

    The degenerate overlays (every cell its own box; one box for the
    whole cube; partial boxes everywhere) must stay exact through batch
    updates under every strategy and through the batched query kernels.
    """

    SHAPE = (7, 5)  # non-square so k=n_i differs per axis

    def _boxes(self):
        n1, n2 = self.SHAPE
        return {
            "k=1": 1,
            "k=n_i": (n1, n2),
            "k>n_i": max(self.SHAPE) * 3,
        }

    @pytest.mark.parametrize("strategy", ["incremental", "rebuild", "auto"])
    def test_apply_batch_strategies_stay_exact(self, rng, strategy):
        for label, box in self._boxes().items():
            a = rng.integers(-9, 9, size=self.SHAPE)
            cube = RelativePrefixSumCube(a, box_size=box)
            expected = a.copy()
            batch = []
            for _ in range(12):
                cell = tuple(int(rng.integers(0, n)) for n in self.SHAPE)
                delta = int(rng.integers(-5, 6))
                batch.append((cell, delta))
                expected[cell] += delta
            cube.apply_batch(batch, strategy=strategy)
            assert np.array_equal(cube.to_array(), expected), (
                f"{label} strategy={strategy}"
            )
            cube.verify_structures()

    def test_batched_queries_at_degenerate_boxes(self, rng):
        for label, box in self._boxes().items():
            a = rng.integers(-9, 9, size=self.SHAPE)
            cube = RelativePrefixSumCube(a, box_size=box)
            lows, highs = [], []
            for lo_hi in np.ndindex(*self.SHAPE):
                lows.append((0, 0))
                highs.append(lo_hi)
            lows = np.asarray(lows, dtype=np.intp)
            highs = np.asarray(highs, dtype=np.intp)
            got = cube.range_sum_many(lows, highs)
            prefixes = cube.prefix_sum_many(highs)
            for q, target in enumerate(np.ndindex(*self.SHAPE)):
                expected = a[tuple(slice(0, t + 1) for t in target)].sum()
                assert got[q] == expected, f"{label} range at {target}"
                assert prefixes[q] == expected, f"{label} prefix at {target}"

    def test_point_update_then_batch_query_roundtrip(self, rng):
        for label, box in self._boxes().items():
            a = rng.integers(0, 9, size=self.SHAPE)
            cube = RelativePrefixSumCube(a, box_size=box)
            expected = a.copy()
            for _ in range(8):
                cell = tuple(int(rng.integers(0, n)) for n in self.SHAPE)
                cube.update(cell, 42)  # set-semantics path
                expected[cell] = 42
            top = tuple(n - 1 for n in self.SHAPE)
            full = cube.range_sum_many([(0, 0)], [top])
            assert full[0] == expected.sum(), label
            cube.verify_structures()

    def test_k_above_n_reports_single_box(self, rng):
        a = rng.integers(0, 9, size=self.SHAPE)
        cube = RelativePrefixSumCube(a, box_size=100)
        assert cube.overlay.boxes_shape == (1, 1)
        assert cube.total() == a.sum()


class TestUpdatePositionsExhaustive:
    def test_every_cell_of_small_cube(self, rng):
        """Update every position of a 6x6 (k=2), checking structures
        stay exact after each — catches slice off-by-ones anywhere."""
        a = rng.integers(0, 9, size=(6, 6))
        cube = RelativePrefixSumCube(a, box_size=2)
        expected = a.copy()
        for idx in np.ndindex(6, 6):
            cube.apply_delta(idx, 1)
            expected[idx] += 1
            assert cube.prefix_sum((5, 5)) == expected.sum()
        assert np.array_equal(cube.to_array(), expected)
        cube.verify_structures()

    def test_every_cell_3d(self, rng):
        a = rng.integers(0, 5, size=(4, 4, 4))
        cube = RelativePrefixSumCube(a, box_size=2)
        expected = a.copy()
        for idx in np.ndindex(4, 4, 4):
            cube.apply_delta(idx, 2)
            expected[idx] += 2
        assert np.array_equal(cube.to_array(), expected)
        cube.verify_structures()

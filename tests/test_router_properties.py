"""Property-based invalidation suite for the query router.

Hypothesis drives randomized interleavings of submits, flushes, rollup
builds, and routed reads against a :class:`~repro.routing.QueryRouter`,
and checks three invariants on **every** answer of every read:

* **P1 (stamped exactness)** — the value equals the brute-force oracle
  evaluated at exactly the snapshot version stamped on the answer. The
  stamp must truthfully name the snapshot the value was computed from,
  no matter which tier served it.
* **P2 (read-your-flushed-writes)** — after ``flush()`` returns, no
  answer may be stamped below the flushed version: a cache that serves
  a pre-flush value post-flush is broken even if it stamps honestly.
* **P3 (monotone stamps)** — a single client's reads never travel back
  in time: every stamp in read *N+1* is >= every stamp in read *N*.

Together P1+P2 pin the invalidation contract from both sides: P1 kills
forged stamps (fresh stamp on a stale value) and P2 kills broken
freshness gates (stale value served with its honest old stamp). The two
mutation tests at the bottom deliberately break the router each way and
assert the corresponding invariant catches it — proof the suite has
teeth, as demanded by the issue's acceptance criteria.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.rps import RelativePrefixSumCube
from repro.routing import QueryRouter, ResultCache
from repro.routing.router import ServiceBackend
from repro.serve import CubeService

from .conftest import brute_range_sum


class RouterHarness:
    """Tracks the submitted-group history and checks P1/P2/P3.

    The service applies groups in submission order, so the oracle at
    version ``v`` is the initial cube plus the first ``v`` groups —
    reconstructable for any stamp a read reports, even when the
    background writer has advanced past a concurrent reader.
    """

    def __init__(self, cube):
        self.states = [np.asarray(cube, dtype=np.float64).copy()]
        self.groups = []
        self.flush_floor = 0
        self.prev_read_max = 0

    def record_submit(self, group):
        self.groups.append(group)

    def record_flush(self):
        self.flush_floor = len(self.groups)

    def oracle(self, version):
        assert 0 <= version <= len(self.groups), (
            f"stamp {version} names a snapshot that never existed "
            f"({len(self.groups)} groups submitted)"
        )
        while len(self.states) <= version:
            state = self.states[-1].copy()
            for cell, delta in self.groups[len(self.states) - 1]:
                state[cell] += delta
            self.states.append(state)
        return self.states[version]

    def check_read(self, lows, highs, batch):
        batch_min = min(batch.stamps)
        for lo, hi, value, stamp, tier in zip(
            lows, highs, batch.values, batch.stamps, batch.tiers
        ):
            expected = brute_range_sum(self.oracle(stamp), lo, hi)
            assert value == expected, (
                f"P1 violated: tier {tier!r} answered {value} for box "
                f"{tuple(lo)}..{tuple(hi)} stamped v{stamp}, but the "
                f"oracle at v{stamp} says {expected}"
            )
            assert stamp >= self.flush_floor, (
                f"P2 violated: tier {tier!r} answer stamped v{stamp} "
                f"after flush() acknowledged v{self.flush_floor}"
            )
        assert batch_min >= self.prev_read_max, (
            f"P3 violated: read stamped as low as v{batch_min} after a "
            f"previous read observed v{self.prev_read_max}"
        )
        self.prev_read_max = max(batch.stamps)


def _dims(draw):
    d = draw(st.integers(min_value=1, max_value=2))
    return tuple(
        draw(st.integers(min_value=4, max_value=10)) for _ in range(d)
    )


@st.composite
def programs(draw):
    """A cube plus an op sequence over it: submits, flushes, rollup
    builds, and multi-box reads."""
    shape = _dims(draw)

    def cells():
        return st.tuples(
            *[st.integers(min_value=0, max_value=n - 1) for n in shape]
        )

    def boxes():
        return st.tuples(cells(), cells()).map(
            lambda pair: (
                tuple(min(a, b) for a, b in zip(*pair)),
                tuple(max(a, b) for a, b in zip(*pair)),
            )
        )

    op = st.one_of(
        st.tuples(
            st.just("write"),
            st.lists(
                st.tuples(
                    cells(),
                    st.integers(min_value=-9, max_value=9).filter(bool),
                ),
                min_size=1,
                max_size=4,
            ),
        ),
        st.tuples(st.just("flush")),
        st.tuples(
            st.just("read"),
            st.lists(boxes(), min_size=1, max_size=6),
        ),
        st.tuples(
            st.just("rollup"), st.sampled_from((2, 4))
        ),
    )
    ops = draw(st.lists(op, min_size=2, max_size=14))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return shape, seed, ops


def run_program(
    shape, seed, ops, *, cache_cls=ResultCache, backend_wrap=None
):
    """Execute one interleaving, checking the invariants at each read."""
    rng = np.random.default_rng(seed)
    cube = rng.integers(0, 50, shape).astype(np.float64)
    harness = RouterHarness(cube)
    with CubeService(RelativePrefixSumCube, cube) as service:
        backend = ServiceBackend(service)
        if backend_wrap is not None:
            backend = backend_wrap(backend)
        with QueryRouter(
            backend,
            cache=cache_cls(),
            auto_build=False,
            observe_every=1,
        ) as router:
            for op in ops:
                if op[0] == "write":
                    group = [(cell, float(d)) for cell, d in op[1]]
                    router.submit_batch(group)
                    harness.record_submit(group)
                elif op[0] == "flush":
                    router.flush()
                    harness.record_flush()
                elif op[0] == "rollup":
                    router.build_rollup(op[1])
                elif op[0] == "read":
                    lows = np.array([b[0] for b in op[1]])
                    highs = np.array([b[1] for b in op[1]])
                    batch = router.route_many(lows, highs)
                    harness.check_read(lows, highs, batch)
            # end every program with a flush + full-cube read so the
            # final state is always exercised through every tier
            router.flush()
            harness.record_flush()
            lows = np.zeros((1, len(shape)), dtype=int)
            highs = np.array([[n - 1 for n in shape]])
            harness.check_read(lows, highs, router.route_many(lows, highs))


@settings(max_examples=60, deadline=None)
@given(program=programs())
def test_every_routed_answer_matches_oracle_at_its_stamp(program):
    """P1/P2/P3 hold over randomized submit/flush/build/read
    interleavings: each answer equals the oracle at the version stamped
    on the response, never below the flushed floor, never regressing."""
    run_program(*program)


@settings(max_examples=25, deadline=None)
@given(program=programs())
def test_invariants_hold_with_tiny_cache_pressure(program):
    """The invariants survive constant eviction: a 2-entry cache forces
    every path through insert/evict/stale churn."""
    run_program(
        program[0],
        program[1],
        program[2],
        cache_cls=lambda: ResultCache(max_entries=2),
    )


# -- mutation tests: the suite must catch a deliberately broken router --------


class _ForgedStampCache(ResultCache):
    """Broken invalidation, flavor 1: ignores the version check and
    serves whatever entry exists. The router stamps cache hits with the
    *current* version, so the stale value arrives under a fresh stamp —
    a forged stamp P1 must catch."""

    def get(self, key, stamp):
        from repro.routing.cache import HIT, MISS

        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS, None
            _, value, _ = entry
            return HIT, value


class _FrozenStampBackend:
    """Broken invalidation, flavor 2: the freshness gate consults a
    stale snapshot version, so pre-write cache entries keep "matching"
    after a write and are served with their honest old stamps. P1 holds
    (the stamp is truthful); P2 is what catches it."""

    def __init__(self, backend):
        self._backend = backend
        self.shape = backend.shape
        self._frozen = backend.current_stamp()

    def current_stamp(self):
        return self._frozen

    def __getattr__(self, name):
        return getattr(self._backend, name)


def _mutation_program():
    """read -> write -> flush -> read: any broken invalidation must
    reveal itself on the second read of the same box."""
    shape = (6, 6)
    ops = [
        ("read", [((0, 0), (5, 5)), ((1, 1), (3, 4))]),
        ("write", [((2, 2), 7)]),
        ("flush",),
        ("read", [((0, 0), (5, 5)), ((1, 1), (3, 4))]),
    ]
    return shape, 123, ops


def test_mutation_forged_stamp_is_caught():
    """A cache that serves stale values under fresh stamps fails P1."""
    shape, seed, ops = _mutation_program()
    with pytest.raises(AssertionError, match="P1 violated"):
        run_program(shape, seed, ops, cache_cls=_ForgedStampCache)


def test_mutation_broken_freshness_gate_is_caught():
    """A router whose freshness gate never sees new versions serves
    stale-but-honestly-stamped values; P2 fails even though P1 holds."""
    shape, seed, ops = _mutation_program()
    with pytest.raises(AssertionError, match="P2 violated"):
        run_program(
            shape, seed, ops, backend_wrap=_FrozenStampBackend
        )

"""CubeCluster: sharded exact queries, replication, failover, hedging."""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cluster import (
    BreakerPolicy,
    ClusterError,
    ClusterUnavailableError,
    CubeCluster,
    Deadline,
    HedgePolicy,
)
from repro.errors import DeadlineExceededError, RangeError, WALError
from repro.faults import FaultPlan
from repro.workloads import ClusterWorkloadRunner

from .conftest import brute_range_sum, random_range

SHAPE = (12, 10)


def make_cube(rng):
    return rng.integers(0, 40, SHAPE).astype(np.int64)


def make_cluster(tmp_path, cube, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("replication_factor", 2)
    kwargs.setdefault(
        "breaker", BreakerPolicy(failure_threshold=2, cooldown_s=60.0)
    )
    return CubeCluster(
        RelativePrefixSumCube, cube, data_dir=tmp_path, **kwargs
    )


def random_groups(rng, oracle, count, per_group=5):
    """Seeded update groups, mirrored into ``oracle`` as they are made."""
    groups = []
    for _ in range(count):
        group = []
        for _ in range(per_group):
            cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
            delta = float(rng.integers(-6, 7) or 1)
            group.append((cell, delta))
            oracle[cell] += delta
        groups.append(group)
    return groups


class TestQueries:
    def test_cross_shard_range_sums_match_oracle(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            for _ in range(40):
                low, high = random_range(rng, SHAPE)
                assert cluster.range_sum(low, high) == brute_range_sum(
                    cube, low, high
                )

    def test_batched_queries_accumulate_per_shard_partials(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            lows, highs = [], []
            for _ in range(15):
                low, high = random_range(rng, SHAPE)
                lows.append(low)
                highs.append(high)
            values = cluster.range_sum_many(lows, highs)
            for value, low, high in zip(values, lows, highs):
                assert value == brute_range_sum(cube, low, high)

    def test_updates_become_visible_after_flush(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        with make_cluster(tmp_path, cube) as cluster:
            for group in random_groups(rng, oracle, 6):
                acked = cluster.submit_batch(group)
                assert acked  # at least one shard involved
            cluster.flush()
            assert cluster.total() == oracle.sum()
            for _ in range(20):
                low, high = random_range(rng, SHAPE)
                assert cluster.range_sum(low, high) == brute_range_sum(
                    oracle, low, high
                )

    def test_malformed_query_is_a_caller_error_not_unavailability(
        self, tmp_path, rng
    ):
        with make_cluster(tmp_path, make_cube(rng)) as cluster:
            with pytest.raises(RangeError):
                cluster.range_sum((0, 0), (99, 0))
            with pytest.raises(RangeError):
                cluster.range_sum((3, 3), (1, 3))

    def test_query_counts_one_read_per_involved_shard(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube, num_shards=3) as cluster:
            cluster.range_sum((0, 0), (11, 9))  # spans all three shards
            metrics = cluster.stats()["metrics"]
            assert metrics["queries_routed"] == 1
            assert metrics["query_shard_reads"] == 3


class TestFailover:
    def test_kill_primary_promotes_replica_with_zero_acked_loss(
        self, tmp_path, rng
    ):
        """The PR's acceptance test: kill a primary under a seeded plan,
        keep serving, and match the brute-force oracle exactly."""
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=11, kill_node_at={"s0.n0": 7})
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            # the kill fires mid-stream; inline failover must absorb it
            for group in random_groups(rng, oracle, 10):
                cluster.submit_batch(group)
            cluster.flush()
            stats = cluster.stats()
            assert stats["metrics"]["failovers"] == {0: 1}
            assert stats["nodes"]["s0.n0"]["state"] == "dead"
            assert stats["nodes"]["s0.n1"]["role"] == "primary"
            # every acked group survived the failover (WAL replay)
            assert cluster.total() == oracle.sum()
            for _ in range(25):
                low, high = random_range(rng, SHAPE)
                assert cluster.range_sum(low, high) == brute_range_sum(
                    oracle, low, high
                )
            # and the promoted primary keeps acking durably
            for group in random_groups(rng, oracle, 4):
                cluster.submit_batch(group)
            cluster.flush()
            assert cluster.total() == oracle.sum()

    def test_reads_survive_a_killed_primary_before_any_failover(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        plan = FaultPlan(seed=3)
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            plan.kill("s0.n0")
            # no monitor tick yet: the read path itself falls through
            # to the replica after the primary's arm fails
            assert cluster.range_sum((0, 0), (11, 9)) == cube.sum()

    def test_unavailable_when_whole_shard_is_down(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            plan.kill("s1.n0")
            plan.kill("s1.n1")
            with pytest.raises(ClusterUnavailableError):
                cluster.range_sum((0, 0), (11, 9))
            # the healthy shard still answers exactly
            assert cluster.range_sum((0, 0), (5, 9)) == cube[:6].sum()
            assert cluster.stats()["metrics"]["unavailable_errors"] == 1

    def test_partial_write_reports_acked_shards(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=5)
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            plan.kill("s1.n0")
            plan.kill("s1.n1")
            group = [((0, 0), 5.0), ((11, 9), 7.0)]  # spans both shards
            with pytest.raises(ClusterUnavailableError) as excinfo:
                cluster.submit_batch(group)
            assert list(excinfo.value.acked) == [0]
            cluster.flush()
            # shard 0's sub-group committed; shard 1 saw nothing
            assert cluster.range_sum((0, 0), (5, 9)) == cube[:6].sum() + 5.0

    def test_partition_then_heal_restores_service(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(seed=9)
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            plan.partition("s0.n0", "s0.n1")
            with pytest.raises(ClusterUnavailableError):
                cluster.range_sum((0, 0), (11, 9))
            plan.heal()
            assert cluster.range_sum((0, 0), (11, 9)) == cube.sum()

    def test_fsync_failure_after_durable_append_is_not_double_applied(
        self, tmp_path, rng
    ):
        """A WAL fsync failure raises *after* the record reached the OS,
        so recovery replays the group; the inline failover retry must
        recognize it as committed instead of resubmitting the deltas."""
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        with make_cluster(tmp_path, cube, num_shards=1) as cluster:
            wal = cluster.node("s0.n0").service._wal
            original = wal.sync_upto

            def fail_fsync(seq):
                wal.sync_upto = original  # fail only the first sync
                raise WALError(
                    f"injected fsync failure after seq {seq} hit the OS"
                )

            wal.sync_upto = fail_fsync
            oracle[3, 4] += 5.0
            acked = cluster.submit_batch([((3, 4), 5.0)])
            # the group committed once, under its original sequence
            assert acked == {0: 1}
            cluster.flush()
            stats = cluster.stats()
            assert stats["metrics"]["failovers"] == {0: 1}
            assert stats["nodes"]["s0.n1"]["role"] == "primary"
            # applied exactly once: a blind resubmit would add 5.0 twice
            assert cluster.total() == oracle.sum()
            for _ in range(10):
                low, high = random_range(rng, SHAPE)
                assert cluster.range_sum(low, high) == brute_range_sum(
                    oracle, low, high
                )

    def test_failed_promotion_recovery_keeps_a_retryable_primary(
        self, tmp_path, rng
    ):
        """If recovery of the dead primary's directory fails, the shard
        must keep its (fenced) primary for a later retry and must not
        destroy the replica it tried to promote."""
        cube = make_cube(rng)
        plan = FaultPlan(seed=4)
        with make_cluster(
            tmp_path, cube, num_shards=1, fault_plan=plan
        ) as cluster:
            # make the durable directory unrecoverable
            for path in (tmp_path / "shard-0").glob("ckpt-*.npz"):
                path.unlink()
            plan.kill("s0.n0")
            replica_set = cluster.replica_sets[0]
            with pytest.raises(ClusterUnavailableError):
                replica_set.failover()
            # the fenced node still holds the primary role...
            assert replica_set.primary.node_id == "s0.n0"
            assert not cluster.node("s0.n1").is_primary
            # ...and the replica's service survived the failed attempt
            assert cluster.node("s0.n1").service.total() == cube.sum()
            # the monitor's next tick retries instead of dying
            cluster.monitor.tick()
            assert replica_set.primary.node_id == "s0.n0"

    def test_replica_read_never_predates_an_acked_write(
        self, tmp_path, rng
    ):
        """Replicas apply forwarded groups asynchronously; a read that
        falls through to a trailing replica must wait for it to catch
        up to the last acked group, never serve the older snapshot."""
        cube = make_cube(rng)
        plan = FaultPlan(seed=2)
        with make_cluster(
            tmp_path,
            cube,
            num_shards=1,
            fault_plan=plan,
            # stall the replica's writer on its first group so its
            # snapshot demonstrably trails the primary's ack
            node_fault_plans={
                "s0.n1": FaultPlan(latency_at=1, latency_seconds=0.4)
            },
        ) as cluster:
            cluster.submit_batch([((0, 0), 100.0)])
            plan.kill("s0.n0")  # reads must fall through to the replica
            assert cluster.total() == cube.sum() + 100.0

    def test_lagging_replica_is_excluded_then_resynced(self, tmp_path, rng):
        cube = make_cube(rng)
        oracle = cube.astype(np.float64)
        plan = FaultPlan(seed=13)
        with make_cluster(
            tmp_path, cube, num_shards=1, fault_plan=plan
        ) as cluster:
            plan.partition("s0.n1")  # replica misses the forwards
            for group in random_groups(rng, oracle, 3):
                cluster.submit_batch(group)
            cluster.flush()
            node = cluster.node("s0.n1")
            assert node.lagging
            plan.heal()
            # reads never touch the lagging replica: exact despite it
            assert cluster.total() == oracle.sum()
            cluster.replica_sets[0].resync(node)
            assert not node.lagging
            assert node.service.version == cluster.node(
                "s0.n0"
            ).service.version
            metrics = cluster.stats()["metrics"]
            assert metrics["replica_resyncs"] == {"s0.n1": 1}


class TestHedging:
    def test_slow_primary_is_hedged_and_replica_wins(self, tmp_path, rng):
        cube = make_cube(rng)
        plan = FaultPlan(
            seed=1,
            read_latency_at=(1,),
            read_latency_nodes=["s0.n0"],
            read_latency_seconds=0.5,
        )
        with make_cluster(
            tmp_path,
            cube,
            num_shards=1,
            fault_plan=plan,
            hedge=HedgePolicy(initial_delay_s=0.02),
        ) as cluster:
            assert cluster.range_sum((0, 0), (11, 9)) == cube.sum()
            metrics = cluster.stats()["metrics"]
            assert metrics["hedged_reads"] == 1
            assert metrics["hedge_wins"] == 1

    def test_fast_reads_never_hedge(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(
            tmp_path,
            cube,
            num_shards=1,
            hedge=HedgePolicy(initial_delay_s=5.0),
        ) as cluster:
            for _ in range(10):
                cluster.range_sum((0, 0), (11, 9))
            assert cluster.stats()["metrics"]["hedged_reads"] == 0

    def test_hedge_delay_tracks_observed_percentile(self):
        from repro.metrics.service import LatencyRecorder

        policy = HedgePolicy(
            quantile=95.0,
            initial_delay_s=0.5,
            min_delay_s=0.001,
            min_samples=4,
        )
        recorder = LatencyRecorder()
        assert policy.delay(recorder) == 0.5  # cold: initial delay
        for value in (0.010, 0.011, 0.012, 0.013, 0.014):
            recorder.record(value)
        assert policy.delay(recorder) == pytest.approx(0.014)

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=150.0)
        with pytest.raises(ValueError):
            HedgePolicy(initial_delay_s=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)


class TestDeadlines:
    def test_expired_deadline_raises_not_partial(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            expired = Deadline(0.0)  # already in the past
            with pytest.raises(DeadlineExceededError):
                cluster.range_sum((0, 0), (11, 9), deadline=expired)
            assert cluster.stats()["metrics"]["deadline_exceeded"] >= 1

    def test_expired_deadline_on_write_reports_acked(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube, num_shards=2) as cluster:
            with pytest.raises(ClusterUnavailableError) as excinfo:
                cluster.submit_batch(
                    [((0, 0), 1.0), ((11, 9), 1.0)],
                    deadline=Deadline(0.0),
                )
            assert excinfo.value.acked == {}

    def test_generous_deadline_does_not_interfere(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            deadline = Deadline.after(30.0)
            assert (
                cluster.range_sum((0, 0), (11, 9), deadline=deadline)
                == cube.sum()
            )
            acked = cluster.submit_batch(
                [((3, 3), 2.0)], deadline=deadline
            )
            assert acked


class TestClusterLifecycle:
    def test_validates_configuration(self, tmp_path, rng):
        cube = make_cube(rng)
        with pytest.raises(ClusterError):
            CubeCluster(
                RelativePrefixSumCube,
                cube,
                data_dir=tmp_path,
                replication_factor=0,
            )
        with pytest.raises(ClusterError):
            CubeCluster(
                RelativePrefixSumCube,
                cube,
                data_dir=tmp_path,
                num_shards=0,
            )

    def test_stats_shape(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            stats = cluster.stats()
            assert stats["shardmap"]["num_shards"] == 3
            assert len(stats["nodes"]) == 6
            for info in stats["nodes"].values():
                assert info["role"] in ("primary", "replica")
                assert info["state"] in ("ok", "lagging", "dead")
                assert info["breaker"] == "closed"
            for key in (
                "hedged_reads",
                "hedge_wins",
                "failovers",
                "breaker_trips",
                "scrub_repairs",
                "read_latency",
            ):
                assert key in stats["metrics"]

    def test_close_is_idempotent(self, tmp_path, rng):
        cluster = make_cluster(tmp_path, make_cube(rng))
        cluster.close()
        cluster.close()

    def test_kill_node_requires_a_fault_plan(self, tmp_path, rng):
        with make_cluster(tmp_path, make_cube(rng)) as cluster:
            with pytest.raises(ClusterError):
                cluster.kill_node("s0.n0")

    def test_kill_node_validates_the_id(self, tmp_path, rng):
        plan = FaultPlan(seed=0)
        with make_cluster(
            tmp_path, make_cube(rng), fault_plan=plan
        ) as cluster:
            with pytest.raises(ClusterError):
                cluster.kill_node("no.such.node")


class TestClusterWorkloadRunner:
    def test_mixed_traffic_matches_oracle(self, tmp_path, rng):
        cube = make_cube(rng)
        with make_cluster(tmp_path, cube) as cluster:
            runner = ClusterWorkloadRunner(
                cluster, cube.astype(np.float64)
            )
            queries = [random_range(rng, SHAPE) for _ in range(12)]
            groups = random_groups(rng, np.zeros(SHAPE), 12)
            result = runner.run(queries, groups)
            assert result.queries == 12
            assert result.updates == 12
            assert result.mismatches == 0
            assert result.unavailable == 0

    def test_oracle_absorbs_only_acked_updates_under_chaos(
        self, tmp_path, rng
    ):
        cube = make_cube(rng)
        plan = FaultPlan(seed=21)
        with make_cluster(
            tmp_path, cube, num_shards=2, fault_plan=plan
        ) as cluster:
            runner = ClusterWorkloadRunner(
                cluster, cube.astype(np.float64)
            )
            plan.kill("s1.n0")
            plan.kill("s1.n1")
            queries = [((0, 0), (5, 9))] * 4  # shard-0-only queries
            groups = random_groups(rng, np.zeros(SHAPE), 4)
            result = runner.run(queries, groups)
            assert result.mismatches == 0
            assert result.unavailable > 0

    def test_oracle_shape_must_match(self, tmp_path, rng):
        from repro.errors import WorkloadError

        with make_cluster(tmp_path, make_cube(rng)) as cluster:
            with pytest.raises(WorkloadError):
                ClusterWorkloadRunner(cluster, np.zeros((3, 3)))

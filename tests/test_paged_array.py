"""Unit tests for disk-backed arrays (repro.storage.paged_array)."""

import numpy as np

from repro.storage.layout import BoxAlignedLayout, RowMajorLayout
from repro.storage.paged_array import PagedNDArray


class TestPointOperations:
    def test_get_set(self):
        paged = PagedNDArray(RowMajorLayout((4, 4), 4))
        paged.set((2, 3), 7.5)
        assert paged.get((2, 3)) == 7.5
        assert paged.get((0, 0)) == 0.0

    def test_add(self):
        paged = PagedNDArray(RowMajorLayout((4, 4), 4))
        paged.add((1, 1), 3)
        paged.add((1, 1), 4)
        assert paged.get((1, 1)) == 7.0

    def test_durability_through_eviction(self):
        paged = PagedNDArray(RowMajorLayout((8, 8), 4), buffer_capacity=1)
        paged.set((0, 0), 1.0)
        paged.set((7, 7), 2.0)  # evicts (and persists) the first page
        assert paged.get((0, 0)) == 1.0
        assert paged.get((7, 7)) == 2.0


class TestBulkLoad:
    def test_from_array_roundtrip(self, rng):
        a = rng.integers(0, 50, size=(7, 9)).astype(np.float64)
        paged = PagedNDArray.from_array(a, BoxAlignedLayout((7, 9), 3))
        assert np.array_equal(paged.to_array(), a)

    def test_bulk_load_not_charged(self, rng):
        a = rng.integers(0, 50, size=(6, 6)).astype(np.float64)
        paged = PagedNDArray.from_array(a, RowMajorLayout((6, 6), 6))
        assert paged.disk.stats.total_ios == 0
        assert paged.pool.stats.misses == 0

    def test_dtype_preserved(self, rng):
        a = rng.integers(0, 5, size=(4, 4))
        paged = PagedNDArray.from_array(a, RowMajorLayout((4, 4), 4))
        assert paged.to_array().dtype == a.dtype


class TestIOAccounting:
    def test_cold_reads_fault_pages(self, rng):
        a = rng.integers(0, 5, size=(8, 8)).astype(np.float64)
        paged = PagedNDArray.from_array(
            a, BoxAlignedLayout((8, 8), 4), buffer_capacity=2
        )
        paged.pool.drop()  # cold cache (bulk load leaves frames resident)
        paged.reset_stats()
        paged.get((0, 0))
        assert paged.disk.stats.pages_read == 1
        paged.get((1, 1))  # same box, same page — cached
        assert paged.disk.stats.pages_read == 1
        paged.get((7, 7))  # different box
        assert paged.disk.stats.pages_read == 2

    def test_reset_stats(self, rng):
        a = rng.integers(0, 5, size=(4, 4)).astype(np.float64)
        paged = PagedNDArray.from_array(a, RowMajorLayout((4, 4), 2))
        paged.get((0, 0))
        paged.reset_stats()
        assert paged.disk.stats.total_ios == 0
        assert paged.pool.stats.misses == 0

    def test_repr(self):
        paged = PagedNDArray(RowMajorLayout((4, 4), 4))
        assert "PagedNDArray" in repr(paged)

"""Tests for saving/loading cubes, schemas, and engines (repro.persistence)."""

import numpy as np
import pytest

from repro import persistence
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import (
    BinningEncoder,
    CategoricalEncoder,
    DateEncoder,
    IdentityEncoder,
    IntegerEncoder,
    encoder_from_spec,
)
from repro.cube.engine import DataCubeEngine
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import EncodingError, StorageError
from tests.conftest import METHOD_CLASSES, random_range


class TestMethodRoundtrip:
    @pytest.mark.parametrize("method_class", METHOD_CLASSES,
                             ids=lambda c: c.name)
    def test_roundtrip_preserves_answers(self, rng, tmp_path, method_class):
        a = rng.integers(0, 30, size=(12, 12))
        original = method_class(a)
        original.apply_delta((3, 3), 7)
        path = tmp_path / "cube.npz"
        persistence.save_method(original, path)
        loaded = persistence.load_method(path)
        assert type(loaded) is method_class
        for _ in range(20):
            low, high = random_range(rng, a.shape)
            assert loaded.range_sum(low, high) == original.range_sum(
                low, high
            )

    def test_rps_box_sizes_preserved(self, rng, tmp_path):
        a = rng.integers(0, 10, size=(12, 20))
        original = RelativePrefixSumCube(a, box_size=(3, 5))
        path = tmp_path / "rps.npz"
        persistence.save_method(original, path)
        loaded = persistence.load_method(path)
        assert loaded.box_sizes == (3, 5)

    def test_float_dtype_preserved(self, rng, tmp_path):
        a = rng.random((6, 6))
        path = tmp_path / "f.npz"
        persistence.save_method(NaiveCube(a), path)
        loaded = persistence.load_method(path)
        assert loaded.total() == pytest.approx(a.sum())

    def test_unregistered_method_rejected(self, rng, tmp_path):
        from repro.storage.paged_rps import PagedRPSCube

        cube = PagedRPSCube(rng.integers(0, 5, (8, 8)), box_size=4)
        with pytest.raises(StorageError):
            persistence.save_method(cube, tmp_path / "x.npz")


class TestEncoderSpecs:
    @pytest.mark.parametrize("encoder", [
        IntegerEncoder(18, 80),
        CategoricalEncoder(["n", "s", "e", "w"]),
        BinningEncoder([0, 10, 20, 50]),
        DateEncoder("2026-01-01", 365),
        IdentityEncoder(9),
    ], ids=["integer", "categorical", "binning", "date", "identity"])
    def test_spec_roundtrip(self, encoder):
        rebuilt = encoder_from_spec(encoder.spec())
        assert type(rebuilt) is type(encoder)
        assert rebuilt.size == encoder.size
        for index in (0, encoder.size - 1):
            assert rebuilt.decode(index) == encoder.decode(index)

    def test_specs_are_json_safe(self):
        import json

        for encoder in (IntegerEncoder(0, 5), DateEncoder("2026-01-01", 7)):
            assert json.loads(json.dumps(encoder.spec())) == encoder.spec()

    def test_unknown_spec(self):
        with pytest.raises(EncodingError):
            encoder_from_spec({"type": "hologram"})


class TestSchemaRoundtrip:
    @pytest.fixture
    def schema(self):
        return CubeSchema(
            [
                Dimension("age", IntegerEncoder(18, 80)),
                Dimension("day", DateEncoder("2026-01-01", 90)),
                Dimension("region", CategoricalEncoder(["n", "s"])),
            ],
            measure="sales",
        )

    def test_dict_roundtrip(self, schema):
        rebuilt = persistence.schema_from_dict(
            persistence.schema_to_dict(schema)
        )
        assert rebuilt.shape == schema.shape
        assert rebuilt.measure == schema.measure
        assert [d.name for d in rebuilt.dimensions] == ["age", "day", "region"]

    def test_file_roundtrip(self, schema, tmp_path):
        path = tmp_path / "schema.json"
        persistence.save_schema(schema, path)
        rebuilt = persistence.load_schema(path)
        assert rebuilt.encode_selection({"age": (37, 52)}) == (
            schema.encode_selection({"age": (37, 52)})
        )


class TestEngineRoundtrip:
    def test_roundtrip_preserves_aggregates(self, tmp_path):
        schema = CubeSchema(
            [
                Dimension("age", IntegerEncoder(18, 40)),
                Dimension("day", DateEncoder("2026-01-01", 30)),
            ],
            measure="sales",
        )
        engine = DataCubeEngine(schema)
        engine.ingest({"age": 20, "day": "2026-01-05", "sales": 10.0})
        engine.ingest({"age": 20, "day": "2026-01-05", "sales": 30.0})
        engine.ingest({"age": 35, "day": "2026-01-20", "sales": 5.0})
        path = tmp_path / "engine.npz"
        persistence.save_engine(engine, path)
        loaded = persistence.load_engine(path)
        selection = {"age": (18, 25)}
        assert loaded.sum(selection) == engine.sum(selection)
        assert loaded.count(selection) == engine.count(selection)
        assert loaded.average(selection) == pytest.approx(
            engine.average(selection)
        )

    def test_loaded_engine_keeps_ingesting(self, tmp_path):
        schema = CubeSchema(
            [Dimension("x", IdentityEncoder(8))], measure="m"
        )
        engine = DataCubeEngine(schema, [{"x": 1, "m": 4.0}])
        path = tmp_path / "engine.npz"
        persistence.save_engine(engine, path)
        loaded = persistence.load_engine(path)
        loaded.ingest({"x": 2, "m": 6.0})
        assert loaded.sum() == pytest.approx(10.0)

    def test_backend_override(self, tmp_path):
        schema = CubeSchema(
            [Dimension("x", IdentityEncoder(8))], measure="m"
        )
        engine = DataCubeEngine(schema, [{"x": 0, "m": 1.0}])
        path = tmp_path / "engine.npz"
        persistence.save_engine(engine, path)
        loaded = persistence.load_engine(path, method=PrefixSumCube)
        assert isinstance(loaded.backend, PrefixSumCube)
        assert loaded.sum() == pytest.approx(1.0)


class TestAtomicityAndVerification:
    """save_* are atomic (temp + rename) and digest-protected; load_*
    refuse truncated or tampered files instead of returning garbage."""

    def _saved(self, tmp_path):
        method = RelativePrefixSumCube(
            np.arange(36, dtype=np.int64).reshape(6, 6)
        )
        return persistence.save_method(method, tmp_path / "cube")

    def test_save_embeds_digest(self, tmp_path):
        path = self._saved(tmp_path)
        with np.load(path) as data:
            assert persistence.DIGEST_KEY in data.files

    def test_no_temp_files_left_behind(self, tmp_path):
        self._saved(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_truncated_file_raises_naming_path(self, tmp_path):
        path = tmp_path / "cube.npz"
        self._saved(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(StorageError, match="cube.npz"):
            persistence.load_method(path)

    def test_tampered_contents_fail_the_digest(self, tmp_path):
        """A byte flip that keeps the zip structure intact must still be
        caught — that is what the embedded sha256 is for."""
        path = tmp_path / "cube.npz"
        method = NaiveCube(np.arange(16, dtype=np.int64).reshape(4, 4))
        persistence.save_method(method, path)
        # rewrite the archive with one array entry perturbed but the
        # recorded digest untouched
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload["array"] = payload["array"].copy()
        payload["array"][0, 0] += 1
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(StorageError, match="digest mismatch"):
            persistence.load_method(path)

    def test_bitflip_never_yields_wrong_structure(self, tmp_path):
        """Any single byte flip either raises StorageError — whatever
        layer notices first (zip directory, zlib stream, digest; raw
        zlib.error / NotImplementedError used to leak through) — or hit
        inert zip metadata and the structure loads byte-identical. It
        must never load *different* data."""
        path = tmp_path / "cube.npz"
        self._saved(tmp_path)
        pristine = persistence.load_method(path).to_array()
        blob = path.read_bytes()
        for offset in range(40, len(blob), max(1, len(blob) // 64)):
            damaged = bytearray(blob)
            damaged[offset] ^= 0xFF
            path.write_bytes(bytes(damaged))
            try:
                loaded = persistence.load_method(path)
            except StorageError:
                continue
            assert np.array_equal(loaded.to_array(), pristine), offset

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="missing"):
            persistence.load_method(tmp_path / "never-written.npz")

    def test_legacy_file_without_digest_still_loads(self, tmp_path):
        """Pre-digest files have no sha256 entry; they load leniently."""
        array = np.arange(9, dtype=np.int64).reshape(3, 3)
        path = tmp_path / "legacy.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle, method=np.array("naive"), array=array
            )
        loaded = persistence.load_method(path)
        assert np.array_equal(loaded.to_array(), array)

    def test_engine_files_verified_too(self, tmp_path):
        schema = CubeSchema(
            [Dimension("x", IdentityEncoder(4))], measure="m"
        )
        engine = DataCubeEngine(schema, [{"x": 1, "m": 2.0}])
        path = tmp_path / "engine.npz"
        persistence.save_engine(engine, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(StorageError, match="engine.npz"):
            persistence.load_engine(path)

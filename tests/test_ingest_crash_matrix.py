"""Kill the ingest coordinator at every stage boundary and resume.

The exactly-once contract under test: after any crash — including a
power-loss image of the target (``abandon`` + ``recover``) and a
primary failover underneath a cluster target — a resumed pipeline
drives the cube to a state bit-for-bit equal to a never-crashed run,
and every rejected row appears in the dead-letter file exactly once.
"""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.cluster import CubeCluster
from repro.cube.encoders import IntegerEncoder
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import ServiceOverloadedError
from repro.faults import FaultPlan, InjectedFault
from repro.ingest import (
    CheckpointStore,
    ClusterTarget,
    IngestPipeline,
    MemorySource,
    RollingCubeService,
    RollingServiceTarget,
    ServiceTarget,
    read_dead_letters,
)
from repro.serve import CubeService, DurabilityPolicy

SIZE = 8
STAGES = ["chunk", "encode", "deadletter", "intent", "submit", "checkpoint"]


def flat_schema():
    return CubeSchema(
        [
            Dimension("x", IntegerEncoder(0, SIZE - 1)),
            Dimension("y", IntegerEncoder(0, SIZE - 1)),
        ],
        "sales",
    )


def slot_schema():
    return CubeSchema(
        [Dimension("x", IntegerEncoder(0, SIZE - 1))], "sales"
    )


def flat_records(rng, n=400):
    records = [
        {
            "x": int(rng.integers(0, SIZE)),
            "y": int(rng.integers(0, SIZE)),
            "sales": float(rng.integers(1, 10)),
        }
        for _ in range(n)
    ]
    records.insert(50, {"x": 42, "y": 0, "sales": 1.0})  # poison
    records.insert(150, {"x": 0, "sales": 1.0})  # poison
    return records


def flat_oracle(records):
    cube = np.zeros((SIZE, SIZE))
    poison = []
    for i, r in enumerate(records):
        if "y" not in r or r["x"] >= SIZE:
            poison.append(i)
        else:
            cube[r["x"], r["y"]] += r["sales"]
    return cube, poison


class TestServiceMatrix:
    """Single durable CubeService: crash + power loss at every stage."""

    @pytest.mark.parametrize("stage", STAGES)
    @pytest.mark.parametrize("ordinal", [1, 2])
    def test_resume_is_bit_for_bit(self, tmp_path, rng, stage, ordinal):
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        state = tmp_path / "svc"

        def pipeline(svc, plan=None):
            return IngestPipeline(
                MemorySource(records, chunk_rows=32),
                flat_schema(),
                ServiceTarget(svc),
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                group_rows=64,
                fault_plan=plan,
            )

        plan = FaultPlan(ingest_crash_at={stage: ordinal})
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(dir=state),
        )
        with pipeline(svc, plan) as pipe:
            with pytest.raises(InjectedFault):
                pipe.run()
        svc.abandon()  # power-loss image, queues dropped on the floor

        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            with pipeline(recovered) as pipe:
                report = pipe.run()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()

        assert np.array_equal(array, expected)
        assert report["offset"] == len(records)
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison

    def test_double_crash_with_stale_intent(self, tmp_path, rng):
        """Crash at intent, then crash again mid-replay: the cleared
        intent must not fence the second resume against the first
        crash's group boundaries."""
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        state = tmp_path / "svc"

        def pipeline(svc, plan=None, group_rows=64):
            return IngestPipeline(
                MemorySource(records, chunk_rows=32),
                flat_schema(),
                ServiceTarget(svc),
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                group_rows=group_rows,
                fault_plan=plan,
            )

        svc = CubeService(
            RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
            durability=DurabilityPolicy(dir=state),
        )
        with pipeline(svc, FaultPlan(ingest_crash_at={"intent": 2})) as pipe:
            with pytest.raises(InjectedFault):
                pipe.run()
        svc.abandon()

        # second run crashes again, with a different group size so the
        # replayed groups do not align with the stale intent's range
        svc = CubeService.recover(state, RelativePrefixSumCube)
        with pipeline(
            svc, FaultPlan(ingest_crash_at={"submit": 1}), group_rows=96
        ) as pipe:
            with pytest.raises(InjectedFault):
                pipe.run()
        svc.abandon()

        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            with pipeline(recovered, group_rows=128) as pipe:
                report = pipe.run()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()
        assert np.array_equal(array, expected)
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison
        assert report["offset"] == len(records)


class TestRollingMatrix:
    """Rolling-window target: the crash can land mid-roll."""

    WINDOW = 4

    def make_records(self, rng, n=300):
        # one day per 32 rows: days 0..9 wrap the 4-slot physical
        # window twice, and no 64-row group ever spans enough days for
        # the group's own roll to expire its slower rows — so the
        # row-at-a-time oracle below matches the pipeline's
        # group-at-a-time advances exactly
        records = [
            {
                "day": i // 32,
                "x": int(rng.integers(0, SIZE)),
                "sales": float(rng.integers(1, 10)),
            }
            for i in range(n)
        ]
        # a hopelessly late arrival once the window has moved past it
        records.append({"day": 0, "x": 0, "sales": 1.0})
        return records

    def rolling_oracle(self, records):
        """Row-at-a-time simulation of the circular window."""
        array = np.zeros((self.WINDOW, SIZE))
        newest = 0
        expired = []
        for i, r in enumerate(records):
            day = r["day"]
            if day > newest:
                for s in range(newest + 1, day + 1):
                    array[s % self.WINDOW] = 0.0
                newest = day
            if day < max(0, newest - self.WINDOW + 1):
                expired.append(i)
                continue
            array[day % self.WINDOW, r["x"]] += r["sales"]
        return array, expired

    @pytest.mark.parametrize("stage", STAGES + ["roll"])
    def test_resume_mid_roll_is_bit_for_bit(self, tmp_path, rng, stage):
        records = self.make_records(rng)
        expected, expired = self.rolling_oracle(records)
        state = tmp_path / "svc"

        def pipeline(svc, plan=None):
            # fixed-size groups (no adaptation): group boundaries are
            # deterministic, so both runs roll at identical rows
            return IngestPipeline(
                MemorySource(records, chunk_rows=32),
                slot_schema(),
                RollingServiceTarget(RollingCubeService(svc)),
                checkpoint_path=tmp_path / "ck.json",
                deadletter_path=tmp_path / "dead.log",
                time_column="day",
                group_rows=64,
                queue_depth_low=-1,
                queue_depth_high=10 ** 9,
                fault_plan=plan,
            )

        plan = FaultPlan(ingest_crash_at={stage: 2})
        svc = CubeService(
            RelativePrefixSumCube, np.zeros((self.WINDOW, SIZE)),
            durability=DurabilityPolicy(dir=state),
        )
        crashed = True
        with pipeline(svc, plan) as pipe:
            try:
                pipe.run()
                crashed = False  # stage never reached: still verify
            except InjectedFault:
                pass
        svc.abandon()

        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            with pipeline(recovered) as pipe:
                report = pipe.run()
            recovered.flush()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()

        assert crashed or stage == "roll"
        assert np.array_equal(array, expected)
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == expired
        assert all(e["reason"] == "expired_slot" for e in dead)
        assert report["offset"] == len(records)


class TestClusterMatrix:
    """Sharded cluster target: the coordinator dies, the cluster
    lives, and primaries can fail over underneath the stream."""

    SHAPE = (SIZE, SIZE)

    def make_cluster(self, tmp_path, plan=None):
        return CubeCluster(
            RelativePrefixSumCube, np.zeros(self.SHAPE),
            data_dir=tmp_path / "cluster", num_shards=3,
            replication_factor=2, fault_plan=plan,
        )

    def cluster_array(self, cluster):
        lows, highs = [], []
        for x in range(SIZE):
            for y in range(SIZE):
                lows.append((x, y))
                highs.append((x, y))
        values = cluster.range_sum_many(lows, highs)
        return np.asarray(values, dtype=float).reshape(self.SHAPE)

    def pipeline(self, cluster, records, tmp_path, plan=None):
        return IngestPipeline(
            MemorySource(records, chunk_rows=32),
            flat_schema(),
            ClusterTarget(cluster, retry_backoff=0.005),
            checkpoint_path=tmp_path / "ck.json",
            deadletter_path=tmp_path / "dead.log",
            group_rows=64,
            fault_plan=plan,
        )

    @pytest.mark.parametrize("stage", STAGES)
    def test_coordinator_crash_resumes_exactly(self, tmp_path, rng, stage):
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        plan = FaultPlan(ingest_crash_at={stage: 2})
        with self.make_cluster(tmp_path) as cluster:
            with self.pipeline(cluster, records, tmp_path, plan) as pipe:
                with pytest.raises(InjectedFault):
                    pipe.run()
            with self.pipeline(cluster, records, tmp_path) as pipe:
                report = pipe.run()
            cluster.flush()
            assert np.array_equal(self.cluster_array(cluster), expected)
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison
        assert report["offset"] == len(records)

    def test_overloaded_shard_mid_group_does_not_double_apply(
        self, tmp_path, rng
    ):
        """A ``ServiceOverloadedError`` from one shard's bounded queue
        escapes to the backpressure loop *after* earlier shards in the
        group durably acked; the retried fenced submit must resubmit
        only the unmet shards — resubmitting the acked ones would apply
        their sub-updates twice."""
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        with self.make_cluster(tmp_path) as cluster:
            victim = cluster.replica_sets[-1]
            original = victim.submit
            state = {"tripped": False}

            def flaky_submit(updates, **kwargs):
                if not state["tripped"]:
                    state["tripped"] = True
                    raise ServiceOverloadedError("synthetic shard overload")
                return original(updates, **kwargs)

            victim.submit = flaky_submit
            with self.pipeline(cluster, records, tmp_path) as pipe:
                report = pipe.run()
            cluster.flush()
            assert state["tripped"]
            assert report["overload_backoffs"] == 1
            assert np.array_equal(self.cluster_array(cluster), expected)
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison

    def test_fenced_resubmit_of_committed_group_is_noop(self, tmp_path):
        """Re-entering a fenced submit whose expectations are already
        met everywhere (the post-ack overload image) applies nothing."""
        with self.make_cluster(tmp_path) as cluster:
            target = ClusterTarget(cluster)
            pairs = [((0, 0), 1.0), ((SIZE - 1, SIZE - 1), 2.0)]
            expect = target.expect(pairs)
            target.submit_fenced(pairs, expect)
            assert target.committed(expect) == "all"
            target.submit_fenced(pairs, expect)
            cluster.flush()
            assert self.cluster_array(cluster).sum() == 3.0

    def test_primary_failover_under_the_stream(self, tmp_path, rng):
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        plan = FaultPlan(seed=7, ingest_crash_at={"submit": 2})
        with self.make_cluster(tmp_path, plan) as cluster:
            with self.pipeline(cluster, records, tmp_path, plan) as pipe:
                with pytest.raises(InjectedFault):
                    pipe.run()
            # the crashed group is durable on the old primary; kill it
            # so the fence and the rest of the stream run against the
            # promoted replica
            plan.kill("s0.n0")
            with self.pipeline(cluster, records, tmp_path) as pipe:
                report = pipe.run()
            cluster.flush()
            assert np.array_equal(self.cluster_array(cluster), expected)
            assert report["fence_skips"] == 1
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison

    def test_partial_group_completes_missing_shards_only(
        self, tmp_path, rng
    ):
        """Simulate a coordinator that died between per-shard submits:
        intent durable, exactly one shard's sub-group applied."""
        records = flat_records(rng)
        expected, poison = flat_oracle(records)
        plan = FaultPlan(ingest_crash_at={"intent": 1})
        with self.make_cluster(tmp_path) as cluster:
            with self.pipeline(
                cluster, records, tmp_path, plan
            ) as pipe:
                with pytest.raises(InjectedFault):
                    pipe.run()

            # hand-apply the intended group's sub-updates for exactly
            # the shards the intent fenced lowest — one shard here —
            # mimicking a crash after that shard's ack
            store = CheckpointStore(tmp_path / "ck.json")
            pending = store.load()["pending"]
            start, end = pending["start"], pending["end"]
            schema = flat_schema()
            sums = {}
            for r in records[start:end]:
                try:
                    coords, measure = schema.encode_record(r)
                except Exception:
                    continue
                sums[coords] = sums.get(coords, 0.0) + float(measure)
            pairs = sorted(sums.items())
            grouped = {}
            for cell, delta in pairs:
                shard = cluster.shardmap.shard_of(cell)
                grouped.setdefault(shard, []).append((cell, delta))
            first_shard = sorted(grouped)[0]
            cluster.submit_batch(grouped[first_shard])

            with self.pipeline(cluster, records, tmp_path) as pipe:
                report = pipe.run()
            cluster.flush()
            assert np.array_equal(self.cluster_array(cluster), expected)
            assert report["partial_resubmits"] == 1
        dead = read_dead_letters(tmp_path / "dead.log")
        assert sorted(e["offset"] for e in dead) == poison

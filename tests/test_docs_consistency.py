"""Documentation-rot guards.

The markdown docs name modules, symbols, experiment ids, bench files and
example scripts; these tests verify every such reference still resolves,
so documentation cannot silently drift from the code.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "architecture.md",
    ROOT / "docs" / "ddim_derivation.md",
    ROOT / "docs" / "paper_walkthrough.md",
    ROOT / "docs" / "cookbook.md",
]


def test_all_doc_files_exist():
    for path in DOC_FILES:
        assert path.exists(), path


def _doc_text() -> str:
    return "\n".join(path.read_text() for path in DOC_FILES)


def test_referenced_modules_import():
    """Every `repro.x.y` dotted module mentioned in the docs imports."""
    text = _doc_text()
    modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)[`:.]", text))
    # strip symbol-level references down to their module part
    assert modules, "docs should reference modules"
    failures = []
    for dotted in sorted(modules):
        parts = dotted.split(".")
        for prefix_len in range(len(parts), 1, -1):
            candidate = ".".join(parts[:prefix_len])
            try:
                importlib.import_module(candidate)
                break
            except ImportError:
                continue
        else:
            failures.append(dotted)
    assert not failures, f"dangling module references: {failures}"


def test_referenced_experiment_ids_exist():
    """Experiment ids cited in the docs exist in the registry, except the
    bench-only ablations which must have a benchmark file instead."""
    from repro.bench.experiments import ALL_EXPERIMENTS

    text = _doc_text()
    cited = set(re.findall(r"\b([EA]\d{1,2})\b", text))
    cited = {c for c in cited if c not in {"A0"}}
    bench_dir = ROOT / "benchmarks"
    for eid in sorted(cited):
        if eid in ALL_EXPERIMENTS:
            continue
        pattern = f"bench_{eid.lower()}_*.py"
        assert list(bench_dir.glob(pattern)), (
            f"doc cites {eid} but neither the experiment registry nor "
            f"benchmarks/{pattern} provides it"
        )


def test_referenced_bench_files_exist():
    text = _doc_text()
    for name in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
        assert (ROOT / "benchmarks" / name).exists(), name


def test_referenced_example_scripts_exist():
    text = (ROOT / "README.md").read_text()
    for name in set(re.findall(r"`([a-z_]+\.py)`", text)):
        if name in {"settings.py"}:
            continue
        assert (ROOT / "examples" / name).exists(), name


def test_design_inventory_modules_exist():
    """Every module named in DESIGN.md's inventory table imports."""
    text = (ROOT / "DESIGN.md").read_text()
    for dotted in set(re.findall(r"`(repro\.[a-z_.]+[a-z_])`", text)):
        dotted = dotted.rstrip(".")
        if dotted.endswith(".*"):
            dotted = dotted[:-2]
        try:
            importlib.import_module(dotted)
        except ImportError:
            # symbol reference like repro.cube.engine:DataCubeEngine
            module = dotted.rsplit(".", 1)[0]
            importlib.import_module(module)


def test_experiments_md_covers_all_registered_experiments():
    """EXPERIMENTS.md documents every registry entry (E and A alike)."""
    from repro.bench.experiments import ALL_EXPERIMENTS

    text = (ROOT / "EXPERIMENTS.md").read_text()
    for eid in ALL_EXPERIMENTS:
        assert re.search(rf"\b{eid}\b", text), (
            f"EXPERIMENTS.md does not mention {eid}"
        )


def test_readme_quickstart_class_names_resolve():
    import repro

    text = (ROOT / "README.md").read_text()
    imports = re.findall(r"from repro import \(([^)]+)\)", text)
    imports += re.findall(r"from repro import ([^\n(]+)\n", text)
    for symbol in imports:
        for name in re.split(r"[,\s]+", symbol.strip()):
            if name:
                assert hasattr(repro, name), name

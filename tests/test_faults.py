"""The fault plan itself: deterministic, per-site, replayable chaos.

A chaos test is only as good as its reproducibility — these tests pin
the plan's scheduling semantics (1-based ordinals, independent sites,
seeded randomness) and its wiring into :class:`SimulatedDisk`.
"""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.faults import (
    FaultPlan,
    InjectedFault,
    NodeKilled,
    NodePartitioned,
)
from repro.storage import SimulatedDisk


class TestScheduling:
    def test_ordinals_are_one_based_and_validated(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(fail_write_at=0)
        plan = FaultPlan(fail_write_at=2)
        plan.on_disk_write()  # write #1 passes
        with pytest.raises(InjectedFault, match="write #2"):
            plan.on_disk_write()

    def test_single_ordinal_and_sequence_accepted(self):
        assert FaultPlan(fail_write_at=3).fail_write_at == (3,)
        assert FaultPlan(fail_write_at=[5, 2]).fail_write_at == (2, 5)

    def test_sites_count_independently(self):
        """Disk writes and WAL appends share the schedule but each site
        keeps its own ordinal counter."""
        plan = FaultPlan(fail_write_at=1)
        with pytest.raises(InjectedFault):
            plan.on_disk_write()
        action, _ = plan.on_wal_append(64)  # wal.append ordinal is also 1
        assert action == "fail"

    def test_deterministic_under_seed(self):
        def run(plan):
            events = []
            for _ in range(6):
                corrupt, extra = plan.on_disk_read()
                events.append((corrupt, round(extra, 9)))
            events.append(plan.corruption_offset(100))
            return events

        a = run(FaultPlan(seed=7, corrupt_read_at=(2, 5), latency_at=3,
                          latency_seconds=0.25))
        b = run(FaultPlan(seed=7, corrupt_read_at=(2, 5), latency_at=3,
                          latency_seconds=0.25))
        assert a == b

    def test_torn_write_keeps_a_strict_prefix(self):
        plan = FaultPlan(torn_write_at=1, torn_fraction=0.99)
        action, keep = plan.on_wal_append(10)
        assert action == "torn"
        assert 1 <= keep <= 9  # never zero bytes, never the whole record
        # fraction 0 still persists at least one byte (a real torn write
        # moved *something*)
        plan = FaultPlan(torn_write_at=1, torn_fraction=0.0)
        assert plan.on_wal_append(10)[1] == 1

    def test_crash_at_group_matches_sequence_not_ordinal(self):
        plan = FaultPlan(crash_at_group=5)
        assert plan.on_apply_group(4) == 0.0
        with pytest.raises(InjectedFault, match="group 5"):
            plan.on_apply_group(5)
        assert plan.stats() == {"writer_crashes": 1}

    def test_stats_tally_by_kind(self):
        plan = FaultPlan(corrupt_read_at=(1, 2), torn_write_at=1)
        plan.on_disk_read()
        plan.on_disk_read()
        plan.on_wal_append(32)
        assert plan.stats() == {
            "read_corruptions": 2,
            "wal_torn_writes": 1,
        }


class TestDiskWiring:
    def _disk(self, plan, verify=False):
        disk = SimulatedDisk(
            page_size=8, dtype=np.int64, verify_checksums=verify, faults=plan
        )
        disk.allocate(2)
        disk.write_page(0, np.arange(8))
        return disk

    def test_injected_write_failure_leaves_page_intact(self):
        plan = FaultPlan(fail_write_at=2)
        disk = self._disk(plan)  # write #1 succeeded
        with pytest.raises(InjectedFault):
            disk.write_page(0, np.zeros(8))
        assert np.array_equal(disk.read_page(0), np.arange(8))
        assert disk.stats.pages_written == 1  # the failed write never counted

    def test_read_corruption_is_caught_by_checksums(self):
        plan = FaultPlan(seed=3, corrupt_read_at=1)
        disk = self._disk(plan, verify=True)
        with pytest.raises(StorageError, match="checksum mismatch"):
            disk.read_page(0)
        assert plan.stats()["read_corruptions"] == 1

    def test_read_corruption_is_silent_without_checksums(self):
        """The hazard checksums exist for: without them the corrupted
        buffer is returned as if nothing happened."""
        plan = FaultPlan(seed=3, corrupt_read_at=1)
        disk = self._disk(plan, verify=False)
        page = disk.read_page(0)
        assert not np.array_equal(page, np.arange(8))
        # the medium lied once; on-disk state was never touched
        assert np.array_equal(disk.read_page(0), np.arange(8))

    def test_latency_spike_charges_elapsed(self):
        plan = FaultPlan(latency_at=1, latency_seconds=2.0)
        disk = self._disk(plan)
        before = disk.stats.elapsed
        disk.read_page(0)
        assert disk.stats.elapsed - before >= 1.0  # 2.0 * [0.5, 1.5) jitter


class TestNodeOps:
    def test_kill_ordinal_fires_at_and_after(self):
        plan = FaultPlan(kill_node_at={"n0": 3})
        plan.on_node_op("n0", "read")
        plan.on_node_op("n0", "submit")
        with pytest.raises(NodeKilled):
            plan.on_node_op("n0", "read")  # op #3: dead
        with pytest.raises(NodeKilled):
            plan.on_node_op("n0", "probe")  # and stays dead
        assert plan.stats()["node_kills"] == 1

    def test_kill_ordinals_are_validated(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(kill_node_at={"n0": 0})

    def test_nodes_count_operations_independently(self):
        plan = FaultPlan(kill_node_at={"n0": 2})
        plan.on_node_op("n0")
        for _ in range(5):
            plan.on_node_op("n1")  # n1 never dies
        with pytest.raises(NodeKilled):
            plan.on_node_op("n0")

    def test_imperative_kill_and_revive(self):
        plan = FaultPlan()
        plan.on_node_op("n0")
        plan.kill("n0")
        with pytest.raises(NodeKilled):
            plan.on_node_op("n0")
        plan.revive("n0")
        assert plan.on_node_op("n0") == 0.0
        assert plan.stats()["node_kills"] == 1

    def test_partition_is_transient_and_heals(self):
        plan = FaultPlan()
        plan.partition("n0", "n1")
        assert plan.is_partitioned("n0")
        with pytest.raises(NodePartitioned):
            plan.on_node_op("n0")
        plan.heal("n0")  # selective heal
        assert plan.on_node_op("n0") == 0.0
        with pytest.raises(NodePartitioned):
            plan.on_node_op("n1")
        plan.heal()  # heal everything
        assert plan.on_node_op("n1") == 0.0
        stats = plan.stats()
        assert stats["partitions"] == 1
        assert stats["partition_drops"] == 2

    def test_read_latency_hits_scheduled_read_ordinals_only(self):
        plan = FaultPlan(
            seed=4,
            read_latency_at=2,
            read_latency_seconds=0.2,
        )
        assert plan.on_node_op("n0", "read") == 0.0
        # submits tick their own counter: no spike for kind != read
        assert plan.on_node_op("n0", "submit") == 0.0
        assert plan.on_node_op("n0", "submit") == 0.0
        extra = plan.on_node_op("n0", "read")  # read #2
        assert 0.1 <= extra <= 0.3  # 0.2 * [0.5, 1.5) jitter
        assert plan.stats()["read_latency_spikes"] == 1

    def test_read_latency_node_filter(self):
        plan = FaultPlan(
            seed=4,
            read_latency_at=1,
            read_latency_nodes=["slow"],
            read_latency_seconds=0.2,
        )
        assert plan.on_node_op("fast", "read") == 0.0
        assert plan.on_node_op("slow", "read") > 0.0

    def test_kill_takes_precedence_over_partition(self):
        plan = FaultPlan()
        plan.partition("n0")
        plan.kill("n0")
        with pytest.raises(NodeKilled):
            plan.on_node_op("n0")

"""Unit tests for the exception hierarchy (repro.errors)."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.DimensionError,
    errors.RangeError,
    errors.BoxSizeError,
    errors.SchemaError,
    errors.EncodingError,
    errors.StorageError,
    errors.WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_single_except_clause_catches_everything():
    for exc in ALL_ERRORS:
        try:
            raise exc("boom")
        except errors.ReproError as caught:
            assert "boom" in str(caught)


def test_errors_carry_messages():
    err = errors.RangeError("coordinate 9 out of bounds")
    assert "coordinate 9" in str(err)

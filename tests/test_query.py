"""Unit tests for the query layer (repro.cube.query)."""

import pytest

from repro.cube.encoders import DateEncoder, IntegerEncoder
from repro.cube.engine import DataCubeEngine
from repro.cube.query import (
    ParsedQuery,
    RangeUnion,
    Selection,
    execute_query,
    parse_query,
)
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import RangeError, SchemaError


@pytest.fixture
def schema():
    return CubeSchema(
        [
            Dimension("age", IntegerEncoder(18, 80)),
            Dimension("day", DateEncoder("2026-01-01", 90)),
        ],
        measure="sales",
    )


@pytest.fixture
def engine(schema):
    engine = DataCubeEngine(schema)
    engine.ingest({"age": 40, "day": "2026-01-10", "sales": 100.0})
    engine.ingest({"age": 40, "day": "2026-02-10", "sales": 50.0})
    engine.ingest({"age": 60, "day": "2026-01-10", "sales": 30.0})
    return engine


class TestSelection:
    def test_to_index_range(self, schema):
        selection = Selection({"age": (37, 52)})
        low, high = selection.to_index_range(schema)
        assert low == (19, 0)
        assert high == (34, 89)

    def test_intersect_narrows(self):
        a = Selection({"age": (30, 60)})
        b = Selection({"age": (50, 80), "day": ("2026-01-01", "2026-01-31")})
        merged = a.intersect(b)
        assert merged.bounds["age"] == (50, 60)
        assert merged.bounds["day"] == ("2026-01-01", "2026-01-31")

    def test_intersect_empty_raises(self):
        with pytest.raises(RangeError):
            Selection({"age": (30, 40)}).intersect(
                Selection({"age": (50, 60)})
            )

    def test_truthiness(self):
        assert not Selection()
        assert Selection({"age": (1, 2)})


class TestRangeUnion:
    def test_needs_members(self):
        with pytest.raises(RangeError):
            RangeUnion([])

    def test_disjoint_ok(self, schema):
        union = RangeUnion(
            [Selection({"age": (18, 30)}), Selection({"age": (31, 45)})]
        )
        union.validate_disjoint(schema)  # no raise

    def test_overlap_detected(self, schema):
        union = RangeUnion(
            [Selection({"age": (18, 40)}), Selection({"age": (35, 50)})]
        )
        with pytest.raises(RangeError):
            union.validate_disjoint(schema)

    def test_overlap_on_different_dims_is_boxwise(self, schema):
        # Same ages but disjoint date windows: boxes do not intersect.
        union = RangeUnion(
            [
                Selection({"age": (18, 40),
                           "day": ("2026-01-01", "2026-01-31")}),
                Selection({"age": (18, 40),
                           "day": ("2026-02-01", "2026-02-28")}),
            ]
        )
        union.validate_disjoint(schema)


class TestParser:
    def test_basic_sum(self):
        parsed = parse_query(
            "SUM(sales) WHERE age BETWEEN 37 AND 52"
        )
        assert parsed == ParsedQuery(
            "sum", "sales", Selection({"age": (37, 52)})
        )

    def test_conjunction_with_dates(self):
        parsed = parse_query(
            "SUM(sales) WHERE age BETWEEN 37 AND 52 "
            "AND day BETWEEN '2026-01-01' AND '2026-03-31'"
        )
        assert parsed.selection.bounds["day"] == (
            "2026-01-01", "2026-03-31"
        )

    def test_equality_predicate(self):
        parsed = parse_query("AVG(sales) WHERE age = 40")
        assert parsed.aggregate == "average"
        assert parsed.selection.bounds["age"] == (40, 40)

    def test_no_where_clause(self):
        parsed = parse_query("COUNT(sales)")
        assert parsed.aggregate == "count"
        assert not parsed.selection

    def test_case_insensitive_keywords(self):
        parsed = parse_query("sum(sales) where age between 20 and 30")
        assert parsed.aggregate == "sum"

    def test_float_literals(self):
        parsed = parse_query("SUM(m) WHERE price BETWEEN 1.5 AND 9.75")
        assert parsed.selection.bounds["price"] == (1.5, 9.75)

    def test_bare_word_literals(self):
        parsed = parse_query("SUM(m) WHERE region BETWEEN east AND west")
        assert parsed.selection.bounds["region"] == ("east", "west")

    @pytest.mark.parametrize("bad", [
        "",
        "FROBNICATE(sales)",
        "SUM sales",
        "SUM(sales) WHERE",
        "SUM(sales) WHERE age",
        "SUM(sales) WHERE age NEAR 40",
        "SUM(sales) WHERE age BETWEEN 1",
        "SUM(sales) WHERE age BETWEEN 1 AND 2 age BETWEEN 3 AND 4",
        "SUM(sales) WHERE age = 1 AND age = 2",
        "SUM(sales) !!!",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(RangeError):
            parse_query(bad)


class TestExecuteQuery:
    def test_sum(self, engine):
        result = execute_query(
            engine,
            "SUM(sales) WHERE age BETWEEN 35 AND 45",
        )
        assert result == pytest.approx(150.0)

    def test_sum_with_dates(self, engine):
        result = execute_query(
            engine,
            "SUM(sales) WHERE day BETWEEN '2026-01-01' AND '2026-01-31'",
        )
        assert result == pytest.approx(130.0)

    def test_count_everything(self, engine):
        assert execute_query(engine, "COUNT(sales)") == 3

    def test_average(self, engine):
        result = execute_query(engine, "AVG(sales) WHERE age = 40")
        assert result == pytest.approx(75.0)

    def test_wrong_measure_rejected(self, engine):
        with pytest.raises(SchemaError):
            execute_query(engine, "SUM(profit)")

    def test_paper_query_verbatim(self, engine):
        """The paper's motivating query, as text."""
        text = (
            "SUM(sales) WHERE age BETWEEN 37 AND 52 "
            "AND day BETWEEN '2026-01-01' AND '2026-03-31'"
        )
        assert execute_query(engine, text) == pytest.approx(150.0)

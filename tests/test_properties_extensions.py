"""Property-based tests (hypothesis) for the extension layers.

Covers per-axis box sizes, batch strategies, the query parser, calendar
hierarchies, persistence, and the group-operator machinery.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregates.generalized import GROUP_XOR, GroupRelativePrefixCube
from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import DateEncoder, IntegerEncoder
from repro.cube.query import Selection, parse_query


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_anisotropic_rps_matches_oracle(data):
    """Random per-axis box sizes never change any answer."""
    d = data.draw(st.integers(1, 3))
    shape = tuple(data.draw(st.integers(2, 10)) for _ in range(d))
    sizes = tuple(data.draw(st.integers(1, 12)) for _ in range(d))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    array = rng.integers(-9, 9, size=shape)
    cube = RelativePrefixSumCube(array, box_size=sizes)
    for _ in range(5):
        low = tuple(int(rng.integers(0, n)) for n in shape)
        high = tuple(int(rng.integers(l, n)) for l, n in zip(low, shape))
        slices = tuple(slice(l, h + 1) for l, h in zip(low, high))
        assert cube.range_sum(low, high) == array[slices].sum()


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_batch_strategies_always_agree(data):
    """incremental == rebuild == auto, for any batch on any cube."""
    n = data.draw(st.integers(3, 12))
    seed = data.draw(st.integers(0, 10_000))
    k = data.draw(st.integers(1, n))
    rng = np.random.default_rng(seed)
    array = rng.integers(0, 9, size=(n, n))
    batch = [
        (
            (int(rng.integers(0, n)), int(rng.integers(0, n))),
            int(rng.integers(-5, 6)),
        )
        for _ in range(data.draw(st.integers(0, 20)))
    ]
    results = []
    for strategy in ("incremental", "rebuild", "auto"):
        cube = RelativePrefixSumCube(array, box_size=k)
        cube.apply_batch(list(batch), strategy=strategy)
        results.append(cube.to_array())
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])


@settings(max_examples=60, deadline=None)
@given(
    st.integers(-1000, 1000), st.integers(0, 1000),
    st.sampled_from(["SUM", "COUNT", "AVG"]),
    st.sampled_from(["age", "day", "region_code"]),
)
def test_parser_roundtrip_numeric_between(low, span, aggregate, dimension):
    """Any numeric BETWEEN parses back to exactly its bounds."""
    high = low + span
    text = f"{aggregate}(m) WHERE {dimension} BETWEEN {low} AND {high}"
    parsed = parse_query(text)
    assert parsed.measure == "m"
    assert parsed.selection.bounds[dimension] == (low, high)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_selection_intersection_is_conjunction(data):
    """intersect() == componentwise range intersection, when nonempty."""
    def rand_selection():
        bounds = {}
        for name in data.draw(
            st.sets(st.sampled_from(["a", "b", "c"]), min_size=1)
        ):
            low = data.draw(st.integers(0, 50))
            high = low + data.draw(st.integers(0, 50))
            bounds[name] = (low, high)
        return Selection(bounds)

    first, second = rand_selection(), rand_selection()
    try:
        merged = first.intersect(second)
    except Exception:
        # Raised only when some shared dimension's ranges are disjoint.
        shared = set(first.bounds) & set(second.bounds)
        assert any(
            max(first.bounds[n][0], second.bounds[n][0])
            > min(first.bounds[n][1], second.bounds[n][1])
            for n in shared
        )
        return
    for name, (low, high) in merged.bounds.items():
        in_first = first.bounds.get(name)
        in_second = second.bounds.get(name)
        expected_low = max(x[0] for x in (in_first, in_second) if x)
        expected_high = min(x[1] for x in (in_first, in_second) if x)
        assert (low, high) == (expected_low, expected_high)


import datetime as _dt


@settings(max_examples=30, deadline=None)
@given(
    st.dates(min_value=_dt.date(1900, 1, 1), max_value=_dt.date(8999, 1, 1)),
    st.integers(1, 800),
)
def test_calendar_members_tile_any_window(start, days):
    """Month members exactly tile any date window (no gaps, no overlaps)."""
    import datetime

    from repro.cube.engine import DataCubeEngine
    from repro.cube.hierarchy import CalendarHierarchy
    from repro.cube.schema import CubeSchema, Dimension

    schema = CubeSchema(
        [Dimension("day", DateEncoder(start, days))], measure="m"
    )
    engine = DataCubeEngine(schema)
    members = CalendarHierarchy(engine, "day").members("month")
    cursor = start
    for _, (member_start, member_end) in members:
        assert member_start == cursor
        assert member_end >= member_start
        cursor = member_end + datetime.timedelta(days=1)
    assert cursor == start + datetime.timedelta(days=days)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_persistence_roundtrip_property(data):
    """save_method/load_method is the identity on observable behaviour."""
    import tempfile
    from pathlib import Path

    from repro import persistence

    n = data.draw(st.integers(3, 10))
    k = data.draw(st.integers(1, n))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    array = rng.integers(-20, 20, size=(n, n))
    original = RelativePrefixSumCube(array, box_size=k)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cube.npz"
        persistence.save_method(original, path)
        loaded = persistence.load_method(path)
    assert np.array_equal(loaded.to_array(), original.to_array())
    assert loaded.box_sizes == original.box_sizes


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_xor_cube_self_inverse_updates(data):
    """Applying the same XOR twice is a no-op on every query."""
    n = data.draw(st.integers(3, 10))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    array = rng.integers(0, 1 << 16, size=(n, n))
    cube = GroupRelativePrefixCube(array, GROUP_XOR, box_size=3)
    baseline = [
        int(cube.range_query((0, 0), (n - 1, n - 1))),
        int(cube.range_query((0, 0), (n // 2, n // 2))),
    ]
    cell = (int(rng.integers(0, n)), int(rng.integers(0, n)))
    value = np.int64(data.draw(st.integers(0, 1 << 16)))
    cube.combine_into(cell, value)
    cube.combine_into(cell, value)
    assert [
        int(cube.range_query((0, 0), (n - 1, n - 1))),
        int(cube.range_query((0, 0), (n // 2, n // 2))),
    ] == baseline

"""Unit tests for update-stream generators (repro.workloads.updategen)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import updategen


def assert_valid_cell(shape, cell):
    assert len(cell) == len(shape)
    for c, n in zip(cell, shape):
        assert 0 <= c < n


class TestRandomUpdates:
    def test_count_validity_nonzero_deltas(self):
        shape = (15, 15)
        updates = list(updategen.random_updates(shape, 100, seed=1))
        assert len(updates) == 100
        for cell, delta in updates:
            assert_valid_cell(shape, cell)
            assert delta != 0
            assert -10 <= delta <= 10

    def test_deterministic(self):
        a = list(updategen.random_updates((9, 9), 30, seed=2))
        b = list(updategen.random_updates((9, 9), 30, seed=2))
        assert a == b

    def test_invalid_max_delta(self):
        with pytest.raises(WorkloadError):
            list(updategen.random_updates((9, 9), 1, max_delta=0))


class TestSkewedUpdates:
    def test_hot_cells_absorb_traffic(self):
        updates = list(
            updategen.skewed_updates(
                (50, 50), 500, hot_cells=4, hot_probability=0.9, seed=3
            )
        )
        from collections import Counter

        counts = Counter(cell for cell, _ in updates)
        top4 = sum(c for _, c in counts.most_common(4))
        assert top4 > 0.8 * len(updates)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(updategen.skewed_updates((9, 9), 1, hot_cells=0))


class TestAppendUpdates:
    def test_updates_land_in_recent_slice(self):
        shape = (50, 100)  # (age, day), day is the time axis
        updates = list(
            updategen.append_updates(
                shape, 200, time_axis=1, recent_fraction=0.1, seed=4
            )
        )
        for cell, delta in updates:
            assert_valid_cell(shape, cell)
            assert cell[1] >= 90  # last 10% of the time axis
            assert delta > 0     # appends only add

    def test_negative_axis(self):
        updates = list(
            updategen.append_updates((20, 30), 50, time_axis=-1, seed=5)
        )
        assert all(cell[1] >= 27 for cell, _ in updates)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            list(updategen.append_updates((9, 9), 1, recent_fraction=0))


class TestWorstCase:
    def test_prefix_sum_worst_is_origin(self):
        assert updategen.worst_case_cell((9, 9), "prefix_sum") == (0, 0)

    def test_rps_worst_is_ones(self):
        assert updategen.worst_case_cell((9, 9), "rps") == (1, 1)

    def test_rps_worst_clamped_for_tiny_dims(self):
        assert updategen.worst_case_cell((1, 9), "rps") == (0, 1)

    def test_naive(self):
        assert updategen.worst_case_cell((5, 5, 5), "naive") == (0, 0, 0)

"""Unit tests for the relative prefix sum cube (repro.core.rps)."""

import numpy as np
import pytest

from repro import paper
from repro.core.rps import RelativePrefixSumCube, default_box_size
from repro.errors import BoxSizeError, RangeError
from tests.conftest import brute_range_sum, random_range


class TestDefaultBoxSize:
    def test_square_root_rule(self):
        assert default_box_size((256, 256)) == 16
        assert default_box_size((100, 100)) == 10

    def test_mixed_shape_uses_geometric_mean(self):
        assert default_box_size((64, 64, 64)) == 8

    def test_minimum_is_one(self):
        assert default_box_size((2, 2)) >= 1

    def test_used_when_not_specified(self):
        cube = RelativePrefixSumCube(np.ones((64, 64)))
        assert cube.box_size == 8


class TestPrefixSums:
    def test_paper_worked_example(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        assert cube.prefix_sum(paper.EXAMPLE_QUERY_TARGET) == (
            paper.EXAMPLE_QUERY_RESULT
        )

    def test_every_prefix_matches_oracle(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        for idx in np.ndindex(9, 9):
            expected = paper_cube[: idx[0] + 1, : idx[1] + 1].sum()
            assert cube.prefix_sum(idx) == expected, idx

    @pytest.mark.parametrize("shape,k", [
        ((16,), 4),
        ((9, 9), 3),
        ((10, 7), 3),
        ((11, 11), 4),
        ((8, 8, 8), 2),
        ((7, 6, 5), 3),
        ((5, 5, 5, 5), 2),
    ])
    def test_prefixes_match_oracle_all_dims(self, rng, shape, k):
        a = rng.integers(0, 10, size=shape)
        cube = RelativePrefixSumCube(a, box_size=k)
        prefix = a.copy()
        for axis in range(a.ndim):
            prefix = np.cumsum(prefix, axis=axis)
        for idx in np.ndindex(*shape):
            assert cube.prefix_sum(idx) == prefix[idx], idx

    def test_prefix_costs_d_plus_2_reads(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        before = cube.counter.snapshot()
        cube.prefix_sum((7, 5))
        assert before.delta(cube.counter).cells_read == 2 + 2

    def test_boundary_targets(self, rng):
        """Targets lying exactly on box anchors/faces (the subtle case
        the d-dimensional generalization must get right)."""
        a = rng.integers(0, 10, size=(9, 9, 9))
        cube = RelativePrefixSumCube(a, box_size=3)
        prefix = a.cumsum(axis=0).cumsum(axis=1).cumsum(axis=2)
        for t in [
            (0, 0, 0), (3, 3, 3), (3, 5, 7), (6, 3, 1),
            (8, 6, 6), (3, 0, 6), (0, 4, 3),
        ]:
            assert cube.prefix_sum(t) == prefix[t], t


class TestRangeSums:
    def test_random_ranges_match_oracle(self, rng):
        a = rng.integers(0, 50, size=(20, 20))
        cube = RelativePrefixSumCube(a, box_size=4)
        for _ in range(100):
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_full_cube_range(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        assert cube.range_sum((0, 0), (8, 8)) == paper_cube.sum()
        assert cube.total() == paper_cube.sum()

    def test_single_cell_range(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        assert cube.range_sum((4, 7), (4, 7)) == paper_cube[4, 7]
        assert cube.cell_value((4, 7)) == paper_cube[4, 7]

    def test_inverted_range_rejected(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        with pytest.raises(RangeError):
            cube.range_sum((5, 5), (4, 6))


class TestUpdates:
    def test_paper_update_costs(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        before = cube.counter.snapshot()
        cube.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        written = before.delta(cube.counter).cells_written
        assert written == paper.UPDATE_EXAMPLE_RPS_TOTAL_CELLS

    def test_update_then_query(self, rng):
        a = rng.integers(0, 20, size=(12, 12))
        cube = RelativePrefixSumCube(a, box_size=4)
        a = a.copy()
        for _ in range(50):
            cell = tuple(int(x) for x in rng.integers(0, 12, size=2))
            delta = int(rng.integers(-5, 6))
            a[cell] += delta
            cube.apply_delta(cell, delta)
            low, high = random_range(rng, a.shape)
            assert cube.range_sum(low, high) == brute_range_sum(a, low, high)

    def test_set_update_semantics(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        cube.update((1, 1), 4)  # the paper's example: 3 -> 4
        assert cube.cell_value((1, 1)) == 4
        assert cube.prefix_sum((8, 8)) == paper_cube.sum() + 1

    def test_noop_set_update_writes_nothing(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        before = cube.counter.snapshot()
        cube.update((1, 1), int(paper_cube[1, 1]))
        assert before.delta(cube.counter).cells_written == 0

    def test_update_cost_breakdown(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        breakdown = cube.update_cost_breakdown((1, 1))
        assert breakdown == {"total": 16, "rp": 4, "overlay": 12}

    def test_breakdown_is_pure(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        before = cube.counter.snapshot()
        cube.update_cost_breakdown((1, 1))
        delta = before.delta(cube.counter)
        assert delta.cells_written == 0
        assert np.array_equal(cube.rp.array(), paper.ARRAY_RP)


class TestToArray:
    def test_roundtrip(self, rng):
        a = rng.integers(-10, 10, size=(10, 7))
        cube = RelativePrefixSumCube(a, box_size=3)
        assert np.array_equal(cube.to_array(), a)

    def test_roundtrip_3d_after_updates(self, rng):
        a = rng.integers(0, 10, size=(6, 6, 6))
        cube = RelativePrefixSumCube(a, box_size=2)
        a = a.copy()
        for _ in range(20):
            cell = tuple(int(x) for x in rng.integers(0, 6, size=3))
            a[cell] += 2
            cube.apply_delta(cell, 2)
        assert np.array_equal(cube.to_array(), a)


class TestValidationAndDtypes:
    def test_bad_box_size(self, paper_cube):
        with pytest.raises(BoxSizeError):
            RelativePrefixSumCube(paper_cube, box_size=0)

    def test_float_cubes(self, rng):
        a = rng.random((9, 9))
        cube = RelativePrefixSumCube(a, box_size=3)
        assert cube.range_sum((1, 1), (7, 7)) == pytest.approx(
            a[1:8, 1:8].sum()
        )
        cube.apply_delta((4, 4), 0.5)
        assert cube.cell_value((4, 4)) == pytest.approx(a[4, 4] + 0.5)

    def test_box_size_larger_than_cube(self, paper_cube):
        # One box covering everything: degenerates to plain prefix sums.
        cube = RelativePrefixSumCube(paper_cube, box_size=100)
        assert cube.range_sum((2, 2), (6, 6)) == paper_cube[2:7, 2:7].sum()

    def test_box_size_one(self, paper_cube):
        # RP degenerates to a copy of A; all weight on the overlay.
        cube = RelativePrefixSumCube(paper_cube, box_size=1)
        assert cube.range_sum((2, 2), (6, 6)) == paper_cube[2:7, 2:7].sum()

    def test_storage_cells(self, paper_cube):
        cube = RelativePrefixSumCube(paper_cube, box_size=3)
        # RP (81) + the paper-exact overlay count: 9 boxes x (3^2 - 2^2)
        assert cube.storage_cells() == 81 + 45

    def test_repr_mentions_box_size(self, paper_cube):
        assert "box_size=3" in repr(
            RelativePrefixSumCube(paper_cube, box_size=3)
        )

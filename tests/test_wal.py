"""The write-ahead log: framing, checksums, torn tails, checkpoints.

The WAL's one job is to make "acknowledged" mean "on disk, verifiable,
replayable". These tests pin the on-disk contract directly — encode /
scan roundtrips, both checksum algorithms, segment rotation, torn-tail
truncation versus mid-log corruption, sequence discipline, and the
checkpoint retention rules that bound replay.
"""

import numpy as np
import pytest

from repro import RelativePrefixSumCube
from repro.errors import WALCorruptionError, WALError
from repro.persistence import load_method
from repro.serve import wal as wal_mod
from repro.serve.wal import (
    ALGO_CRC32,
    ALGO_CRC32C,
    WriteAheadLog,
    crc32c,
    encode_record,
    replay,
)


def _groups(n, d=2, seed=0):
    """n deterministic (indices, deltas) groups of varied size."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        m = int(rng.integers(1, 5))
        indices = rng.integers(0, 8, size=(m, d)).astype(np.intp)
        deltas = rng.integers(-9, 10, size=m).astype(np.int64)
        out.append((indices, deltas))
    return out


class TestChecksum:
    def test_crc32c_check_value(self):
        """RFC 3720's CRC32C check value for the classic test vector."""
        assert crc32c(b"123456789") == 0xE3069283

    def test_crc32c_empty_and_incremental(self):
        assert crc32c(b"") == 0
        whole = crc32c(b"hello world")
        assert crc32c(b" world", crc32c(b"hello")) == whole


class TestRecordFraming:
    def test_roundtrip_both_algorithms(self, tmp_path):
        for algo, name in ((ALGO_CRC32, "crc32"), (ALGO_CRC32C, "crc32c")):
            d = tmp_path / name
            log = WriteAheadLog(d, checksum=name)
            groups = _groups(5)
            for seq, (indices, deltas) in enumerate(groups, start=1):
                log.append(seq, indices, deltas)
            log.close()
            records, torn = replay(d)
            assert torn is None
            assert [r.seq for r in records] == [1, 2, 3, 4, 5]
            for record, (indices, deltas) in zip(records, groups):
                assert np.array_equal(record.indices, indices)
                assert np.array_equal(record.deltas, deltas)
                assert record.deltas.dtype == np.int64

    def test_cross_algorithm_read(self, tmp_path):
        """The segment header names its checksum — a crc32c-written log
        reads back through the default reader and vice versa."""
        log = WriteAheadLog(tmp_path, checksum="crc32c")
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas)
        log.close()
        # reopening with the *other* configured checksum still replays
        # (reads honor the per-segment algorithm byte)
        reopened = WriteAheadLog(tmp_path, checksum="crc32")
        assert reopened.next_seq == 2
        reopened.close()

    def test_float_deltas_roundtrip(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        indices = np.array([[1, 2], [3, 4]], dtype=np.intp)
        deltas = np.array([0.5, -2.25])
        log.append(1, indices, deltas)
        log.close()
        records, _ = replay(tmp_path)
        assert records[0].deltas.dtype == np.float64
        assert np.array_equal(records[0].deltas, deltas)

    def test_empty_group_roundtrip(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        log.append(1, np.empty((0, 2), dtype=np.intp), np.empty(0))
        log.close()
        records, _ = replay(tmp_path)
        assert records[0].seq == 1
        assert records[0].indices.shape == (0, 2)


class TestSequenceDiscipline:
    def test_out_of_order_append_rejected(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas)
        with pytest.raises(WALError, match="seq"):
            log.append(3, indices, deltas)
        log.close()

    def test_reopen_resumes_sequence(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        for seq, (indices, deltas) in enumerate(_groups(3), start=1):
            log.append(seq, indices, deltas)
        log.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.next_seq == 4
        indices, deltas = _groups(1, seed=9)[0]
        reopened.append(4, indices, deltas)
        reopened.close()
        records, _ = replay(tmp_path)
        assert [r.seq for r in records] == [1, 2, 3, 4]


class TestSegments:
    def test_rotation_spreads_records(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_max_bytes=128)
        for seq, (indices, deltas) in enumerate(_groups(10), start=1):
            log.append(seq, indices, deltas)
        log.close()
        segments = sorted(tmp_path.glob("wal-*.seg"))
        assert len(segments) > 1
        records, torn = replay(tmp_path)
        assert torn is None
        assert [r.seq for r in records] == list(range(1, 11))

    def test_prune_upto_keeps_active_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, segment_max_bytes=128)
        for seq, (indices, deltas) in enumerate(_groups(10), start=1):
            log.append(seq, indices, deltas)
        total = len(list(tmp_path.glob("wal-*.seg")))
        removed = log.prune_upto(10)
        assert removed == total - 1  # the active segment always survives
        records, _ = replay(tmp_path)
        assert records[-1].seq == 10
        log.close()


class TestTornTailVersusCorruption:
    def _write(self, directory, n=4):
        log = WriteAheadLog(directory)
        for seq, (indices, deltas) in enumerate(_groups(n), start=1):
            log.append(seq, indices, deltas)
        log.close()
        return sorted(directory.glob("wal-*.seg"))[-1]

    def test_truncated_final_record_is_torn_tail(self, tmp_path):
        segment = self._write(tmp_path)
        blob = segment.read_bytes()
        segment.write_bytes(blob[:-7])  # tear the last record mid-payload
        records, torn = replay(tmp_path)
        assert [r.seq for r in records] == [1, 2, 3]
        assert torn is not None and torn.size > 0

    def test_garbage_tail_is_torn_tail(self, tmp_path):
        segment = self._write(tmp_path)
        with segment.open("ab") as handle:
            handle.write(b"\x13\x37" * 5)  # a crash mid-append
        records, torn = replay(tmp_path)
        assert [r.seq for r in records] == [1, 2, 3, 4]
        assert torn is not None

    def test_mid_log_corruption_raises(self, tmp_path):
        """A bad checksum *followed by committed data* is corruption, not
        a torn tail — replay must refuse rather than skip silently."""
        segment = self._write(tmp_path)
        blob = bytearray(segment.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip a bit well before the tail
        segment.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError):
            replay(tmp_path)

    def test_open_repairs_torn_tail(self, tmp_path):
        segment = self._write(tmp_path)
        good = len(segment.read_bytes())
        with segment.open("ab") as handle:
            handle.write(b"partial")
        log = WriteAheadLog(tmp_path)  # repair=True truncates
        assert len(segment.read_bytes()) == good
        assert log.next_seq == 5
        log.close()

    def test_open_without_repair_refuses_torn_tail(self, tmp_path):
        segment = self._write(tmp_path)
        with segment.open("ab") as handle:
            handle.write(b"partial")
        # a torn tail is an expected crash artifact, not corruption — so
        # the refusal is a plain WALError pointing at repair=True
        with pytest.raises(WALError, match="repair"):
            WriteAheadLog(tmp_path, repair=False)


class TestHeaderlessSegmentRepair:
    """A crash during rotation can leave the final segment with a
    partial 8-byte header, or none at all. Reopening must not append
    records into a headerless file — that would make every later acked
    group unreadable ('bad magic') at recovery."""

    def _seed(self, directory, n=3):
        log = WriteAheadLog(directory)
        for seq, (indices, deltas) in enumerate(_groups(n), start=1):
            log.append(seq, indices, deltas)
        log.close()

    @pytest.mark.parametrize(
        "stub", [b"", b"RPW"], ids=["empty", "partial-header"]
    )
    def test_headerless_final_segment_discarded(self, tmp_path, stub):
        self._seed(tmp_path)
        (tmp_path / f"wal-{4:020d}.seg").write_bytes(stub)
        log = WriteAheadLog(tmp_path)  # repair discards the shell
        assert log.next_seq == 4
        indices, deltas = _groups(1, seed=7)[0]
        log.append(4, indices, deltas)
        log.close()
        # the fresh segment carries a proper header: replay is clean
        records, torn = replay(tmp_path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3, 4]

    def test_headerless_only_segment_discarded(self, tmp_path):
        (tmp_path / f"wal-{1:020d}.seg").write_bytes(b"")
        log = WriteAheadLog(tmp_path)
        assert log.next_seq == 1
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas)
        log.close()
        records, torn = replay(tmp_path)
        assert torn is None and [r.seq for r in records] == [1]

    def test_empty_final_segment_refused_without_repair(self, tmp_path):
        self._seed(tmp_path)
        (tmp_path / f"wal-{4:020d}.seg").write_bytes(b"")
        with pytest.raises(WALError, match="header"):
            WriteAheadLog(tmp_path, repair=False)


class TestRealWriteFailures:
    """Un-injected I/O failures (disk full, EIO) must poison the log
    exactly like injected torn writes — never leave it appendable with
    a partial record on disk."""

    def test_fsync_failure_in_append_poisons_log(
        self, tmp_path, monkeypatch
    ):
        log = WriteAheadLog(tmp_path)
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas)

        def broken_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(wal_mod.os, "fsync", broken_fsync)
        with pytest.raises(OSError):
            log.append(2, indices, deltas)
        assert log.failed
        monkeypatch.undo()
        # the disk came back, but the tail state is unknown: still refuse
        with pytest.raises(WALError, match="failed"):
            log.append(2, indices, deltas)
        log.close(sync=False)

    def test_sync_upto_failure_poisons_log(self, tmp_path, monkeypatch):
        log = WriteAheadLog(tmp_path)
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas, sync=False)

        def broken_fsync(fd):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(wal_mod.os, "fsync", broken_fsync)
        with pytest.raises(WALError, match="fsync"):
            log.sync_upto(1)
        assert log.failed
        log.close(sync=False)


class TestGroupCommit:
    def test_sync_upto_covers_all_written_records(
        self, tmp_path, monkeypatch
    ):
        log = WriteAheadLog(tmp_path)
        for seq, (indices, deltas) in enumerate(_groups(3), start=1):
            log.append(seq, indices, deltas, sync=False)
        assert log.durable_seq == 0
        calls = []
        real_fsync = wal_mod.os.fsync
        monkeypatch.setattr(
            wal_mod.os,
            "fsync",
            lambda fd: (calls.append(fd), real_fsync(fd))[1],
        )
        log.sync_upto(3)
        assert log.durable_seq == 3
        assert len(calls) == 1  # one flush commits the whole batch
        log.sync_upto(2)  # already durable: no extra disk traffic
        assert len(calls) == 1
        log.close()
        records, torn = replay(tmp_path)
        assert torn is None
        assert [r.seq for r in records] == [1, 2, 3]

    def test_synced_append_advances_durable_seq(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas)
        assert log.durable_seq == 1
        log.close()

    def test_sync_upto_beyond_written_rejected(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        indices, deltas = _groups(1)[0]
        log.append(1, indices, deltas, sync=False)
        with pytest.raises(WALError, match="sync_upto"):
            log.sync_upto(5)
        log.close()


class TestCheckpoints:
    def _method(self, seed=0):
        rng = np.random.default_rng(seed)
        return RelativePrefixSumCube(rng.integers(0, 50, (9, 9)))

    def test_write_list_load_roundtrip(self, tmp_path):
        method = self._method()
        path = wal_mod.write_checkpoint(method, tmp_path, 7)
        assert wal_mod.list_checkpoints(tmp_path) == [(7, path)]
        loaded = load_method(path)
        assert np.array_equal(loaded.to_array(), method.to_array())

    def test_prune_checkpoints_keeps_newest(self, tmp_path):
        method = self._method()
        for seq in (3, 6, 9, 12):
            wal_mod.write_checkpoint(method, tmp_path, seq)
        removed = wal_mod.prune_checkpoints(tmp_path, keep=2)
        assert removed == 2
        assert [s for s, _ in wal_mod.list_checkpoints(tmp_path)] == [9, 12]

    def test_prune_wal_respects_oldest_retained_checkpoint(self, tmp_path):
        """Fallback to the older checkpoint must still be able to replay
        to tip — segments at or above its sequence stay."""
        log = WriteAheadLog(tmp_path, segment_max_bytes=64)
        method = self._method()
        for seq, (indices, deltas) in enumerate(_groups(12), start=1):
            log.append(seq, indices, deltas)
            if seq in (4, 8):
                wal_mod.write_checkpoint(method, tmp_path, seq)
        wal_mod.prune_wal(tmp_path, log, keep_checkpoints=2)
        records, _ = replay(tmp_path)
        # every group the *oldest* retained checkpoint (4) needs is there
        assert records[0].seq <= 5
        assert records[-1].seq == 12
        log.close()

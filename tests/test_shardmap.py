"""ShardMap: exact leading-dimension partitioning of cubes and queries."""

import numpy as np
import pytest

from repro.cluster import ShardMap
from repro.errors import ClusterError, RangeError

from .conftest import brute_range_sum, random_range


class TestConstruction:
    def test_bounds_cover_axis_without_overlap(self):
        shardmap = ShardMap((10, 4), 3)
        assert shardmap.bounds[0][0] == 0
        assert shardmap.bounds[-1][1] == 10
        for (_, stop), (start, _) in zip(
            shardmap.bounds, shardmap.bounds[1:]
        ):
            assert stop == start

    def test_near_equal_slabs(self):
        shardmap = ShardMap((10, 4), 3)
        sizes = [stop - start for start, stop in shardmap.bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_single_shard_owns_everything(self):
        shardmap = ShardMap((7, 3), 1)
        assert shardmap.bounds == ((0, 7),)

    @pytest.mark.parametrize("bad", [0, -1, 11])
    def test_invalid_shard_count_rejected(self, bad):
        with pytest.raises(ClusterError):
            ShardMap((10, 4), bad)

    def test_shard_shape_and_subarray(self, rng):
        array = rng.integers(0, 9, (11, 5))
        shardmap = ShardMap(array.shape, 4)
        for shard in range(4):
            slab = shardmap.subarray(array, shard)
            assert slab.shape == shardmap.shard_shape(shard)
            start, stop = shardmap.slab(shard)
            assert np.array_equal(slab, array[start:stop])

    def test_subarrays_reassemble_the_cube(self, rng):
        array = rng.integers(0, 9, (9, 4, 3))
        shardmap = ShardMap(array.shape, 3)
        stacked = np.concatenate(
            [shardmap.subarray(array, s) for s in range(3)], axis=0
        )
        assert np.array_equal(stacked, array)


class TestRouting:
    def test_shard_of_matches_slabs(self):
        shardmap = ShardMap((10, 4), 3)
        for row in range(10):
            shard = shardmap.shard_of((row, 0))
            start, stop = shardmap.slab(shard)
            assert start <= row < stop

    def test_shard_of_validates_cells(self):
        shardmap = ShardMap((10, 4), 2)
        with pytest.raises(RangeError):
            shardmap.shard_of((10, 0))
        with pytest.raises(RangeError):
            shardmap.shard_of((0, -1))
        with pytest.raises(RangeError):
            shardmap.shard_of((0,))

    def test_to_local_translates_leading_axis_only(self):
        shardmap = ShardMap((10, 4), 2)
        assert shardmap.to_local(1, (7, 3)) == (2, 3)
        with pytest.raises(ClusterError):
            shardmap.to_local(0, (7, 3))

    def test_split_updates_localizes_and_preserves_order(self):
        shardmap = ShardMap((10, 4), 2)
        grouped = shardmap.split_updates(
            [((0, 1), 1.0), ((9, 2), 2.0), ((1, 0), 3.0)]
        )
        assert grouped[0] == [((0, 1), 1.0), ((1, 0), 3.0)]
        assert grouped[1] == [((4, 2), 2.0)]


class TestSplitBox:
    def test_box_inside_one_shard(self):
        shardmap = ShardMap((10, 4), 2)
        pieces = shardmap.split_box((6, 0), (8, 3))
        assert pieces == [(1, (1, 0), (3, 3))]

    def test_box_spanning_all_shards(self):
        shardmap = ShardMap((9, 4), 3)
        pieces = shardmap.split_box((0, 1), (8, 2))
        assert [p[0] for p in pieces] == [0, 1, 2]
        for shard, low, high in pieces:
            size = shardmap.shard_shape(shard)[0]
            assert 0 <= low[0] <= high[0] < size
            assert low[1:] == (1,) and high[1:] == (2,)

    def test_split_validates_ranges(self):
        shardmap = ShardMap((10, 4), 2)
        with pytest.raises(RangeError):
            shardmap.split_box((5, 0), (4, 3))  # inverted
        with pytest.raises(RangeError):
            shardmap.split_box((0, 0), (10, 3))  # out of bounds

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_partial_sums_reassemble_exactly(self, rng, num_shards):
        array = rng.integers(-50, 50, (15, 6)).astype(np.int64)
        shardmap = ShardMap(array.shape, num_shards)
        slabs = [shardmap.subarray(array, s) for s in range(num_shards)]
        for _ in range(50):
            low, high = random_range(rng, array.shape)
            total = sum(
                brute_range_sum(slabs[shard], slow, shigh)
                for shard, slow, shigh in shardmap.split_box(low, high)
            )
            assert total == brute_range_sum(array, low, high)

    def test_pieces_are_disjoint_and_cover(self, rng):
        shardmap = ShardMap((12, 5), 4)
        for _ in range(30):
            low, high = random_range(rng, (12, 5))
            rows = []
            for shard, slow, shigh in shardmap.split_box(low, high):
                start, _ = shardmap.slab(shard)
                rows.extend(range(start + slow[0], start + shigh[0] + 1))
            assert rows == list(range(low[0], high[0] + 1))

"""Cross-feature interaction tests.

Each test combines at least two independent subsystems — the places
where integration seams actually break: textual queries over rebuilt
engines, hierarchies over paged backends, traces through scenario cubes,
batches under the engine, persistence of anisotropic structures, and the
hierarchical extension behind the OLAP layer.
"""

import numpy as np
import pytest

from repro import (
    CategoricalEncoder,
    CubeSchema,
    DataCubeEngine,
    DateEncoder,
    Dimension,
    IntegerEncoder,
    PagedRPSCube,
    load_engine,
    save_engine,
)
from repro.cube.hierarchy import CalendarHierarchy
from repro.cube.pivot import pivot
from repro.cube.query import execute_query
from repro.extensions.hierarchical import HierarchicalRPSCube
from repro.workloads import datagen, querygen, updategen
from repro.workloads.scenarios import run_scenario
from repro.workloads.trace import Trace


@pytest.fixture
def engine():
    schema = CubeSchema(
        [
            Dimension("region", CategoricalEncoder(["n", "s"])),
            Dimension("age", IntegerEncoder(20, 59)),
            Dimension("day", DateEncoder("2026-01-01", 60)),
        ],
        measure="sales",
    )
    engine = DataCubeEngine(schema, box_size=(1, 6, 8))
    rng = np.random.default_rng(7)
    import datetime

    for _ in range(300):
        engine.ingest(
            {
                "region": ["n", "s"][int(rng.integers(0, 2))],
                "age": int(rng.integers(20, 60)),
                "day": datetime.date(2026, 1, 1)
                + datetime.timedelta(days=int(rng.integers(0, 60))),
                "sales": float(rng.integers(1, 50)),
            }
        )
    return engine


class TestQueryLanguageAfterPersistence:
    def test_textual_query_on_reloaded_engine(self, engine, tmp_path):
        text = (
            "SUM(sales) WHERE age BETWEEN 30 AND 40 "
            "AND day BETWEEN '2026-01-10' AND '2026-02-10'"
        )
        expected = execute_query(engine, text)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        reloaded = load_engine(path)
        assert execute_query(reloaded, text) == pytest.approx(expected)

    def test_rollup_on_reloaded_engine(self, engine, tmp_path):
        original = CalendarHierarchy(engine, "day").rollup("month")
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        reloaded = load_engine(path)
        assert CalendarHierarchy(reloaded, "day").rollup("month") == (
            pytest.approx(original)
        )


class TestHierarchyOverAlternateBackends:
    def test_pivot_identical_across_backends(self, engine):
        months = CalendarHierarchy(engine, "day").members("month")
        regions = [("n", ("n", "n")), ("s", ("s", "s"))]
        base = pivot(engine, "region", regions, "day", months)

        schema = engine.schema
        records = []  # rebuild the same facts from the dense cube
        paged_engine = DataCubeEngine(schema, records, method=PagedRPSCube,
                                      box_size=(1, 6, 8))
        # transplant the cube contents through raw cells
        dense = engine.cells()
        counts = engine.count_backend.to_array()
        from repro.aggregates.operators import AggregateCube

        paged_engine._aggregates = AggregateCube(
            dense, counts.astype(np.int64), method=PagedRPSCube,
            box_size=(1, 6, 8),
        )
        other = pivot(paged_engine, "region", regions, "day", months)
        for key, value in base.cells.items():
            assert other.cells[key] == pytest.approx(value), key

    def test_hierarchical_extension_as_engine_backend(self):
        schema = CubeSchema(
            [Dimension("x", IntegerEncoder(0, 31))], measure="m"
        )
        engine = DataCubeEngine(
            schema, method=HierarchicalRPSCube, box_size=4, levels=2
        )
        engine.ingest({"x": 3, "m": 5.0})
        engine.ingest({"x": 17, "m": 7.0})
        assert engine.sum({"x": (0, 15)}) == pytest.approx(5.0)
        assert engine.sum() == pytest.approx(12.0)
        assert execute_query(
            engine, "SUM(m) WHERE x BETWEEN 10 AND 20"
        ) == pytest.approx(7.0)


class TestTraceThroughScenarios:
    def test_captured_scenario_replays_identically(self, tmp_path):
        """Trace round-trip through disk preserves scenario results."""
        from repro.core.rps import RelativePrefixSumCube
        from repro.workloads.scenarios import get_scenario

        scenario = get_scenario("ticker")
        shape = (32, 32)
        cube = scenario.make_cube(shape, 5)
        trace = Trace.capture(
            queries=scenario.make_queries(shape, 20, 5),
            updates=scenario.make_updates(shape, 20, 5),
            interleave=scenario.interleave,
        )
        path = tmp_path / "scenario.jsonl"
        trace.save(path)
        reloaded = Trace.load(path)
        first = trace.replay(
            RelativePrefixSumCube(cube), oracle=cube.copy()
        )
        second = reloaded.replay(
            RelativePrefixSumCube(cube), oracle=cube.copy()
        )
        assert first.mismatches == second.mismatches == 0
        assert first.query_cells_read == second.query_cells_read
        assert first.update_cells_written == second.update_cells_written


class TestEngineBatchSemantics:
    def test_many_ingests_equal_one_rebuild(self, engine):
        """Streaming ingest and from-scratch construction agree on every
        hierarchy level and textual query."""
        schema = engine.schema
        dense = engine.cells()
        counts = engine.count_backend.to_array().astype(np.int64)
        from repro.aggregates.operators import AggregateCube

        fresh = DataCubeEngine(schema, box_size=(1, 6, 8))
        fresh._aggregates = AggregateCube(
            dense, counts, box_size=(1, 6, 8)
        )
        for level in ("week", "month", "quarter"):
            assert CalendarHierarchy(fresh, "day").rollup(level) == (
                pytest.approx(
                    CalendarHierarchy(engine, "day").rollup(level)
                )
            )


class TestScenarioOverHierarchical:
    @pytest.mark.parametrize("name", ["dashboard", "audit"])
    def test_scenarios_verified_on_hierarchical(self, name):
        def factory(array):
            return HierarchicalRPSCube(array, levels=2)

        factory.name = HierarchicalRPSCube.name
        result = run_scenario(
            name, HierarchicalRPSCube, shape=(32, 32), operations=15,
        )
        assert result.mismatches == 0

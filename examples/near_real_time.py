"""Near-real-time analytics: why update cost matters (paper Section 1).

"As competition increases in the global marketplace, managers demand that
their analysis tools provide current or near-current information."

This example simulates a live dashboard: a stream of sales updates
interleaved with range queries, run against all four backends. It prints
the cell-access economics that make the prefix sum method unusable for
dynamic cubes and the relative prefix sum method practical.

Run:  python examples/near_real_time.py
"""

from repro import (
    FenwickCube,
    NaiveCube,
    PrefixSumCube,
    RelativePrefixSumCube,
)
from repro.workloads import datagen, querygen, updategen
from repro.workloads.runner import WorkloadRunner

N = 256          # 256 days x 256 customer buckets
OPERATIONS = 300  # queries and updates, interleaved 1:1


def main():
    cube = datagen.clustered_cube((N, N), clusters=5, seed=11)
    methods = [
        NaiveCube(cube),
        PrefixSumCube(cube),
        RelativePrefixSumCube(cube),  # k = sqrt(256) = 16
        FenwickCube(cube),
    ]

    print(f"dashboard simulation: {N}x{N} cube, "
          f"{OPERATIONS} queries + {OPERATIONS} updates, interleaved\n")
    header = (
        f"{'method':>12} {'cells/query':>12} {'cells/update':>13} "
        f"{'product':>12} {'query ms':>9} {'update ms':>10}"
    )
    print(header)
    print("-" * len(header))

    for method in methods:
        runner = WorkloadRunner(method, oracle=cube.copy())
        result = runner.run(
            queries=querygen.hotspot_ranges((N, N), OPERATIONS, seed=1),
            updates=updategen.append_updates((N, N), OPERATIONS, seed=2),
        )
        assert result.mismatches == 0, "backend returned a wrong answer!"
        print(
            f"{method.name:>12} {result.cells_per_query:>12.1f} "
            f"{result.cells_per_update:>13.1f} "
            f"{result.cost_product:>12.0f} "
            f"{1e3 * result.query_seconds:>9.1f} "
            f"{1e3 * result.update_seconds:>10.1f}"
        )

    print(
        "\nreading the table: the naive method pays per query, the prefix\n"
        "sum method pays per update, and the relative prefix sum method\n"
        "keeps both small — the paper's O(n^{d/2}) product in action."
    )
    print("near-real-time example OK")


if __name__ == "__main__":
    main()

"""Resize a live cluster: split a hot shard, merge it back, keep serving.

A two-shard cluster serves a sales cube while a write stream keeps
landing. Mid-stream, the hot leading slab is split in two — seeded from
a checkpoint copy, caught up by WAL-tail replay, dual-written, then
flipped in one epoch-stamped atomic swap — and every range sum keeps
matching a brute-force numpy oracle exactly, before, during, and after
the migration. The two slabs are then merged back, proving the
operation is reversible. Finally a whole shard (every replica) is
killed and the degraded-read path answers with explicit bounded-error
estimates whose intervals contain the exact truth.

Run:  python examples/elastic_reshard.py
"""

import tempfile

import numpy as np

from repro import CubeCluster, RelativePrefixSumCube
from repro.faults import FaultPlan

SHAPE = (96, 32)   # 96 days x 32 regions
GROUPS = 12        # update groups streamed between checks


def stream_writes(cluster, oracle, rng, groups=GROUPS):
    """Land ``groups`` acked update groups, mirrored into the oracle."""
    for _ in range(groups):
        group = []
        for _ in range(3):
            cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
            group.append((cell, int(rng.integers(-9, 10)) or 2))
        cluster.submit_batch(group)
        for cell, delta in group:
            oracle[cell] += delta


def check_queries(cluster, oracle, rng, count=12):
    """Random exact range sums against the oracle."""
    for _ in range(count):
        low = tuple(int(rng.integers(0, n // 2)) for n in SHAPE)
        high = tuple(int(rng.integers(l, n)) for l, n in zip(low, SHAPE))
        got = cluster.range_sum(low, high)
        want = oracle[
            tuple(slice(l, h + 1) for l, h in zip(low, high))
        ].sum()
        assert got == want, f"range_sum{low, high}: {got} != {want}"


def main():
    rng = np.random.default_rng(11)
    sales = rng.integers(0, 100, SHAPE).astype(np.int64)
    oracle = sales.astype(np.float64)

    with tempfile.TemporaryDirectory() as state_dir:
        with CubeCluster(
            RelativePrefixSumCube,
            sales,
            data_dir=state_dir,
            num_shards=2,
            replication_factor=2,
            fault_plan=FaultPlan(seed=11),
        ) as cluster:
            print(
                f"cluster up: "
                f"{cluster.stats()['shardmap']['num_shards']} shards, "
                f"epoch {cluster.epoch}"
            )
            stream_writes(cluster, oracle, rng)
            check_queries(cluster, oracle, rng)

            # -- split shard 0 live; writes land at every phase -------
            def at_phase(phase):
                stream_writes(cluster, oracle, rng, groups=2)

            summary = cluster.split_shard(0, phase_hook=at_phase)
            print(
                f"split: epoch {summary['old_epoch']} -> "
                f"{summary['new_epoch']}, now "
                f"{summary['num_shards']} shards, phases "
                f"{'->'.join(summary['phases'])}"
            )
            assert summary["ok"] and summary["num_shards"] == 3
            assert summary["verify"]["mismatches"] == []
            check_queries(cluster, oracle, rng)

            # -- merge the two halves back, still serving -------------
            summary = cluster.merge_shards(0, phase_hook=at_phase)
            print(
                f"merge: epoch {summary['old_epoch']} -> "
                f"{summary['new_epoch']}, back to "
                f"{summary['num_shards']} shards"
            )
            assert summary["ok"] and summary["num_shards"] == 2
            stream_writes(cluster, oracle, rng)
            check_queries(cluster, oracle, rng)

            # -- kill a whole shard: estimates, not wrong answers -----
            for node in cluster.nodes():
                if node.shard_id == 1:
                    cluster.kill_node(node.node_id)
            lows = [(0, 0), (10, 4)]
            highs = [tuple(n - 1 for n in SHAPE), (80, 20)]
            values, estimates = cluster.range_sum_many(
                lows, highs, allow_estimate=True
            )
            marked = 0
            for low, high, value, estimate in zip(
                lows, highs, values, estimates
            ):
                want = oracle[
                    tuple(slice(l, h + 1) for l, h in zip(low, high))
                ].sum()
                if estimate is None:
                    assert value == want
                else:
                    marked += 1
                    assert estimate.estimate is True
                    assert estimate.low <= want <= estimate.high, (
                        estimate, want,
                    )
                    print(
                        f"degraded read {low}..{high}: "
                        f"[{estimate.low:.0f}, {estimate.high:.0f}] "
                        f"contains exact {want:.0f}"
                    )
            assert marked >= 1, "expected at least one estimated slot"

    print("OK: elastic reshard served exactly; degraded reads bounded")


if __name__ == "__main__":
    main()

"""Section 4.3 in practice: choosing the overlay box size.

Sweeps the box size k on a fixed cube, measuring the worst-case update
cost, and shows the U-shaped curve whose minimum the paper places at
k = sqrt(n): larger boxes shift cost into RP, smaller boxes shift it into
the overlay.

Run:  python examples/box_size_tuning.py
"""

import math

from repro import RelativePrefixSumCube
from repro.metrics import complexity
from repro.workloads import datagen, updategen

N = 256


def main():
    cube = datagen.uniform_cube((N, N), seed=9)
    worst = updategen.worst_case_cell((N, N), "rps")
    k_star = complexity.optimal_box_size(N)
    print(f"update-cost sweep on a {N}x{N} cube "
          f"(paper's optimum: k = sqrt({N}) = {k_star})\n")
    print(f"{'k':>4} {'RP cells':>9} {'overlay cells':>14} "
          f"{'total':>7} {'paper formula':>14}")

    best = (None, math.inf)
    for k in (2, 4, 8, 12, 16, 24, 32, 64, 128):
        rps = RelativePrefixSumCube(cube, box_size=k)
        breakdown = rps.update_cost_breakdown(worst)
        formula = complexity.rps_update_cost(N, 2, k)
        marker = "  <- k = sqrt(n)" if k == k_star else ""
        print(
            f"{k:>4} {breakdown['rp']:>9} {breakdown['overlay']:>14} "
            f"{breakdown['total']:>7} {formula:>14.0f}{marker}"
        )
        if breakdown["total"] < best[1]:
            best = (k, breakdown["total"])

    print(
        f"\nmeasured minimum at k = {best[0]} ({best[1]} cells); "
        f"the paper's sqrt(n) rule predicts k = {k_star}."
    )
    print(
        "small k: RP cascades stop quickly but many overlay boxes sit\n"
        "'after' the update; large k: few boxes but a huge in-box cascade."
    )
    print("box-size tuning example OK")


if __name__ == "__main__":
    main()

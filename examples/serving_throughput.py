"""Serve batched queries to concurrent readers during live writes.

Demonstrates the two halves of the high-throughput path:

1. the vectorized ``range_sum_many`` kernel — thousands of range sums
   per call with no per-query Python;
2. :class:`repro.CubeService` — readers keep answering from a
   consistent snapshot while a writer thread folds queued deltas in.

Run: ``PYTHONPATH=src python examples/serving_throughput.py``
"""

import threading
import time

import numpy as np

from repro import CubeService, RelativePrefixSumCube

SHAPE = (365, 256)  # a year of days x 256 stores

rng = np.random.default_rng(99)
sales = rng.integers(0, 500, size=SHAPE)

# -- 1. one call, many queries ------------------------------------------------

cube = RelativePrefixSumCube(sales)
q_count = 5_000
lows = np.stack(
    [rng.integers(0, n // 2, size=q_count) for n in SHAPE], axis=1
)
highs = lows + np.stack(
    [rng.integers(0, n // 2, size=q_count) for n in SHAPE], axis=1
)

start = time.perf_counter()
batched = cube.range_sum_many(lows, highs)
batched_s = time.perf_counter() - start

start = time.perf_counter()
looped = np.array(
    [cube.range_sum(tuple(lo), tuple(hi)) for lo, hi in zip(lows, highs)]
)
looped_s = time.perf_counter() - start

assert np.array_equal(batched, looped)
print(
    f"{q_count} range sums: looped {looped_s*1e3:.1f} ms, "
    f"vectorized {batched_s*1e3:.1f} ms "
    f"({looped_s / batched_s:.0f}x faster)"
)

# -- 2. concurrent reads during writes ---------------------------------------

dashboards_served = 0
with CubeService(RelativePrefixSumCube, sales) as service:
    stop = threading.Event()

    def dashboard():
        global dashboards_served
        while not stop.is_set():
            values, version = service.query_many(lows[:64], highs[:64])
            assert len(values) == 64
            dashboards_served += 1

    readers = [threading.Thread(target=dashboard) for _ in range(3)]
    for reader in readers:
        reader.start()

    # the point-of-sale stream: 40 batches of same-day sales deltas
    for day in range(40):
        batch = [
            ((day % SHAPE[0], int(store)), int(amount))
            for store, amount in zip(
                rng.integers(0, SHAPE[1], size=16),
                rng.integers(1, 20, size=16),
            )
        ]
        service.submit_batch(batch)
    applied = service.flush()
    stop.set()
    for reader in readers:
        reader.join()

    stats = service.stats()
    assert applied == 40
    assert service.version == 40
    assert stats["groups_pending"] == 0
    assert dashboards_served > 0
    print(
        f"served {stats['queries_served']} queries across "
        f"{stats['read_calls']} reads while applying "
        f"{stats['updates_applied']} deltas in "
        f"{stats['batches_applied']} writer cycles "
        f"(read p95 {stats['read_latency']['p95_s']*1e3:.2f} ms)"
    )

print("OK")

"""Kill the primary, keep serving: failover with zero acked-group loss.

A three-node shard (one WAL-backed primary, two replicas) serves a live
sales cube. Mid-stream, a seeded fault plan kills the primary. Because a
write is acknowledged only after the primary's fsync, every acked group
survives: the health monitor fences the dead node, promotes a replica by
recovering the write-ahead log, and range sums keep matching a
brute-force numpy oracle exactly — before, during, and after the crash.

Run:  python examples/cluster_failover.py
"""

import tempfile

import numpy as np

from repro import CubeCluster, RelativePrefixSumCube
from repro.faults import FaultPlan

SHAPE = (365, 50)  # a year of sales x 50 age buckets
GROUPS = 30        # update groups streamed at the cluster


def check_queries(cluster, oracle, rng, count=15):
    for _ in range(count):
        low = tuple(int(rng.integers(0, n // 2)) for n in SHAPE)
        high = tuple(
            int(rng.integers(l, n)) for l, n in zip(low, SHAPE)
        )
        got = cluster.range_sum(low, high)
        want = oracle[tuple(slice(l, h + 1) for l, h in zip(low, high))].sum()
        assert got == want, f"range_sum{low, high}: {got} != {want}"


def main():
    rng = np.random.default_rng(7)
    sales = rng.integers(0, 100, SHAPE).astype(np.int64)
    oracle = sales.astype(np.float64)
    plan = FaultPlan(seed=7)

    with tempfile.TemporaryDirectory() as state_dir:
        with CubeCluster(
            RelativePrefixSumCube,
            sales,
            data_dir=state_dir,
            num_shards=1,
            replication_factor=3,
            fault_plan=plan,
        ) as cluster:
            print(f"cluster up: {len(cluster.nodes())} nodes, "
                  f"primary s0.n0 (WAL-backed), replicas s0.n1 s0.n2")

            for _ in range(GROUPS // 2):
                cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
                delta = int(rng.integers(1, 9))
                cluster.submit_batch([(cell, delta)])  # acked post-fsync
                oracle[cell] += delta
            cluster.flush()
            check_queries(cluster, oracle, rng)
            print(f"{GROUPS // 2} groups acked, queries exact")

            plan.kill("s0.n0")
            print("killed the primary (s0.n0)")
            for _ in range(3):
                cluster.monitor.tick()  # probe, trip breaker, fail over

            stats = cluster.stats()
            assert stats["metrics"]["failovers"] == {0: 1}, stats["metrics"]
            promoted = [
                node_id for node_id, info in stats["nodes"].items()
                if info["role"] == "primary" and info["state"] != "dead"
            ]
            print(f"health monitor promoted {promoted[0]} "
                  f"(recovered from the dead primary's WAL)")

            # zero acked-group loss: the promoted primary has everything
            check_queries(cluster, oracle, rng)
            assert cluster.total() == oracle.sum()
            print("all acked groups survived; queries still exact")

            for _ in range(GROUPS // 2):
                cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
                delta = int(rng.integers(1, 9))
                cluster.submit_batch([(cell, delta)])
                oracle[cell] += delta
            cluster.flush()
            check_queries(cluster, oracle, rng)
            scrub = cluster.scrubber.scrub_once()
            assert scrub["divergences"] == 0, scrub
            print(f"{GROUPS // 2} more groups on the new primary, "
                  f"scrub clean ({scrub['checks']} digest checks)")

    print("OK")


if __name__ == "__main__":
    main()

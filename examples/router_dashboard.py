"""A dashboard served through the adaptive query router.

A BI dashboard asks the same page of box-sum queries over and over —
refresh after refresh — while a write stream trickles in behind it.
This example puts a :class:`~repro.routing.QueryRouter` in front of a
:class:`~repro.serve.CubeService` and shows the tier economics:

* the first render of a page goes to the RPS backend (exact, ~O(2^d)
  probes per box);
* every refresh until the next write is a cache hit — one whole-batch
  memo lookup keyed by the page bytes and the snapshot version;
* a write invalidates *precisely* by bumping the snapshot version
  (no TTLs, no purge scans — old entries simply stop matching);
* grid-aligned drill-downs the cache has never seen are answered from
  a pre-aggregated rollup, still exactly.

Every answer is checked against a brute-force oracle, then the per-tier
hit rates are printed — the same numbers `repro-bench router` and the
``T1`` gate (``bench_t1_router.py``) report.

Run:  python examples/router_dashboard.py
"""

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.routing import QueryRouter
from repro.serve import CubeService

SHAPE = (256, 256)
PAGE_BOXES = 24
REFRESHES_PER_EDIT = 5
EDITS = 8
GRANULARITY = 32


def make_page(rng):
    """One dashboard page: a handful of modest boxes."""
    lows, highs = [], []
    for _ in range(PAGE_BOXES):
        lo = [int(rng.integers(0, n - 40)) for n in SHAPE]
        hi = [l + int(rng.integers(8, 40)) for l in lo]
        lows.append(lo)
        highs.append(hi)
    return np.array(lows), np.array(highs)


def aligned_page(rng):
    """Grid-aligned drill-down boxes a rollup can answer directly."""
    blocks = [n // GRANULARITY for n in SHAPE]
    lows, highs = [], []
    for _ in range(PAGE_BOXES):
        lo, hi = [], []
        for axis, nb in enumerate(blocks):
            a = int(rng.integers(0, nb))
            b = int(rng.integers(a, nb))
            lo.append(a * GRANULARITY)
            hi.append((b + 1) * GRANULARITY - 1)
        lows.append(lo)
        highs.append(hi)
    return np.array(lows), np.array(highs)


def oracle_check(cube, lows, highs, values):
    for lo, hi, value in zip(lows, highs, values):
        sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi))
        assert value == cube[sl].sum(), "router returned a wrong sum!"


def main():
    rng = np.random.default_rng(7)
    cube = rng.integers(0, 100, SHAPE).astype(np.float64)
    mirror = cube.copy()  # the brute-force oracle state

    with CubeService(RelativePrefixSumCube, cube) as service:
        with QueryRouter(service, auto_build=False) as router:
            router.build_rollup(GRANULARITY)
            page = make_page(rng)
            drill = aligned_page(rng)

            for edit in range(EDITS):
                for refresh in range(REFRESHES_PER_EDIT):
                    batch = router.route_many(*page)
                    oracle_check(mirror, *page, batch.values)
                    if refresh > 0:
                        assert set(batch.tiers) == {"cache"}, batch.tiers
                # a drill-down page never rendered before: the rollup
                # answers its aligned boxes without touching the backend
                batch = router.route_many(*drill)
                oracle_check(mirror, *drill, batch.values)
                assert "rollup" in set(batch.tiers), batch.tiers

                # one edit lands: the version bump orphans every cached
                # entry, and the next render recomputes exactly
                cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
                delta = float(rng.integers(1, 50))
                router.submit_delta(cell, delta)
                router.flush()
                mirror[cell] += delta
                router.build_rollup(GRANULARITY)  # re-materialize fresh
                drill = aligned_page(rng)

            stats = router.stats()["router"]
            served = (
                stats["cache_hits"] + stats["batch_hits"]
                + stats["rollup_hits"] + stats["backend_queries"]
            )
            print(f"dashboard over {SHAPE} cube, {EDITS} edits, "
                  f"{REFRESHES_PER_EDIT} refreshes per edit:")
            print(f"  box queries answered : {served}")
            print(f"  cache hit rate       : {stats['cache_hit_rate']:.1%}")
            print(f"  rollup hit rate      : {stats['rollup_hit_rate']:.1%}")
            print(f"  backend (RPS) rate   : {stats['backend_rate']:.1%}")
            stale = (stats["cache_stale_rejects"]
                     + stats["batch_stale_rejects"])
            print(f"  stale rejects        : {stale} "
                  f"(each one is a precisely-invalidated write)")
            assert stats["cache_hit_rate"] > 0.5, "cache never warmed?"
            assert stats["rollup_hits"] > 0, "rollup never served?"
    print("router dashboard example OK")


if __name__ == "__main__":
    main()

"""Beyond SUM: constant-time range aggregates over any invertible operator.

Section 2 of the paper notes the techniques apply to "any binary operator
+ for which there exists an inverse binary operator - such that
a + b - b = a". This example exercises that claim on two genuinely
different groups:

* XOR — constant-time *region checksums* over a mutable grid (useful for
  change detection / integrity checks over tile ranges), and
* PRODUCT — constant-time *compound growth factors* over ranges of
  daily return multipliers.

It also shows persistence: the cube is checkpointed to disk and restored.

Run:  python examples/region_checksums.py
"""

import tempfile
from functools import reduce
from pathlib import Path

import numpy as np

from repro import RelativePrefixSumCube, load_method, save_method
from repro.aggregates.generalized import (
    GROUP_PRODUCT,
    GROUP_XOR,
    GroupRelativePrefixCube,
)


def xor_checksums():
    print("== XOR: region checksums over a 64x64 tile grid ==")
    rng = np.random.default_rng(13)
    tiles = rng.integers(0, 1 << 32, size=(64, 64))
    cube = GroupRelativePrefixCube(tiles, GROUP_XOR, box_size=8)

    region = ((10, 10), (40, 50))
    checksum = cube.range_query(*region)
    brute = reduce(lambda a, b: a ^ b, tiles[10:41, 10:51].ravel(), 0)
    assert int(checksum) == int(brute)
    print(f"checksum of rows 10-40 x cols 10-50: {int(checksum):#010x}")

    # A tile changes; XOR-in old ^ new flips the checksum accordingly.
    old, new = int(tiles[20, 20]), 0xDEADBEEF
    cube.combine_into((20, 20), np.int64(old ^ new))
    changed = cube.range_query(*region)
    print(f"after changing one tile:             {int(changed):#010x}")
    assert int(changed) == int(brute) ^ old ^ new
    print("XOR checksums OK\n")


def growth_factors():
    print("== PRODUCT: compound growth over daily return multipliers ==")
    rng = np.random.default_rng(14)
    # 250 trading days x 10 assets of daily multipliers near 1.0
    returns = 1.0 + rng.normal(0, 0.01, size=(250, 10))
    cube = GroupRelativePrefixCube(returns, GROUP_PRODUCT, box_size=16)

    q_growth = cube.range_query((0, 3), (62, 3))  # asset 3, first quarter
    brute = float(np.prod(returns[:63, 3]))
    assert abs(float(q_growth) - brute) < 1e-9
    print(f"asset 3, Q1 compound factor: {float(q_growth):.4f}")

    # Restate one day's return (a correction feed) and requery.
    cube.combine_into((30, 3), np.float64(1.05 / returns[30, 3]))
    restated = cube.range_query((0, 3), (62, 3))
    print(f"after restating day 30 to +5%: {float(restated):.4f}")
    print("growth factors OK\n")


def checkpoint_restore():
    print("== persistence: checkpoint a SUM cube and restore it ==")
    rng = np.random.default_rng(15)
    sales = rng.integers(0, 100, size=(128, 64))
    cube = RelativePrefixSumCube(sales, box_size=(11, 8))
    cube.apply_delta((5, 5), 42)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cube.npz"
        save_method(cube, path)
        restored = load_method(path)
        assert restored.box_sizes == (11, 8)
        assert restored.range_sum((0, 0), (127, 63)) == cube.range_sum(
            (0, 0), (127, 63)
        )
        print(f"saved {path.name} ({path.stat().st_size} bytes), restored, "
              f"answers identical")
    print("persistence OK")


def main():
    xor_checksums()
    growth_factors()
    checkpoint_restore()
    print("\nregion checksums example OK")


if __name__ == "__main__":
    main()

"""The socket serving tier, end to end, from the client's chair.

A remote dashboard talks to a :class:`~repro.net.CubeServer` over a
length-prefixed JSON protocol. This example stands a server up
in-process (backed by a :class:`~repro.serve.CubeService`) and walks
the whole client surface:

* batched range-sum pages, each answer stamped with the snapshot
  version it was computed from and checked against a brute-force
  oracle *at that version*;
* remote writes (``submit_batch`` + ``flush``) with the version bump
  observable from the read side;
* streaming reads for large pages — chunked, each chunk individually
  stamped;
* several concurrent client connections sharing the server;
* the admission machinery a remote caller actually meets: a wrong
  token raises :class:`~repro.errors.AuthError`, an exhausted tenant
  quota raises :class:`~repro.errors.QuotaExceededError` with a
  ``retry_after_s`` hint that honoring makes the retry succeed, and a
  spent :class:`~repro.deadline.Deadline` raises
  :class:`~repro.errors.DeadlineExceededError` — with the connection
  still serving afterwards in every case.

Run:  python examples/net_client.py
"""

import asyncio

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.deadline import Deadline
from repro.errors import (
    AuthError,
    DeadlineExceededError,
    QuotaExceededError,
)
from repro.net import Authenticator, CubeClient, CubeServer, Tenant
from repro.serve import CubeService

SHAPE = (128, 96)
PAGE_BOXES = 16
STREAM_BOXES = 700
STREAM_CHUNK = 128
READERS = 4


def make_page(rng, boxes):
    lows, highs = [], []
    for _ in range(boxes):
        lo, hi = [], []
        for n in SHAPE:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            lo.append(a)
            hi.append(b)
        lows.append(lo)
        highs.append(hi)
    return lows, highs


def oracle_check(state, lows, highs, values):
    for lo, hi, value in zip(lows, highs, values):
        sl = tuple(slice(a, b + 1) for a, b in zip(lo, hi))
        assert value == state[sl].sum(), "server returned a wrong sum!"


async def dashboard(host, port, states, write_lock, rng):
    """One reader connection: pages, writes, and a streamed page."""
    async with await CubeClient.connect(
        host, port, token="s3cret"
    ) as client:
        hello = await client.ping()
        assert tuple(hello["shape"]) == SHAPE

        # a dashboard page — the stamp names the exact oracle state
        page = make_page(rng, PAGE_BOXES)
        values, stamp = await client.range_sum_many(*page)
        oracle_check(states[int(stamp)], *page, values)

        # a write lands remotely. Several connections write
        # concurrently, so the submit and the oracle append happen
        # under one lock: submission order *is* version order, and
        # states[v] is in place before any reader can see stamp v.
        cell = tuple(int(rng.integers(0, n)) for n in SHAPE)
        delta = float(rng.integers(1, 50))
        async with write_lock:
            await client.submit_batch([(cell, delta)])
            state = states[-1].copy()
            state[cell] += delta
            states.append(state)
        await client.flush(timeout=30.0)

        values, stamp = await client.range_sum_many(*page)
        oracle_check(states[int(stamp)], *page, values)

        # a page too big to want in one frame: stream it, chunk by
        # chunk, every chunk stamped with its own snapshot
        big = make_page(rng, STREAM_BOXES)
        got = np.empty(STREAM_BOXES)
        chunks = 0
        async for offset, chunk_values, stamp in client.stream_range_sums(
            *big, chunk=STREAM_CHUNK
        ):
            got[offset:offset + len(chunk_values)] = chunk_values
            lo = [big[0][i] for i in range(offset, offset + len(chunk_values))]
            hi = [big[1][i] for i in range(offset, offset + len(chunk_values))]
            oracle_check(states[int(stamp)], lo, hi, chunk_values)
            chunks += 1
        assert chunks == -(-STREAM_BOXES // STREAM_CHUNK)
        return chunks


async def misbehave(host, port):
    """Every refusal is typed, hinted, and survivable."""
    # wrong token: refused, connection still usable for a retry
    async with await CubeClient.connect(
        host, port, token="wrong-token"
    ) as client:
        try:
            await client.ping()
            raise AssertionError("bad token was accepted?")
        except AuthError:
            pass

    # a starved tenant: the token bucket refuses with a retry hint,
    # and honoring the hint makes the retry succeed
    async with await CubeClient.connect(
        host, port, token="guest-token"
    ) as client:
        refusals = 0
        for _ in range(8):
            try:
                await client.ping()
            except QuotaExceededError as error:
                refusals += 1
                assert error.retry_after_s > 0.0
                await asyncio.sleep(error.retry_after_s)
                await client.ping()  # hint honored: admitted again
                break
        assert refusals > 0, "guest quota never exhausted?"

        # a spent deadline fails locally — cheaply, without ever
        # desyncing the connection — and the next call still works
        try:
            await client.range_sum(
                (0, 0), (9, 9), deadline=Deadline.after(0.0)
            )
            raise AssertionError("spent deadline was accepted?")
        except DeadlineExceededError:
            pass
        await asyncio.sleep(1.0)  # let the guest bucket refill
        assert (await client.ping())["tenant"] == "guest"
        return refusals


async def drive(host, port, states, seed):
    write_lock = asyncio.Lock()
    readers = [
        dashboard(
            host, port, states, write_lock,
            np.random.default_rng([seed, i]),
        )
        for i in range(READERS)
    ]
    chunks = await asyncio.gather(*readers)
    refusals = await misbehave(host, port)
    return sum(chunks), refusals


def main():
    rng = np.random.default_rng(11)
    cube = rng.integers(0, 100, SHAPE).astype(np.float64)
    states = [cube.copy()]  # brute-force oracle, one state per version

    service = CubeService(RelativePrefixSumCube, cube)
    auth = Authenticator([
        Tenant("dash", "s3cret", rate_per_s=5000.0, burst=2000.0),
        Tenant("guest", "guest-token", rate_per_s=2.0, burst=3.0),
    ])
    try:
        with CubeServer(service, port=0, authenticator=auth) as server:
            host, port = server.address
            print(f"serving a {SHAPE} cube on {host}:{port}")
            chunks, refusals = asyncio.run(
                drive(host, port, states, seed=11)
            )
            net = server.metrics.snapshot()
            print(f"  readers                : {READERS} concurrent")
            print(f"  requests served        : {net['requests']}")
            print(f"  stream chunks          : {chunks}")
            print(f"  quota refusals (typed) : {refusals}")
            print(f"  auth refusals          : {net['auth_rejects']}")
            print(f"  versions published     : {len(states) - 1} writes, "
                  f"every answer exact at its own stamp")
            assert net["errors_by_code"].get("internal", 0) == 0
    finally:
        service.close()
    print("net client example OK")


if __name__ == "__main__":
    main()

"""Quickstart: constant-time range sums over a dynamic data cube.

Builds a relative prefix sum cube over synthetic daily sales data, runs a
few range queries, applies point updates, and shows the access-cost
counters that reproduce the paper's analysis.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RelativePrefixSumCube


def main():
    # A 365-day x 50-age-bucket sales cube.
    rng = np.random.default_rng(0)
    sales = rng.integers(0, 100, size=(365, 50))
    cube = RelativePrefixSumCube(sales)  # box size defaults to ~sqrt(n)
    print(f"built {cube} over {sales.size} cells")

    # Range query: days 30..119, age buckets 17..32 (inclusive).
    total = cube.range_sum((30, 17), (119, 32))
    assert total == sales[30:120, 17:33].sum()
    print(f"Q1 sales, ages 37-52:     {total}")

    # Queries cost a constant number of cell reads, whatever the range.
    before = cube.counter.snapshot()
    cube.range_sum((1, 1), (363, 48))
    big = before.delta(cube.counter).cells_read
    before = cube.counter.snapshot()
    cube.range_sum((100, 20), (101, 21))
    small = before.delta(cube.counter).cells_read
    print(f"cells read, near-full query: {big}; tiny query: {small}")

    # Updates touch O(n^{d/2}) cells, not O(n^d).
    before = cube.counter.snapshot()
    cube.apply_delta((120, 40), +250)  # a correction lands for day 120
    cost = before.delta(cube.counter)
    print(f"one update touched {cost.cells_written} cells "
          f"(cube has {sales.size})")
    assert cube.cell_value((120, 40)) == sales[120, 40] + 250

    # The structure stays exact after any update sequence.
    for _ in range(100):
        day, age = rng.integers(0, 365), rng.integers(0, 50)
        cube.apply_delta((day, age), int(rng.integers(-5, 6)))
    print(f"total after 100 random updates: {cube.total()}")
    print("quickstart OK")


if __name__ == "__main__":
    main()

"""Section 4.4 in practice: RP on disk, overlays in main memory.

"Given suitable box sizes, it may be feasible to keep all of the overlay
boxes in main memory, while RP resides on disk ... it would be preferred
to set the overlay box size such that the corresponding region of RP fits
exactly into a constant number of disk pages."

This example builds the disk-resident configuration on the simulated
block device, compares the paper-recommended box-aligned page layout with
a naive row-major layout, and prints page-I/O counts per operation.

Run:  python examples/disk_resident.py
"""

import numpy as np

from repro import BoxAlignedLayout, PagedRPSCube, RowMajorLayout
from repro.workloads import datagen, querygen

N = 256
K = 16  # sqrt(n): one overlay box = one 256-cell disk page


def measure(paged, label, rng):
    """Cold-cache page I/O per query and per update."""
    query_pages, update_pages = [], []
    for low, high in querygen.random_ranges((N, N), 40, seed=3):
        paged.rp_pages.pool.drop()
        paged.reset_io_stats()
        paged.range_sum(low, high)
        query_pages.append(paged.io_stats()["pages_read"])
    for _ in range(40):
        cell = tuple(int(x) for x in rng.integers(0, N, size=2))
        paged.rp_pages.pool.drop()
        paged.reset_io_stats()
        paged.apply_delta(cell, 1)
        paged.flush()
        stats = paged.io_stats()
        update_pages.append(stats["pages_read"] + stats["pages_written"])
    print(
        f"{label:>12}: query pages mean={np.mean(query_pages):.2f} "
        f"max={max(query_pages)};  update pages "
        f"mean={np.mean(update_pages):.2f} max={max(update_pages)}"
    )


def main():
    cube = datagen.uniform_cube((N, N), seed=4)
    rng = np.random.default_rng(5)

    aligned = PagedRPSCube(cube, box_size=K, buffer_capacity=8)
    row_major = PagedRPSCube(
        cube, box_size=K, layout=RowMajorLayout((N, N), K * K),
        buffer_capacity=8,
    )

    overlay_cells = aligned.overlay_memory_cells()
    print(
        f"{N}x{N} cube, box size {K}: RP on disk "
        f"({aligned.rp_pages.layout.page_count} pages of {K * K} cells), "
        f"overlay in RAM ({overlay_cells} cells = "
        f"{100.0 * overlay_cells / cube.size:.1f}% of the cube)\n"
    )
    measure(aligned, "box-aligned", rng)
    measure(row_major, "row-major", rng)

    print(
        "\nwith box-aligned pages a query never reads more than 2^d = 4\n"
        "pages and an update rewrites exactly one — the paper's 'constant\n"
        "number of disk reads or writes'. The row-major layout spreads one\n"
        "box over many pages and pays for it on every update."
    )

    # Warm-cache behaviour: the buffer pool absorbs repeated dashboards.
    aligned.rp_pages.pool.drop()
    aligned.reset_io_stats()
    for _ in range(5):
        aligned.range_sum((64, 64), (191, 191))
    stats = aligned.io_stats()
    print(
        f"\n5 repeats of one dashboard query: {stats['pages_read']} cold "
        f"page reads, buffer hit rate {stats['buffer_hit_rate']:.0%}"
    )
    print("disk-resident example OK")


if __name__ == "__main__":
    main()

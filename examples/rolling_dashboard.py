"""A 90-day sliding-window KPI dashboard.

The paper assumes static dimension sizes; production dashboards keep a
rolling window ("the past three months") and must expire old days while
absorbing new ones every midnight. This example drives
:class:`~repro.cube.rolling_window.RollingWindowEngine` through half a
year of simulated days, printing trailing-window KPIs as the window
slides — all queries stay O(1) per call on the circular time axis.

Run:  python examples/rolling_dashboard.py
"""

import numpy as np

from repro.cube.rolling_window import RollingWindowEngine

WINDOW = 90       # keep the last 90 days
BUCKETS = 50      # customer age buckets
SIMULATED_DAYS = 180


def main():
    engine = RollingWindowEngine((BUCKETS,), window=WINDOW, box_size=(10, 7))
    rng = np.random.default_rng(33)
    print(f"sliding dashboard: {WINDOW}-day window over {BUCKETS} buckets\n")

    checkpoints = {29, 89, 119, 179}
    daily_totals = {}
    for day in range(SIMULATED_DAYS):
        if day > 0:
            engine.advance()
        # a day's sales: volume drifts upward over the half year
        sales_today = 0.0
        for _ in range(int(rng.integers(20, 40)) + day // 4):
            bucket = int(np.clip(rng.normal(BUCKETS / 2, 12), 0, BUCKETS - 1))
            amount = float(rng.lognormal(3.0, 0.4))
            engine.record(day, (bucket,), amount)
            sales_today += amount
        daily_totals[day] = sales_today

        if day in checkpoints:
            first = engine.oldest_slot
            expected = sum(
                daily_totals[d] for d in range(first, day + 1)
            )
            window_total = engine.window_sum(first, day)
            assert abs(window_total - expected) < 1e-6, "window drifted!"
            week = engine.trailing_sum(7)
            month = engine.trailing_sum(30)
            print(
                f"day {day:>3}: window [{first:>3}..{day:>3}]  "
                f"7d {week:>10.2f}  30d {month:>10.2f}  "
                f"{WINDOW}d {window_total:>11.2f}"
            )

    # After 180 days the window holds exactly the last 90; day 0-89 data
    # has been expired by slice reuse, not by any rebuild-the-world step.
    first = engine.oldest_slot
    assert first == SIMULATED_DAYS - WINDOW
    print(
        f"\nafter {SIMULATED_DAYS} days the window holds days "
        f"[{first}..{SIMULATED_DAYS - 1}]; everything older was expired "
        f"in-place on the circular axis"
    )
    print("rolling dashboard example OK")


if __name__ == "__main__":
    main()

"""Retail firehose: exactly-once streaming ingestion into a live cube.

The paper's cubes are dynamic — "new information arrives on a daily
basis". This example plays a day of point-of-sale facts (with a few
malformed rows a real feed always contains) into a WAL-backed
:class:`~repro.serve.CubeService` through the streaming pipeline, kills
the ingest coordinator mid-stream, power-loses the service, and resumes
— then proves the classic exactly-once claims:

* the resumed cube is bit-for-bit equal to a never-crashed run,
* every poison row is in the dead-letter file exactly once,
* the fence skipped the group that committed before the crash.

Run:  python examples/retail_firehose.py
"""

import pathlib
import tempfile

import numpy as np

from repro import (
    CubeService,
    DurabilityPolicy,
    IngestPipeline,
    MemorySource,
    RelativePrefixSumCube,
    ServiceTarget,
)
from repro.cube.encoders import IntegerEncoder
from repro.cube.schema import CubeSchema, Dimension
from repro.faults import FaultPlan, InjectedFault
from repro.ingest import read_dead_letters

STORES = 32       # store_id 0..31
PRODUCTS = 64     # product bucket 0..63
ROWS = 20_000


def make_feed(seed=7):
    """A day of sales facts, with realistic junk sprinkled in."""
    rng = np.random.default_rng(seed)
    feed = [
        {
            "store": int(rng.integers(0, STORES)),
            "product": int(rng.integers(0, PRODUCTS)),
            "sales": float(rng.integers(1, 500)),
        }
        for _ in range(ROWS)
    ]
    # the junk every real feed contains: an unknown store, a missing
    # column, and a non-finite measure
    feed[4_000] = {"store": 999, "product": 3, "sales": 10.0}
    feed[9_000] = {"store": 5, "sales": 10.0}
    feed[14_000] = {"store": 5, "product": 3, "sales": float("inf")}
    return feed, [4_000, 9_000, 14_000]


def make_pipeline(feed, service, workdir, fault_plan=None):
    schema = CubeSchema(
        [
            Dimension("store", IntegerEncoder(0, STORES - 1)),
            Dimension("product", IntegerEncoder(0, PRODUCTS - 1)),
        ],
        "sales",
    )
    return IngestPipeline(
        MemorySource(feed, chunk_rows=1024),
        schema,
        ServiceTarget(service),
        checkpoint_path=workdir / "ingest-checkpoint.json",
        deadletter_path=workdir / "ingest-deadletter.log",
        group_rows=2048,
        fault_plan=fault_plan,
    )


def main():
    feed, poison = make_feed()

    # the oracle: what a never-crashed run must produce
    expected = np.zeros((STORES, PRODUCTS))
    for i, fact in enumerate(feed):
        if i not in poison:
            expected[fact["store"], fact["product"]] += fact["sales"]

    with tempfile.TemporaryDirectory(prefix="firehose-") as tmp:
        workdir = pathlib.Path(tmp)
        state = workdir / "state"
        service = CubeService(
            RelativePrefixSumCube,
            np.zeros((STORES, PRODUCTS)),
            durability=DurabilityPolicy(dir=state),
        )

        # run 1: the coordinator dies right after the 4th group's submit
        # (after the WAL ack, before the commit checkpoint — the worst
        # possible moment for a naive at-least-once loader)
        plan = FaultPlan(ingest_crash_at={"submit": 4})
        try:
            with make_pipeline(feed, service, workdir, plan) as pipeline:
                pipeline.run()
            raise AssertionError("the injected crash never fired")
        except InjectedFault as fault:
            print(f"coordinator crashed mid-stream: {fault}")
        service.abandon()  # power loss: no clean shutdown, no checkpoint

        # run 2: recover the service from its WAL, re-run the SAME
        # command; the fence decides replay-vs-skip per group
        recovered = CubeService.recover(state, RelativePrefixSumCube)
        try:
            with make_pipeline(feed, recovered, workdir) as pipeline:
                report = pipeline.run()
            recovered.flush()
            array, _ = recovered.snapshot_array()
        finally:
            recovered.close()

        dead = read_dead_letters(workdir / "ingest-deadletter.log")

    print(f"resumed from the fenced checkpoint: "
          f"{report.rows_read} of {len(feed)} rows re-read, "
          f"fence skipped {report.fence_skips} already-committed group")
    print(f"final offset {report.offset}, "
          f"{report.rows_quarantined} rows quarantined this run, "
          f"{len(dead)} total in the dead-letter file: "
          f"{sorted(set(e['reason'] for e in dead))}")

    assert np.array_equal(array, expected), "cube diverged from oracle"
    assert sorted(e["offset"] for e in dead) == poison, (
        "dead letters are not exactly-once"
    )
    assert report.fence_skips == 1
    assert report.offset == len(feed)
    print("\nbit-for-bit equal to the never-crashed oracle, "
          "poison rows dead-lettered exactly once -- OK")


if __name__ == "__main__":
    main()

"""The paper's motivating scenario: an insurance company's sales cube.

Section 1 of the paper: a data cube with SALES as the measure and
CUSTOMER_AGE / DATE_OF_SALE as dimensions, answering queries such as
"find the total sales for customers with an age from 37 to 52, over the
past three months" — while new sales arrive daily.

This example drives the full OLAP layer: fact records -> schema/encoders
-> dense cube -> RPS-backed engine -> attribute-space queries.

Run:  python examples/insurance_sales.py
"""

import datetime

import numpy as np

from repro import (
    CubeSchema,
    DataCubeEngine,
    DateEncoder,
    Dimension,
    FactTable,
    IntegerEncoder,
)


def make_fact_table(seed: int = 7, facts: int = 5000) -> FactTable:
    """Synthesize a year of policy sales."""
    rng = np.random.default_rng(seed)
    start = datetime.date(2026, 1, 1)
    table = FactTable()
    for _ in range(facts):
        # Middle-aged customers buy more insurance; winter is busier.
        age = int(np.clip(rng.normal(45, 13), 18, 80))
        day = int(rng.integers(0, 365))
        premium = float(round(rng.lognormal(5.0, 0.6), 2))
        table.append(
            {
                "age": age,
                "day": start + datetime.timedelta(days=day),
                "sales": premium,
            }
        )
    return table


def main():
    schema = CubeSchema(
        [
            Dimension("age", IntegerEncoder(18, 80)),
            Dimension("day", DateEncoder("2026-01-01", 365)),
        ],
        measure="sales",
    )
    facts = make_fact_table()
    engine = DataCubeEngine(schema, facts)
    print(f"built {engine!r} from {len(facts)} fact records\n")

    # The paper's query, verbatim: ages 37-52 over three months.
    q = {"age": (37, 52), "day": ("2026-04-01", "2026-06-30")}
    print(f"total sales, ages 37-52, Apr-Jun: {engine.sum(q):>12.2f}")
    print(f"policies sold in that segment:    {engine.count(q):>12}")
    print(f"average premium in that segment:  {engine.average(q):>12.2f}\n")

    # Rolling 30-day sales across the year (the paper's ROLLING SUM).
    windows = engine.rolling_sum("day", 30)
    peak = max(range(len(windows)), key=lambda i: windows[i])
    peak_day = schema.dimension("day").encoder.decode(peak)
    print(f"best 30-day window starts {peak_day}: {windows[peak]:.2f}\n")

    # New sales arrive; the cube absorbs them at RPS update cost.
    today = {"age": 41, "day": "2026-12-31", "sales": 890.50}
    engine.backend.counter.reset()
    engine.ingest(today)
    written = engine.backend.counter.cells_written
    cube_cells = int(np.prod(schema.shape))
    print(f"ingesting one sale touched {written} cells "
          f"of a {cube_cells}-cell cube "
          f"({100.0 * written / cube_cells:.2f}%)")
    print(f"year-end total is now {engine.sum():.2f}")
    print("insurance example OK")


if __name__ == "__main__":
    main()

"""A fuller OLAP session: multiple measures, hierarchies, textual queries.

Models a retail chain's year: facts carry SALES and COST over
(REGION, CUSTOMER_AGE, DAY) dimensions. The example exercises the whole
cube layer on top of the relative prefix sum backend:

* multi-measure totals, margins, and profit (derived measures),
* the textual query language,
* calendar rollups (monthly revenue) and age-band rollups,
* everything while facts keep streaming in.

Run:  python examples/retail_analytics.py
"""

import datetime

import numpy as np

from repro import (
    CategoricalEncoder,
    DateEncoder,
    Dimension,
    IntegerEncoder,
    MultiMeasureEngine,
)
from repro.cube.hierarchy import BandHierarchy, CalendarHierarchy
from repro.cube.query import execute_query

REGIONS = ["north", "south", "east", "west"]
START = datetime.date(2026, 1, 1)


def synthesize_facts(count=8000, seed=23):
    """A year of purchases with regional and seasonal structure."""
    rng = np.random.default_rng(seed)
    facts = []
    for _ in range(count):
        day_index = int(rng.integers(0, 365))
        season_boost = 1.0 + 0.5 * np.cos(
            2 * np.pi * (day_index - 350) / 365.0
        )
        region = REGIONS[int(rng.integers(0, 4))]
        price = float(
            np.round(rng.lognormal(3.4, 0.5) * season_boost, 2)
        )
        facts.append(
            {
                "region": region,
                "age": int(np.clip(rng.normal(42, 15), 18, 85)),
                "day": START + datetime.timedelta(days=day_index),
                "sales": price,
                "cost": float(np.round(price * rng.uniform(0.5, 0.8), 2)),
            }
        )
    return facts


def main():
    dims = [
        Dimension("region", CategoricalEncoder(REGIONS)),
        Dimension("age", IntegerEncoder(18, 85)),
        Dimension("day", DateEncoder(START, 365)),
    ]
    engine = MultiMeasureEngine(dims, ["sales", "cost"], synthesize_facts())
    print(f"built {engine!r}\n")

    # Company-level derived measures.
    revenue = engine.sum("sales")
    profit = engine.difference("sales", "cost")
    margin = 1.0 - engine.ratio("cost", "sales")
    print(f"revenue {revenue:>12.2f}")
    print(f"profit  {profit:>12.2f}")
    print(f"margin  {margin:>12.1%}\n")

    # The textual query language against the sales engine.
    q = (
        "SUM(sales) WHERE region BETWEEN east AND east "
        "AND day BETWEEN '2026-11-01' AND '2026-12-31'"
    )
    print(f"query: {q}")
    print(f"  -> {execute_query(engine.engine('sales'), q):.2f}\n")

    # Monthly revenue rollup: one O(1) range query per month.
    monthly = CalendarHierarchy(engine.engine("sales"), "day").rollup("month")
    best = max(monthly, key=monthly.get)
    print("monthly revenue:")
    for month, value in monthly.items():
        bar = "#" * int(40 * value / monthly[best])
        print(f"  {month}  {value:>11.2f}  {bar}")
    print(f"best month: {best}\n")

    # Age-band profitability (profit needs both measures per band).
    bands = {"18-29": (18, 29), "30-44": (30, 44),
             "45-64": (45, 64), "65+": (65, 85)}
    sales_by_band = BandHierarchy(
        engine.engine("sales"), "age", bands
    ).rollup()
    cost_by_band = BandHierarchy(
        engine.engine("cost"), "age", bands
    ).rollup()
    print("profit by age band:")
    for band in bands:
        print(f"  {band:>6}: {sales_by_band[band] - cost_by_band[band]:>11.2f}")
    print()

    # Live ingest keeps every aggregate current.
    engine.ingest(
        {"region": "west", "age": 33, "day": "2026-12-31",
         "sales": 999.99, "cost": 500.00}
    )
    print(f"after one more sale, revenue {engine.sum('sales'):.2f} "
          f"(was {revenue:.2f})")
    print("retail analytics example OK")


if __name__ == "__main__":
    main()

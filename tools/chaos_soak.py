"""Seeded fault-injection soak for the durability and cluster layers.

``--mode single`` (default) runs crash/recover rounds against a
brute-force oracle until a time budget expires, cycling three scenarios
per seed:

* **crash** — feed a durable :class:`~repro.serve.CubeService` random
  update groups, kill it at a random point (``abandon()`` leaves the
  exact power-loss disk image), recover, and assert the recovered cube
  equals an oracle that applied exactly the acknowledged prefix.
* **torn-tail** — a :class:`~repro.faults.FaultPlan` tears a WAL append
  mid-record; the torn group was never acked, so recovery must surface
  exactly the groups before it and the resumed service must append
  cleanly after truncation.
* **bad-checkpoint** — flip a byte in the newest checkpoint; recovery
  must fall back to the previous one and still reach the oracle state
  via WAL replay.

``--mode router`` soaks the adaptive query router
(:class:`~repro.routing.QueryRouter`): a writer churns snapshot
versions over a durable service while concurrent readers answer from
the cache/rollup/RPS tiers, and **every answer must equal the
per-version oracle at its own stamp** — one stale read fails the
round. Mid-round a fault is armed that makes rollup *builds* fail
(reader traffic is untouched); the round asserts the failed build
degraded to the RPS fallback (failure counted, reads kept flowing,
nothing raised) and that a later build succeeds once the fault heals.

``--mode net`` soaks the TCP serving tier (:mod:`repro.net`) over real
sockets: a :class:`~repro.net.CubeServer` fronts a durable service
whose writer is slowed by injected apply latency, while concurrent
client connections query, stream, and write through it — **every
answer (and every stream chunk) must equal the per-version oracle at
its own stamp**: one stale or partial read fails the round. Mid-round
the harness also hammers a starved-quota tenant, fires malformed
frames at the socket, and abruptly drops a connection; the server must
answer each abuse with its documented wire error and keep serving
everyone else. Backpressure rejections (``overloaded`` /
``quota_exceeded``) are expected and retried per their
``retry_after_s`` hint — any *other* error fails the round.

``--mode ingest`` soaks the exactly-once streaming pipeline
(:mod:`repro.ingest`): each round streams a seeded record set — with
planted poison rows — into a durable service, a rolling-window service,
or a live cluster, kills the ingest coordinator at a seeded stage
boundary (chunk/encode/deadletter/intent/submit/checkpoint/roll),
power-loses single-service targets (``abandon`` + ``recover``), resumes
a fresh pipeline, and asserts the final cube is **bit-for-bit equal**
to a never-crashed oracle with every poison row in the dead-letter file
**exactly once**.

``--mode cluster`` soaks a :class:`~repro.cluster.CubeCluster` instead:
each round builds a seeded sharded/replicated cluster, drives
interleaved queries and update groups while **killing a primary**
(health monitor must fail over with zero acked-group loss),
**partitioning a replica** (reads keep flowing; the healed replica is
scrub-repaired), and **corrupting a replica's state** (the anti-entropy
scrubber must detect and repair the divergence). Every answered query
is checked against the oracle exactly; the round fails on any mismatch
or on a scrub round that misses an injected divergence.

``--mode reshard`` soaks live elastic resharding: each round drives a
seeded cluster through a split or merge migration with update groups
and exact oracle-checked reads injected **at every migration phase
boundary** (plan, seed, tail_replay, dual_write, flip, verify, retire),
while one of three faults fires — a coordinator crash at a chosen phase
boundary, a migration-target node kill mid-dual-write, or none. A
failed migration must roll back to the prior epoch with **zero
acked-group loss** and the cluster must keep answering exactly; the
retried migration must land on a strictly larger epoch. Rounds finish
by killing a whole shard and verifying the degraded-read contract:
``allow_estimate=True`` answers carry an explicit ``estimate=True``
marker whose ``[low, high]`` interval contains the true acked sum,
while exact-by-default still refuses.

Every round is deterministic in ``(seed, round_index)``. On failure the
round's WAL/checkpoint directory is preserved under ``--artifact-dir``
(CI uploads it) together with a ``round.json`` describing the exact
parameters, and the process exits nonzero.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py --seeds 0 1 2 \
        --time-budget 60 --artifact-dir chaos-artifacts
    PYTHONPATH=src python tools/chaos_soak.py --mode cluster \
        --seeds 0 1 --time-budget 60
"""

import argparse
import asyncio
import json
import shutil
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path

import numpy as np

from repro import CubeService, DurabilityPolicy, FaultPlan
from repro.cluster import BreakerPolicy, CubeCluster
from repro.core.rps import RelativePrefixSumCube
from repro.faults import InjectedFault
from repro.routing import QueryRouter
from repro.routing.router import ServiceBackend
from repro.serve import recover_state
from repro.testing import assert_recovery_correct
from repro.workloads import ClusterWorkloadRunner

SHAPES = [(23,), (11, 9), (6, 5, 4)]


def _round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index])
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": ("crash", "torn-tail", "bad-checkpoint")[round_index % 3],
        "shape": SHAPES[int(rng.integers(len(SHAPES)))],
        "groups": int(rng.integers(8, 30)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_crash(rng, params, state_dir):
    crash_after = int(rng.integers(0, params["groups"] + 1))
    params["crash_after"] = crash_after if crash_after < params["groups"] else None
    assert_recovery_correct(
        RelativePrefixSumCube,
        state_dir,
        shape=params["shape"],
        groups=params["groups"],
        crash_after=params["crash_after"],
        checkpoint_every=params["checkpoint_every"],
        seed=int(rng.integers(2**31)),
    )


def _feed(service, oracle, rng, count, shape):
    for _ in range(count):
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = int(rng.integers(-9, 10)) or 1
        service.submit_batch([(cell, delta)])
        oracle[cell] += delta


def _run_torn_tail(rng, params, state_dir):
    shape = params["shape"]
    tear_at = int(rng.integers(2, params["groups"]))
    params["torn_write_at"] = tear_at
    oracle = np.zeros(shape, dtype=np.int64)
    service = CubeService(
        RelativePrefixSumCube,
        oracle.copy(),
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=params["checkpoint_every"]
        ),
        fault_plan=FaultPlan(seed=params["seed"], torn_write_at=tear_at),
    )
    try:
        _feed(service, oracle, rng, tear_at - 1, shape)
        try:
            service.submit_batch([(tuple(0 for _ in shape), 1)])
        except InjectedFault:
            pass  # the torn group was never acknowledged
        else:
            raise AssertionError("torn write was not injected")
    finally:
        service.abandon()
    state = recover_state(state_dir)
    assert state.version == tear_at - 1, (state.version, tear_at)
    assert np.array_equal(state.method.to_array(), oracle)
    # the resumed service truncates the tear and appends cleanly
    resumed = CubeService.recover(state_dir)
    try:
        _feed(resumed, oracle, rng, 2, shape)
        resumed.flush()
        arr, _, _ = resumed._read(lambda m: m.to_array())
        assert np.array_equal(arr, oracle)
    finally:
        resumed.close()


def _run_bad_checkpoint(rng, params, state_dir):
    shape = params["shape"]
    # checkpoint every cycle, and flush twice so at least two non-seed
    # checkpoints exist — corrupting the newest must leave a fallback
    params["checkpoint_every"] = 1
    oracle = np.zeros(shape, dtype=np.int64)
    service = CubeService(
        RelativePrefixSumCube,
        oracle.copy(),
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=1, keep_checkpoints=2
        ),
    )
    try:
        half = max(1, params["groups"] // 2)
        _feed(service, oracle, rng, half, shape)
        service.flush()
        _feed(service, oracle, rng, params["groups"] - half, shape)
        service.flush()
    finally:
        service.abandon()
    checkpoints = sorted(Path(state_dir).glob("ckpt-*.npz"))
    assert len(checkpoints) >= 2, [p.name for p in checkpoints]
    target = checkpoints[-1]
    blob = bytearray(target.read_bytes())
    blob[int(rng.integers(len(blob)))] ^= 0xFF
    target.write_bytes(bytes(blob))
    params["corrupted_checkpoint"] = target.name
    state = recover_state(state_dir)
    assert np.array_equal(state.method.to_array(), oracle)


SCENARIOS = {
    "crash": _run_crash,
    "torn-tail": _run_torn_tail,
    "bad-checkpoint": _run_bad_checkpoint,
}

CLUSTER_SHAPES = [(16, 9), (12, 7, 5)]


def _cluster_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 1000])
    shape = CLUSTER_SHAPES[int(rng.integers(len(CLUSTER_SHAPES)))]
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "cluster",
        "shape": shape,
        "num_shards": int(rng.integers(2, min(4, shape[0]) + 1)),
        "replication_factor": int(rng.integers(2, 4)),
        "groups": int(rng.integers(10, 25)),
        "queries": int(rng.integers(10, 25)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_cluster(rng, params, state_dir):
    """One kill/partition/corrupt/heal round against an exact oracle."""
    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.int64)
    plan = FaultPlan(seed=params["seed"])
    cluster = CubeCluster(
        RelativePrefixSumCube,
        cube,
        data_dir=state_dir,
        num_shards=params["num_shards"],
        replication_factor=params["replication_factor"],
        checkpoint_every=params["checkpoint_every"],
        fault_plan=plan,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=30.0),
        seed=params["seed"],
    )
    runner = ClusterWorkloadRunner(cluster, cube.astype(np.float64))

    def random_group():
        group = []
        for _ in range(int(rng.integers(1, 6))):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            group.append((cell, float(rng.integers(-9, 10) or 1)))
        return group

    def random_queries(count):
        queries = []
        for _ in range(count):
            low, high = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                low.append(a)
                high.append(b)
            queries.append((tuple(low), tuple(high)))
        return queries

    def drive(queries, groups):
        result = runner.run(
            random_queries(queries), [random_group() for _ in range(groups)]
        )
        assert result.mismatches == 0, f"{result.mismatches} wrong answers"
        return result

    try:
        third_q = max(1, params["queries"] // 3)
        third_g = max(1, params["groups"] // 3)
        drive(third_q, third_g)

        # -- kill a primary: monitor must promote, no acked loss --------------
        victim_shard = int(rng.integers(params["num_shards"]))
        victim = f"s{victim_shard}.n0"
        params["killed_primary"] = victim
        cluster.kill_node(victim)
        for _ in range(3):  # enough probes to trip the breaker
            cluster.monitor.tick()
        assert cluster.stats()["metrics"]["failovers"].get(
            victim_shard
        ), "kill did not trigger a failover"
        drive(third_q, third_g)

        # -- partition a replica, corrupt another, heal and scrub -------------
        part_shard = int(rng.integers(params["num_shards"]))
        replicas = [
            n
            for n in cluster.replica_sets[part_shard].nodes
            if not n.is_primary and not n.dead
        ]
        if replicas:
            target = replicas[0]
            params["partitioned_replica"] = target.node_id
            plan.partition(target.node_id)
            drive(third_q, third_g)  # reads flow without the replica
            plan.heal(target.node_id)
        node = next(
            (
                n
                for n in cluster.nodes()
                if not n.is_primary and not n.dead and not n.lagging
            ),
            None,
        )
        if node is not None:
            params["corrupted_replica"] = node.node_id
            # drain pending groups first so the corrupted front buffer
            # is the one the scrubber digests (no swap hides it)
            cluster.flush()
            node.service._front.method.rp._rp.flat[0] += 997.0
            report = cluster.scrubber.scrub_once()
            assert (
                report["divergences"] >= 1
            ), f"scrubber missed the corruption: {report}"
        report = cluster.scrubber.scrub_once()
        assert report["divergences"] == 0, f"scrub did not converge: {report}"
        final = drive(third_q, 0)
        assert final.unavailable == 0, "healed cluster still unavailable"
        params["metrics"] = cluster.stats()["metrics"]
    finally:
        cluster.close()


ROUTER_SHAPES = [(24,), (12, 10), (6, 5, 4)]

#: reader pages stay at or below this many boxes; a rollup build at
#: granularity 2 queries every block of the cube in one batch, which is
#: always larger — so the build-failure fault below can target builds
#: without ever touching reader traffic
ROUTER_PAGE_BOXES = 4


class _BuildFaultBackend:
    """Backend wrapper whose *armed* state fails any batch bigger than a
    reader page. Rollup builds fetch all block totals in one oversized
    batch, so arming this injects a build failure while routed reads
    (small pages, or cache hits that never reach the backend) flow on.
    """

    def __init__(self, backend):
        self._backend = backend
        self.shape = backend.shape
        self.armed = False
        self.injected = 0

    def current_stamp(self):
        return self._backend.current_stamp()

    def query_many(self, lows, highs, deadline=None):
        if self.armed and len(lows) > ROUTER_PAGE_BOXES:
            self.injected += 1
            raise InjectedFault("injected rollup-build failure")
        return self._backend.query_many(lows, highs, deadline=deadline)

    def __getattr__(self, name):
        return getattr(self._backend, name)


def _box_sum(state, lo, hi):
    sl = tuple(slice(int(a), int(b) + 1) for a, b in zip(lo, hi))
    return float(state[sl].sum())


def _router_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 2000])
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "router",
        "shape": ROUTER_SHAPES[int(rng.integers(len(ROUTER_SHAPES)))],
        "groups": int(rng.integers(30, 60)),
        "readers": int(rng.integers(2, 4)),
        "flush_every": int(rng.integers(3, 8)),
        "build_every": int(rng.integers(5, 12)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_router(rng, params, state_dir):
    """Writer churn + injected build failures + concurrent cached
    readers; every routed answer must match the oracle at its stamp."""
    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.float64)

    # precompute the whole write stream and the exact per-version states
    groups, states = [], [cube.copy()]
    for _ in range(params["groups"]):
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(-9, 10) or 1),
            )
            for _ in range(int(rng.integers(1, 4)))
        ]
        groups.append(group)
        state = states[-1].copy()
        for cell, delta in group:
            state[cell] += delta
        states.append(state)

    pages = []
    for _ in range(3):
        lows, highs = [], []
        for _ in range(ROUTER_PAGE_BOXES):
            lo, hi = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                lo.append(a)
                hi.append(b)
            lows.append(lo)
            highs.append(hi)
        pages.append((np.array(lows), np.array(highs)))

    errors = []
    stop = threading.Event()
    service = CubeService(
        RelativePrefixSumCube,
        cube,
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=params["checkpoint_every"]
        ),
    )
    backend = _BuildFaultBackend(ServiceBackend(service))
    try:
        with QueryRouter(
            backend, auto_build=False, observe_every=1
        ) as router:

            def reader(page_index):
                page_lows, page_highs = pages[page_index % len(pages)]
                while not stop.is_set():
                    batch = router.route_many(page_lows, page_highs)
                    for lo, hi, value, stamp, tier in zip(
                        page_lows, page_highs, batch.values,
                        batch.stamps, batch.tiers,
                    ):
                        expect = _box_sum(states[stamp], lo, hi)
                        if value != expect:
                            errors.append({
                                "box": (tuple(lo), tuple(hi)),
                                "tier": tier, "stamp": int(stamp),
                                "value": float(value), "expect": expect,
                            })
                            stop.set()
                            return

            threads = [
                threading.Thread(target=reader, args=(i,))
                for i in range(params["readers"])
            ]
            for t in threads:
                t.start()
            fault_window = (
                params["groups"] // 3, 2 * params["groups"] // 3
            )
            degraded_builds = 0
            for i, group in enumerate(groups):
                if stop.is_set():
                    break
                router.submit_batch(group)
                if i % params["flush_every"] == 0:
                    router.flush()
                if i == fault_window[0]:
                    backend.armed = True
                if i == fault_window[1]:
                    backend.armed = False
                if i % params["build_every"] == 0:
                    built = router.build_rollup(2)
                    if built is None:
                        # degraded: the failed build must be counted and
                        # must not have broken the serving path
                        degraded_builds += 1
            backend.armed = False
            router.flush()
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive(), "reader thread hung"

            assert not errors, f"stale routed reads: {errors[:3]}"
            # the fault healed: a final build must succeed again
            assert router.build_rollup(2) is not None, (
                "rollup build still failing after the fault healed"
            )
            stats = router.stats()["router"]
            params["router_stats"] = {
                k: stats[k]
                for k in (
                    "queries_routed", "cache_hits", "batch_hits",
                    "rollup_hits", "backend_queries",
                    "rollup_builds", "rollup_build_failures",
                )
            }
            params["degraded_builds"] = degraded_builds
            assert backend.injected >= 1, (
                "round never armed a build failure"
            )
            assert degraded_builds == backend.injected, (
                f"{backend.injected} injected build faults but "
                f"{degraded_builds} degraded builds observed"
            )
            assert stats["rollup_build_failures"] >= degraded_builds
            assert stats["rollup_builds"] >= 1, "no rollup ever published"

            # quiesced differential: a fresh full-cube read through the
            # router equals the final oracle exactly
            final = router.route_many(
                [np.zeros(len(shape), dtype=int)],
                [[n - 1 for n in shape]],
            )
            expect = float(states[-1].sum())
            assert final.values[0] == expect, (
                f"final routed read {final.values[0]} != oracle {expect}"
            )
    finally:
        service.close()


RESHARD_SHAPES = [(16, 9), (18, 5), (12, 4, 3)]

#: migration phases a coordinator crash can be injected at ("retire" is
#: excluded: past retire the migration is already durable and complete)
RESHARD_FAIL_PHASES = (
    "plan", "seed", "tail_replay", "dual_write", "flip", "verify",
)


def _reshard_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 4000])
    shape = RESHARD_SHAPES[int(rng.integers(len(RESHARD_SHAPES)))]
    num_shards = int(rng.integers(2, 4))
    fault = ("none", "crash", "kill-target")[round_index % 3]
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "reshard",
        "shape": shape,
        "num_shards": num_shards,
        "replication_factor": 2,
        "op": ("split", "merge")[int(rng.integers(2))],
        "fault": fault,
        "fail_phase": (
            RESHARD_FAIL_PHASES[
                int(rng.integers(len(RESHARD_FAIL_PHASES)))
            ]
            if fault == "crash"
            else None
        ),
        "groups": int(rng.integers(6, 16)),
        "queries": int(rng.integers(8, 16)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_reshard(rng, params, state_dir):
    """One live split/merge round: writes and exact reads at every
    phase boundary, an optional injected failure with verified
    rollback, then the degraded-read contract on a killed shard."""
    from repro.cluster import ReshardError
    from repro.errors import ClusterUnavailableError

    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.int64)
    oracle = cube.astype(np.float64)
    plan = FaultPlan(seed=params["seed"])
    cluster = CubeCluster(
        RelativePrefixSumCube,
        cube,
        data_dir=state_dir,
        num_shards=params["num_shards"],
        replication_factor=params["replication_factor"],
        checkpoint_every=params["checkpoint_every"],
        fault_plan=plan,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=30.0),
        seed=params["seed"],
    )

    def write_group():
        # oracle absorbs exactly the acked groups: an unacked submit
        # raises before the oracle update, so a lost acked group (or a
        # double-applied one) shows up as a query mismatch
        group = []
        for _ in range(int(rng.integers(1, 5))):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            group.append((cell, float(rng.integers(-9, 10) or 1)))
        cluster.submit_batch(group)
        for cell, delta in group:
            oracle[cell] += delta

    def check_exact(count):
        for _ in range(count):
            low, high = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                low.append(a)
                high.append(b)
            got = cluster.range_sum(tuple(low), tuple(high))
            expect = _box_sum(oracle, low, high)
            assert got == expect, (
                f"stale/lossy answer at epoch {cluster.epoch}: "
                f"box ({low}, {high}) got {got} expect {expect}"
            )

    phases_seen = []

    def phase_hook(phase):
        # a client write and an exact read land at the entry of every
        # phase — the realistic interleaving an epoch fence must survive
        phases_seen.append(phase)
        write_group()
        check_exact(2)
        if (
            params["fault"] == "kill-target"
            and phase == "dual_write"
            and not params.get("killed_target")
        ):
            # kill a whole target replica set: a single node loss could
            # be absorbed by the target's own failover, but the dual
            # write to a fully dead target must fail the migration
            targets = cluster.migration_target_nodes()
            prefixes = sorted(
                {n.node_id.rsplit(".", 1)[0] for n in targets},
                key=lambda p: int(p.rsplit("s", 1)[1]),
            )
            pick = int(rng.integers(len(prefixes)))
            prefix = prefixes[pick]
            victims = [
                node.node_id
                for node in targets
                if node.node_id.startswith(prefix + ".")
            ]
            params["killed_target"] = victims
            for node_id in victims:
                plan.kill(node_id)
            # then land a write inside the dead target's rows so the
            # dual-write window observes the death (a group that never
            # touches those rows cannot — and must not — fail it)
            t_start, t_stop = cluster.stats()["migration"][
                "target_bounds"
            ][pick]
            cell = (int(rng.integers(t_start, t_stop)),) + tuple(
                int(rng.integers(0, n)) for n in shape[1:]
            )
            delta = float(rng.integers(1, 9))
            cluster.submit_batch([(cell, delta)])
            oracle[cell] += delta

    def run_migration(expect_failure):
        op = params["op"]
        if op == "merge" and cluster.shardmap.num_shards < 2:
            op = "split"
        if op == "split":
            widths = [
                stop - start for start, stop in cluster.shardmap.bounds
            ]
            shard = int(np.argmax(widths))
            action = lambda: cluster.split_shard(  # noqa: E731
                shard, phase_hook=phase_hook
            )
        else:
            shard = int(
                rng.integers(cluster.shardmap.num_shards - 1)
            )
            action = lambda: cluster.merge_shards(  # noqa: E731
                shard, phase_hook=phase_hook
            )
        if not expect_failure:
            return action()
        try:
            action()
        except ReshardError as error:
            assert error.rolled_back, (
                f"migration failed without rollback: {error}"
            )
            # only the injected fault may fail the migration: a crash
            # round must die at its chosen phase, a kill-target round
            # must have actually fired its kill first
            if params["fault"] == "crash":
                assert error.phase == params["fail_phase"], (
                    f"failed at {error.phase!r}, fault was armed at "
                    f"{params['fail_phase']!r}: {error}"
                )
            elif not params.get("killed_target"):
                raise
            return None
        raise AssertionError(
            f"injected {params['fault']} fault at "
            f"{params['fail_phase'] or 'dual_write'} did not fail the "
            f"migration"
        )

    try:
        for _ in range(params["groups"] // 2):
            write_group()
        check_exact(params["queries"] // 2)
        epoch_before = cluster.epoch
        shards_before = cluster.shardmap.num_shards

        if params["fault"] == "crash":
            plan.reshard_fail_at = frozenset((params["fail_phase"],))
        if params["fault"] != "none":
            run_migration(expect_failure=True)
            # rollback contract: prior epoch, prior layout, exact
            # serving of every acked group (including phase-boundary
            # writes acked during the failed migration)
            assert cluster.epoch == epoch_before, (
                f"rollback left epoch {cluster.epoch} != {epoch_before}"
            )
            assert cluster.shardmap.num_shards == shards_before
            write_group()
            check_exact(params["queries"] // 2)
            plan.reshard_fail_at = frozenset()

        summary = run_migration(expect_failure=False)
        params["migration"] = {
            k: summary[k]
            for k in ("kind", "old_epoch", "new_epoch", "num_shards")
        }
        assert summary["new_epoch"] > epoch_before, (
            f"epoch did not advance: {summary}"
        )
        assert summary["verify"]["mismatches"] == [], summary["verify"]
        assert cluster.epoch == summary["new_epoch"]
        write_group()
        check_exact(params["queries"])

        # -- degraded-read contract on a dead shard -----------------------
        victim_shard = int(rng.integers(cluster.shardmap.num_shards))
        params["killed_shard"] = victim_shard
        for node in cluster.replica_sets[victim_shard].nodes:
            plan.kill(node.node_id)
        full_low = tuple(0 for _ in shape)
        full_high = tuple(n - 1 for n in shape)
        try:
            cluster.range_sum(full_low, full_high)
        except ClusterUnavailableError:
            pass
        else:
            raise AssertionError(
                "exact read over a dead shard did not refuse"
            )
        lows = [full_low]
        highs = [full_high]
        for _ in range(4):
            low, high = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                low.append(a)
                high.append(b)
            lows.append(tuple(low))
            highs.append(tuple(high))
        values, estimates = cluster.range_sum_many(
            lows, highs, allow_estimate=True
        )
        marked = 0
        for low, high, value, estimate in zip(
            lows, highs, values, estimates
        ):
            expect = _box_sum(oracle, low, high)
            if estimate is None:
                assert value == expect, (
                    f"undegraded slot inexact: {value} != {expect}"
                )
            else:
                marked += 1
                assert estimate.estimate is True, estimate
                assert estimate.low <= expect <= estimate.high, (
                    f"estimate interval [{estimate.low}, "
                    f"{estimate.high}] misses truth {expect}"
                )
                assert estimate.epoch == cluster.epoch
        assert marked >= 1, "full-cube read over a dead shard not marked"
        params["degraded_answers"] = marked
        params["phases_seen"] = phases_seen
        params["metrics"] = {
            k: cluster.stats()["metrics"][k]
            for k in (
                "reshards_started", "reshard_flips",
                "reshard_rollbacks", "dual_writes", "degraded_reads",
            )
        }
    finally:
        cluster.close()


INGEST_STAGES = (
    "chunk", "encode", "deadletter", "intent", "submit", "checkpoint",
)


def _ingest_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 5000])
    target = ("service", "rolling", "cluster")[round_index % 3]
    stages = INGEST_STAGES + (("roll",) if target == "rolling" else ())
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "ingest",
        "target": target,
        "size": int(rng.integers(6, 12)),
        "rows": int(rng.integers(200, 500)),
        "poison": int(rng.integers(1, 4)),
        "crash_stage": stages[int(rng.integers(len(stages)))],
        "crash_ordinal": int(rng.integers(1, 4)),
        # <= 96 keeps any group's day span under the rolling window
        # even after poison inserts shift offsets, so the row-at-a-time
        # oracle stays valid (no intra-group expiry)
        "group_rows": int(rng.choice([64, 96])),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_ingest(rng, params, state_dir):
    """One crash/resume round of the streaming pipeline: the resumed
    run must land bit-for-bit on the oracle with every poison row
    dead-lettered exactly once."""
    from repro.cube.encoders import IntegerEncoder
    from repro.cube.schema import CubeSchema, Dimension
    from repro.ingest import (
        ClusterTarget,
        IngestPipeline,
        MemorySource,
        RollingCubeService,
        RollingServiceTarget,
        ServiceTarget,
        read_dead_letters,
    )

    size = params["size"]
    rolling = params["target"] == "rolling"
    window = 4

    records = []
    if rolling:
        schema = CubeSchema(
            [Dimension("x", IntegerEncoder(0, size - 1))], "sales"
        )
        # deterministic day ladder: one day per 32 rows keeps every
        # fixed-size group's slot span below the window, so the
        # row-at-a-time oracle below matches group-at-a-time rolls
        for i in range(params["rows"]):
            records.append({
                "day": i // 32,
                "x": int(rng.integers(0, size)),
                "sales": float(rng.integers(1, 10)),
            })
    else:
        schema = CubeSchema(
            [
                Dimension("x", IntegerEncoder(0, size - 1)),
                Dimension("y", IntegerEncoder(0, size - 1)),
            ],
            "sales",
        )
        for i in range(params["rows"]):
            records.append({
                "x": int(rng.integers(0, size)),
                "y": int(rng.integers(0, size)),
                "sales": float(rng.integers(1, 10)),
            })
    poison_offsets = sorted(
        int(x) for x in rng.choice(
            np.arange(1, len(records)), size=params["poison"], replace=False
        )
    )
    for n, offset in enumerate(poison_offsets):
        records.insert(offset, {"x": 10 * size, "y": 0, "sales": 1.0})
    if rolling:
        # plus a hopelessly late arrival after the window moved on
        records.append({"day": 0, "x": 0, "sales": 1.0})

    # -- oracle ----------------------------------------------------------
    expected_dead = []
    if rolling:
        expected = np.zeros((window, size))
        newest = 0
        for i, r in enumerate(records):
            if "day" not in r or r.get("x", size) >= size:
                expected_dead.append(i)
                continue
            day = r["day"]
            if day > newest:
                for s in range(newest + 1, day + 1):
                    expected[s % window] = 0.0
                newest = day
            if day < max(0, newest - window + 1):
                expected_dead.append(i)
                continue
            expected[day % window, r["x"]] += r["sales"]
    else:
        expected = np.zeros((size, size))
        for i, r in enumerate(records):
            if r["x"] >= size:
                expected_dead.append(i)
            else:
                expected[r["x"], r["y"]] += r["sales"]

    ck = state_dir / "ingest-ck.json"
    dl = state_dir / "ingest-dead.log"

    def pipe(target, plan=None):
        kwargs = {}
        if rolling:
            kwargs = {
                "time_column": "day",
                "queue_depth_low": -1,
                "queue_depth_high": 10 ** 9,
                "min_group_rows": params["group_rows"],
                "max_group_rows": params["group_rows"],
            }
        return IngestPipeline(
            MemorySource(records, chunk_rows=32), schema, target,
            checkpoint_path=ck, deadletter_path=dl,
            group_rows=params["group_rows"], fault_plan=plan,
            **kwargs,
        )

    plan = FaultPlan(
        ingest_crash_at={params["crash_stage"]: params["crash_ordinal"]}
    )
    crashed = False

    if params["target"] == "cluster":
        cluster = CubeCluster(
            RelativePrefixSumCube, np.zeros((size, size)),
            data_dir=state_dir / "cluster", num_shards=2,
            replication_factor=2,
            checkpoint_every=params["checkpoint_every"],
        )
        try:
            try:
                with pipe(ClusterTarget(cluster), plan) as p:
                    p.run()
            except InjectedFault:
                crashed = True
            with pipe(ClusterTarget(cluster)) as p:
                report = p.run()
            cluster.flush()
            lows, highs = [], []
            for x in range(size):
                for y in range(size):
                    lows.append((x, y))
                    highs.append((x, y))
            actual = np.asarray(
                cluster.range_sum_many(lows, highs), dtype=float
            ).reshape((size, size))
        finally:
            cluster.close()
    else:
        svc_dir = state_dir / "svc"
        shape = (window, size) if rolling else (size, size)
        service = CubeService(
            RelativePrefixSumCube, np.zeros(shape),
            durability=DurabilityPolicy(
                dir=svc_dir, checkpoint_every=params["checkpoint_every"]
            ),
        )
        target = (
            RollingServiceTarget(RollingCubeService(service))
            if rolling else ServiceTarget(service)
        )
        try:
            with pipe(target, plan) as p:
                p.run()
        except InjectedFault:
            crashed = True
        service.abandon()  # power-loss image

        recovered = CubeService.recover(svc_dir, RelativePrefixSumCube)
        try:
            target = (
                RollingServiceTarget(RollingCubeService(recovered))
                if rolling else ServiceTarget(recovered)
            )
            with pipe(target) as p:
                report = p.run()
            recovered.flush()
            actual, _ = recovered.snapshot_array()
        finally:
            recovered.close()

    params["crashed"] = crashed
    params["report"] = {
        k: report[k]
        for k in ("offset", "rows_quarantined", "resumes", "fence_skips",
                  "partial_resubmits", "groups_submitted")
    }
    assert np.array_equal(actual, expected), (
        f"resumed cube diverged from oracle by "
        f"{np.abs(actual - expected).sum()}"
    )
    dead = read_dead_letters(dl)
    got_dead = sorted(e["offset"] for e in dead)
    assert got_dead == expected_dead, (
        f"dead letters not exactly-once: got {got_dead}, "
        f"expected {expected_dead}"
    )
    assert report["offset"] == len(records)


NET_SHAPES = [(24,), (12, 10), (6, 5, 4)]


def _net_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 3000])
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "net",
        "shape": NET_SHAPES[int(rng.integers(len(NET_SHAPES)))],
        "groups": int(rng.integers(20, 40)),
        "readers": int(rng.integers(2, 4)),
        "flush_every": int(rng.integers(3, 8)),
        "max_inflight": int(rng.integers(2, 5)),
        "latency_groups": int(rng.integers(1, 4)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_net(rng, params, state_dir):
    """Socket-level soak: concurrent clients against a per-version
    oracle, with injected writer latency, quota starvation, malformed
    frames, and an abrupt disconnect — zero stale or partial reads."""
    import socket
    import struct

    from repro.errors import (
        AuthError,
        ProtocolError,
        QuotaExceededError,
        ServiceOverloadedError,
    )
    from repro.net import Authenticator, CubeClient, CubeServer, Tenant
    from repro.net.protocol import encode_frame

    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.float64)

    # the write stream and its exact per-version states, precomputed
    groups, states = [], [cube.copy()]
    for _ in range(params["groups"]):
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(-9, 10) or 1),
            )
            for _ in range(int(rng.integers(1, 4)))
        ]
        groups.append(group)
        state = states[-1].copy()
        for cell, delta in group:
            state[cell] += delta
        states.append(state)

    # slow the writer on a few random groups so readers race a lagging
    # version — the stamp check below is what makes that race safe
    latency_at = tuple(
        sorted(
            int(x)
            for x in rng.choice(
                np.arange(1, params["groups"] + 1),
                size=params["latency_groups"],
                replace=False,
            )
        )
    )
    params["latency_at"] = latency_at

    def page(page_rng, boxes=3):
        lows, highs = [], []
        for _ in range(boxes):
            lo, hi = [], []
            for n in shape:
                a, b = sorted(int(x) for x in page_rng.integers(0, n, size=2))
                lo.append(a)
                hi.append(b)
            lows.append(lo)
            highs.append(hi)
        return lows, highs

    def check(lows, highs, values, stamp, errors, where):
        state = states[int(stamp)]
        for lo, hi, value in zip(lows, highs, values):
            expect = _box_sum(state, lo, hi)
            if value != expect:
                errors.append({
                    "where": where, "box": (tuple(lo), tuple(hi)),
                    "stamp": int(stamp), "value": float(value),
                    "expect": expect,
                })

    service = CubeService(
        RelativePrefixSumCube,
        cube,
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=params["checkpoint_every"]
        ),
        fault_plan=FaultPlan(
            seed=params["seed"], latency_at=latency_at,
            latency_seconds=0.05,
        ),
    )
    auth = Authenticator([
        Tenant("soak", "soak-token", rate_per_s=5000.0, burst=2000.0),
        Tenant("starved", "starved-token", rate_per_s=5.0, burst=2.0),
    ])
    server = CubeServer(
        service,
        port=0,
        authenticator=auth,
        max_inflight=params["max_inflight"],
        overload_retry_s=0.01,
    )
    errors = []
    counts = {
        "reads": 0, "stream_chunks": 0, "overloaded": 0, "quota": 0,
    }

    async def reader(stop, reader_id):
        reader_rng = np.random.default_rng(
            [params["seed"], params["round"], reader_id]
        )
        client = await CubeClient.connect(
            server.host, server.port, token="soak-token"
        )
        try:
            while not stop.is_set() and not errors:
                lows, highs = page(reader_rng)
                try:
                    if reader_rng.integers(4) == 0:
                        # streaming path: every chunk checks against its
                        # own stamp, and coverage must be complete — a
                        # missing chunk is a partial read
                        seen = 0
                        async for offset, values, stamp in (
                            client.stream_range_sums(lows, highs, chunk=2)
                        ):
                            if offset != seen:
                                errors.append({
                                    "where": f"reader{reader_id}-stream",
                                    "gap_at": seen, "got_offset": offset,
                                })
                                break
                            check(
                                lows[offset:offset + len(values)],
                                highs[offset:offset + len(values)],
                                values, stamp, errors,
                                f"reader{reader_id}-stream",
                            )
                            seen += len(values)
                            counts["stream_chunks"] += 1
                        if seen != len(lows) and not errors:
                            errors.append({
                                "where": f"reader{reader_id}-stream",
                                "partial": f"{seen}/{len(lows)} boxes",
                            })
                    else:
                        values, stamp = await client.range_sum_many(
                            lows, highs
                        )
                        check(lows, highs, values, stamp, errors,
                              f"reader{reader_id}")
                        counts["reads"] += 1
                except ServiceOverloadedError as error:
                    counts["overloaded"] += 1
                    await asyncio.sleep(
                        getattr(error, "retry_after_s", 0.0) or 0.01
                    )
        finally:
            await client.close()

    async def starved_tenant(stop):
        """Exhaust a tiny quota; every refusal must be typed and carry
        a positive retry-after."""
        client = await CubeClient.connect(
            server.host, server.port, token="starved-token"
        )
        try:
            while not stop.is_set() and not errors:
                try:
                    await client.ping()
                except QuotaExceededError as error:
                    counts["quota"] += 1
                    if error.retry_after_s <= 0.0:
                        errors.append({
                            "where": "starved",
                            "bad_retry_after": error.retry_after_s,
                        })
                    await asyncio.sleep(0.02)
                except ServiceOverloadedError:
                    # admission control fires before quota (it is the
                    # cheaper check); back off and keep hammering
                    counts["overloaded"] += 1
                    await asyncio.sleep(0.01)
                else:
                    await asyncio.sleep(0.005)
        finally:
            await client.close()

    async def retry_overload(op):
        """The writer must survive admission rejections: back off per
        the server's hint and resubmit."""
        while True:
            try:
                return await op()
            except ServiceOverloadedError as error:
                counts["overloaded"] += 1
                await asyncio.sleep(
                    getattr(error, "retry_after_s", 0.0) or 0.01
                )

    def abuse_sockets():
        """Malformed frame -> typed error; bad token -> auth_failed;
        abrupt disconnect -> server unaffected. Sync, on raw sockets."""
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack("!I", 9) + b"not json!")
            header = sock.recv(4)
            (length,) = struct.unpack("!I", header)
            frame = json.loads(sock.recv(length))
            assert frame["error"]["code"] == "bad_request", frame
        with socket.create_connection(server.address, timeout=5.0) as sock:
            # admission control outranks auth, so a busy server may
            # answer "overloaded" first — honor the hint and resend
            for _ in range(200):
                sock.sendall(encode_frame({
                    "id": 1, "op": "ping", "params": {}, "token": "wrong",
                }))
                header = sock.recv(4)
                (length,) = struct.unpack("!I", header)
                frame = json.loads(sock.recv(length))
                if frame["error"]["code"] != "overloaded":
                    break
                time.sleep(frame["error"].get("retry_after_s", 0.01))
            assert frame["error"]["code"] == "auth_failed", frame
        # half-written frame, then slam the connection shut
        sock = socket.create_connection(server.address, timeout=5.0)
        sock.sendall(struct.pack("!I", 500) + b"partial")
        sock.close()

    async def round_main():
        stop = asyncio.Event()
        tasks = [
            asyncio.ensure_future(reader(stop, i))
            for i in range(params["readers"])
        ]
        tasks.append(asyncio.ensure_future(starved_tenant(stop)))
        writer = await CubeClient.connect(
            server.host, server.port, token="soak-token"
        )
        loop = asyncio.get_running_loop()
        try:
            for i, group in enumerate(groups):
                if errors:
                    break
                await retry_overload(lambda: writer.submit_batch(group))
                if i % params["flush_every"] == 0:
                    await retry_overload(
                        lambda: writer.flush(timeout=30.0)
                    )
                if i == params["groups"] // 2:
                    await loop.run_in_executor(None, abuse_sockets)
            await retry_overload(lambda: writer.flush(timeout=30.0))
            # quiesced differential: the final full-cube read equals
            # the last oracle state exactly
            full_lo = [[0] * len(shape)]
            full_hi = [[n - 1 for n in shape]]
            values, stamp = await retry_overload(
                lambda: writer.range_sum_many(full_lo, full_hi)
            )
            if int(stamp) != params["groups"]:
                errors.append({
                    "where": "final",
                    "stamp": int(stamp), "expect": params["groups"],
                })
            check(full_lo, full_hi, values, stamp, errors, "final")
        finally:
            stop.set()
            await asyncio.gather(*tasks, return_exceptions=True)
            await writer.close()

    async def quota_probe():
        """Post-quiesce, the tiny bucket must refuse within its burst:
        deterministic, no admission-control race to hide behind."""
        client = await CubeClient.connect(
            server.host, server.port, token="starved-token"
        )
        try:
            for _ in range(10):
                try:
                    await client.ping()
                except QuotaExceededError as error:
                    counts["quota"] += 1
                    assert error.retry_after_s > 0.0, (
                        f"quota refusal without retry-after: "
                        f"{error.retry_after_s}"
                    )
                    return
                except ServiceOverloadedError:
                    await asyncio.sleep(0.01)
            raise AssertionError(
                "starved tenant was never refused post-quiesce"
            )
        finally:
            await client.close()

    try:
        server.start_background()
        asyncio.run(round_main())
        asyncio.run(quota_probe())
        net = server.metrics.snapshot()
        params["counts"] = counts
        params["net"] = {
            k: net[k]
            for k in (
                "requests", "errors_by_code", "overload_rejects",
                "quota_rejects", "auth_rejects", "protocol_errors",
                "inflight_peak",
            )
        }
        assert not errors, f"stale or partial reads: {errors[:3]}"
        assert counts["reads"] >= 1, "no batched reads completed"
        assert counts["stream_chunks"] >= 1, "no stream chunks served"
        assert net["quota_rejects"] >= 1, "no quota refusal recorded"
        assert net["auth_rejects"] >= 1, "bad token was not rejected"
        assert net["protocol_errors"] >= 1, (
            "malformed frame was not rejected"
        )
    finally:
        server.stop_background()
        service.close()


def soak(seeds, time_budget, artifact_dir, mode="single", min_rounds=0):
    start = time.monotonic()
    rounds = 0
    round_index = 0
    while (
        time.monotonic() - start < time_budget or rounds < min_rounds
    ):
        for seed in seeds:
            if mode == "cluster":
                rng, params = _cluster_round_params(seed, round_index)
                scenario = _run_cluster
            elif mode == "router":
                rng, params = _router_round_params(seed, round_index)
                scenario = _run_router
            elif mode == "net":
                rng, params = _net_round_params(seed, round_index)
                scenario = _run_net
            elif mode == "reshard":
                rng, params = _reshard_round_params(seed, round_index)
                scenario = _run_reshard
            elif mode == "ingest":
                rng, params = _ingest_round_params(seed, round_index)
                scenario = _run_ingest
            else:
                rng, params = _round_params(seed, round_index)
                scenario = SCENARIOS[params["scenario"]]
            with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
                state_dir = Path(tmp) / "state"
                state_dir.mkdir()
                try:
                    scenario(rng, params, state_dir)
                except Exception:
                    artifact_dir.mkdir(parents=True, exist_ok=True)
                    dest = artifact_dir / f"seed{seed}-round{round_index}"
                    shutil.copytree(state_dir, dest / "state")
                    params["traceback"] = traceback.format_exc()
                    (dest / "round.json").write_text(
                        json.dumps(params, indent=2, default=str) + "\n"
                    )
                    print(f"FAIL {params['scenario']} seed={seed} "
                          f"round={round_index}; state kept in {dest}")
                    print(params["traceback"])
                    return 1
            rounds += 1
        round_index += 1
    elapsed = time.monotonic() - start
    print(f"chaos soak passed: {rounds} rounds, seeds {list(seeds)}, "
          f"{elapsed:.1f}s")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--time-budget", type=float, default=60.0,
                        help="stop starting new rounds after this many seconds")
    parser.add_argument("--artifact-dir", type=Path,
                        default=Path("chaos-artifacts"),
                        help="failed rounds keep their WAL/checkpoint dir here")
    parser.add_argument("--mode",
                        choices=("single", "cluster", "router", "net",
                                 "reshard", "ingest"),
                        default="single",
                        help="single-service crash rounds (default), "
                        "replicated-cluster kill/partition/heal rounds, "
                        "query-router stale-read/build-failure rounds, "
                        "socket-level serving-tier rounds, live "
                        "split/merge reshard rounds with injected "
                        "migration failures and degraded-read checks, or "
                        "streaming-pipeline crash/resume rounds with "
                        "exactly-once and dead-letter verification")
    parser.add_argument("--min-rounds", type=int, default=0,
                        help="keep starting rounds until at least this "
                        "many completed, even past the time budget")
    args = parser.parse_args(argv)
    return soak(args.seeds, args.time_budget, args.artifact_dir,
                mode=args.mode, min_rounds=args.min_rounds)


if __name__ == "__main__":
    sys.exit(main())

"""Seeded fault-injection soak for the durability and cluster layers.

``--mode single`` (default) runs crash/recover rounds against a
brute-force oracle until a time budget expires, cycling three scenarios
per seed:

* **crash** — feed a durable :class:`~repro.serve.CubeService` random
  update groups, kill it at a random point (``abandon()`` leaves the
  exact power-loss disk image), recover, and assert the recovered cube
  equals an oracle that applied exactly the acknowledged prefix.
* **torn-tail** — a :class:`~repro.faults.FaultPlan` tears a WAL append
  mid-record; the torn group was never acked, so recovery must surface
  exactly the groups before it and the resumed service must append
  cleanly after truncation.
* **bad-checkpoint** — flip a byte in the newest checkpoint; recovery
  must fall back to the previous one and still reach the oracle state
  via WAL replay.

``--mode router`` soaks the adaptive query router
(:class:`~repro.routing.QueryRouter`): a writer churns snapshot
versions over a durable service while concurrent readers answer from
the cache/rollup/RPS tiers, and **every answer must equal the
per-version oracle at its own stamp** — one stale read fails the
round. Mid-round a fault is armed that makes rollup *builds* fail
(reader traffic is untouched); the round asserts the failed build
degraded to the RPS fallback (failure counted, reads kept flowing,
nothing raised) and that a later build succeeds once the fault heals.

``--mode cluster`` soaks a :class:`~repro.cluster.CubeCluster` instead:
each round builds a seeded sharded/replicated cluster, drives
interleaved queries and update groups while **killing a primary**
(health monitor must fail over with zero acked-group loss),
**partitioning a replica** (reads keep flowing; the healed replica is
scrub-repaired), and **corrupting a replica's state** (the anti-entropy
scrubber must detect and repair the divergence). Every answered query
is checked against the oracle exactly; the round fails on any mismatch
or on a scrub round that misses an injected divergence.

Every round is deterministic in ``(seed, round_index)``. On failure the
round's WAL/checkpoint directory is preserved under ``--artifact-dir``
(CI uploads it) together with a ``round.json`` describing the exact
parameters, and the process exits nonzero.

Usage::

    PYTHONPATH=src python tools/chaos_soak.py --seeds 0 1 2 \
        --time-budget 60 --artifact-dir chaos-artifacts
    PYTHONPATH=src python tools/chaos_soak.py --mode cluster \
        --seeds 0 1 --time-budget 60
"""

import argparse
import json
import shutil
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path

import numpy as np

from repro import CubeService, DurabilityPolicy, FaultPlan
from repro.cluster import BreakerPolicy, CubeCluster
from repro.core.rps import RelativePrefixSumCube
from repro.faults import InjectedFault
from repro.routing import QueryRouter
from repro.routing.router import ServiceBackend
from repro.serve import recover_state
from repro.testing import assert_recovery_correct
from repro.workloads import ClusterWorkloadRunner

SHAPES = [(23,), (11, 9), (6, 5, 4)]


def _round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index])
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": ("crash", "torn-tail", "bad-checkpoint")[round_index % 3],
        "shape": SHAPES[int(rng.integers(len(SHAPES)))],
        "groups": int(rng.integers(8, 30)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_crash(rng, params, state_dir):
    crash_after = int(rng.integers(0, params["groups"] + 1))
    params["crash_after"] = crash_after if crash_after < params["groups"] else None
    assert_recovery_correct(
        RelativePrefixSumCube,
        state_dir,
        shape=params["shape"],
        groups=params["groups"],
        crash_after=params["crash_after"],
        checkpoint_every=params["checkpoint_every"],
        seed=int(rng.integers(2**31)),
    )


def _feed(service, oracle, rng, count, shape):
    for _ in range(count):
        cell = tuple(int(rng.integers(0, n)) for n in shape)
        delta = int(rng.integers(-9, 10)) or 1
        service.submit_batch([(cell, delta)])
        oracle[cell] += delta


def _run_torn_tail(rng, params, state_dir):
    shape = params["shape"]
    tear_at = int(rng.integers(2, params["groups"]))
    params["torn_write_at"] = tear_at
    oracle = np.zeros(shape, dtype=np.int64)
    service = CubeService(
        RelativePrefixSumCube,
        oracle.copy(),
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=params["checkpoint_every"]
        ),
        fault_plan=FaultPlan(seed=params["seed"], torn_write_at=tear_at),
    )
    try:
        _feed(service, oracle, rng, tear_at - 1, shape)
        try:
            service.submit_batch([(tuple(0 for _ in shape), 1)])
        except InjectedFault:
            pass  # the torn group was never acknowledged
        else:
            raise AssertionError("torn write was not injected")
    finally:
        service.abandon()
    state = recover_state(state_dir)
    assert state.version == tear_at - 1, (state.version, tear_at)
    assert np.array_equal(state.method.to_array(), oracle)
    # the resumed service truncates the tear and appends cleanly
    resumed = CubeService.recover(state_dir)
    try:
        _feed(resumed, oracle, rng, 2, shape)
        resumed.flush()
        arr, _, _ = resumed._read(lambda m: m.to_array())
        assert np.array_equal(arr, oracle)
    finally:
        resumed.close()


def _run_bad_checkpoint(rng, params, state_dir):
    shape = params["shape"]
    # checkpoint every cycle, and flush twice so at least two non-seed
    # checkpoints exist — corrupting the newest must leave a fallback
    params["checkpoint_every"] = 1
    oracle = np.zeros(shape, dtype=np.int64)
    service = CubeService(
        RelativePrefixSumCube,
        oracle.copy(),
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=1, keep_checkpoints=2
        ),
    )
    try:
        half = max(1, params["groups"] // 2)
        _feed(service, oracle, rng, half, shape)
        service.flush()
        _feed(service, oracle, rng, params["groups"] - half, shape)
        service.flush()
    finally:
        service.abandon()
    checkpoints = sorted(Path(state_dir).glob("ckpt-*.npz"))
    assert len(checkpoints) >= 2, [p.name for p in checkpoints]
    target = checkpoints[-1]
    blob = bytearray(target.read_bytes())
    blob[int(rng.integers(len(blob)))] ^= 0xFF
    target.write_bytes(bytes(blob))
    params["corrupted_checkpoint"] = target.name
    state = recover_state(state_dir)
    assert np.array_equal(state.method.to_array(), oracle)


SCENARIOS = {
    "crash": _run_crash,
    "torn-tail": _run_torn_tail,
    "bad-checkpoint": _run_bad_checkpoint,
}

CLUSTER_SHAPES = [(16, 9), (12, 7, 5)]


def _cluster_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 1000])
    shape = CLUSTER_SHAPES[int(rng.integers(len(CLUSTER_SHAPES)))]
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "cluster",
        "shape": shape,
        "num_shards": int(rng.integers(2, min(4, shape[0]) + 1)),
        "replication_factor": int(rng.integers(2, 4)),
        "groups": int(rng.integers(10, 25)),
        "queries": int(rng.integers(10, 25)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_cluster(rng, params, state_dir):
    """One kill/partition/corrupt/heal round against an exact oracle."""
    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.int64)
    plan = FaultPlan(seed=params["seed"])
    cluster = CubeCluster(
        RelativePrefixSumCube,
        cube,
        data_dir=state_dir,
        num_shards=params["num_shards"],
        replication_factor=params["replication_factor"],
        checkpoint_every=params["checkpoint_every"],
        fault_plan=plan,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_s=30.0),
        seed=params["seed"],
    )
    runner = ClusterWorkloadRunner(cluster, cube.astype(np.float64))

    def random_group():
        group = []
        for _ in range(int(rng.integers(1, 6))):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            group.append((cell, float(rng.integers(-9, 10) or 1)))
        return group

    def random_queries(count):
        queries = []
        for _ in range(count):
            low, high = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                low.append(a)
                high.append(b)
            queries.append((tuple(low), tuple(high)))
        return queries

    def drive(queries, groups):
        result = runner.run(
            random_queries(queries), [random_group() for _ in range(groups)]
        )
        assert result.mismatches == 0, f"{result.mismatches} wrong answers"
        return result

    try:
        third_q = max(1, params["queries"] // 3)
        third_g = max(1, params["groups"] // 3)
        drive(third_q, third_g)

        # -- kill a primary: monitor must promote, no acked loss --------------
        victim_shard = int(rng.integers(params["num_shards"]))
        victim = f"s{victim_shard}.n0"
        params["killed_primary"] = victim
        cluster.kill_node(victim)
        for _ in range(3):  # enough probes to trip the breaker
            cluster.monitor.tick()
        assert cluster.stats()["metrics"]["failovers"].get(
            victim_shard
        ), "kill did not trigger a failover"
        drive(third_q, third_g)

        # -- partition a replica, corrupt another, heal and scrub -------------
        part_shard = int(rng.integers(params["num_shards"]))
        replicas = [
            n
            for n in cluster.replica_sets[part_shard].nodes
            if not n.is_primary and not n.dead
        ]
        if replicas:
            target = replicas[0]
            params["partitioned_replica"] = target.node_id
            plan.partition(target.node_id)
            drive(third_q, third_g)  # reads flow without the replica
            plan.heal(target.node_id)
        node = next(
            (
                n
                for n in cluster.nodes()
                if not n.is_primary and not n.dead and not n.lagging
            ),
            None,
        )
        if node is not None:
            params["corrupted_replica"] = node.node_id
            # drain pending groups first so the corrupted front buffer
            # is the one the scrubber digests (no swap hides it)
            cluster.flush()
            node.service._front.method.rp._rp.flat[0] += 997.0
            report = cluster.scrubber.scrub_once()
            assert (
                report["divergences"] >= 1
            ), f"scrubber missed the corruption: {report}"
        report = cluster.scrubber.scrub_once()
        assert report["divergences"] == 0, f"scrub did not converge: {report}"
        final = drive(third_q, 0)
        assert final.unavailable == 0, "healed cluster still unavailable"
        params["metrics"] = cluster.stats()["metrics"]
    finally:
        cluster.close()


ROUTER_SHAPES = [(24,), (12, 10), (6, 5, 4)]

#: reader pages stay at or below this many boxes; a rollup build at
#: granularity 2 queries every block of the cube in one batch, which is
#: always larger — so the build-failure fault below can target builds
#: without ever touching reader traffic
ROUTER_PAGE_BOXES = 4


class _BuildFaultBackend:
    """Backend wrapper whose *armed* state fails any batch bigger than a
    reader page. Rollup builds fetch all block totals in one oversized
    batch, so arming this injects a build failure while routed reads
    (small pages, or cache hits that never reach the backend) flow on.
    """

    def __init__(self, backend):
        self._backend = backend
        self.shape = backend.shape
        self.armed = False
        self.injected = 0

    def current_stamp(self):
        return self._backend.current_stamp()

    def query_many(self, lows, highs, deadline=None):
        if self.armed and len(lows) > ROUTER_PAGE_BOXES:
            self.injected += 1
            raise InjectedFault("injected rollup-build failure")
        return self._backend.query_many(lows, highs, deadline=deadline)

    def __getattr__(self, name):
        return getattr(self._backend, name)


def _box_sum(state, lo, hi):
    sl = tuple(slice(int(a), int(b) + 1) for a, b in zip(lo, hi))
    return float(state[sl].sum())


def _router_round_params(seed, round_index):
    rng = np.random.default_rng([seed, round_index, 2000])
    return rng, {
        "seed": seed,
        "round": round_index,
        "scenario": "router",
        "shape": ROUTER_SHAPES[int(rng.integers(len(ROUTER_SHAPES)))],
        "groups": int(rng.integers(30, 60)),
        "readers": int(rng.integers(2, 4)),
        "flush_every": int(rng.integers(3, 8)),
        "build_every": int(rng.integers(5, 12)),
        "checkpoint_every": int(rng.integers(1, 8)),
    }


def _run_router(rng, params, state_dir):
    """Writer churn + injected build failures + concurrent cached
    readers; every routed answer must match the oracle at its stamp."""
    shape = params["shape"]
    cube = rng.integers(0, 50, shape).astype(np.float64)

    # precompute the whole write stream and the exact per-version states
    groups, states = [], [cube.copy()]
    for _ in range(params["groups"]):
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(-9, 10) or 1),
            )
            for _ in range(int(rng.integers(1, 4)))
        ]
        groups.append(group)
        state = states[-1].copy()
        for cell, delta in group:
            state[cell] += delta
        states.append(state)

    pages = []
    for _ in range(3):
        lows, highs = [], []
        for _ in range(ROUTER_PAGE_BOXES):
            lo, hi = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                lo.append(a)
                hi.append(b)
            lows.append(lo)
            highs.append(hi)
        pages.append((np.array(lows), np.array(highs)))

    errors = []
    stop = threading.Event()
    service = CubeService(
        RelativePrefixSumCube,
        cube,
        durability=DurabilityPolicy(
            dir=state_dir, checkpoint_every=params["checkpoint_every"]
        ),
    )
    backend = _BuildFaultBackend(ServiceBackend(service))
    try:
        with QueryRouter(
            backend, auto_build=False, observe_every=1
        ) as router:

            def reader(page_index):
                page_lows, page_highs = pages[page_index % len(pages)]
                while not stop.is_set():
                    batch = router.route_many(page_lows, page_highs)
                    for lo, hi, value, stamp, tier in zip(
                        page_lows, page_highs, batch.values,
                        batch.stamps, batch.tiers,
                    ):
                        expect = _box_sum(states[stamp], lo, hi)
                        if value != expect:
                            errors.append({
                                "box": (tuple(lo), tuple(hi)),
                                "tier": tier, "stamp": int(stamp),
                                "value": float(value), "expect": expect,
                            })
                            stop.set()
                            return

            threads = [
                threading.Thread(target=reader, args=(i,))
                for i in range(params["readers"])
            ]
            for t in threads:
                t.start()
            fault_window = (
                params["groups"] // 3, 2 * params["groups"] // 3
            )
            degraded_builds = 0
            for i, group in enumerate(groups):
                if stop.is_set():
                    break
                router.submit_batch(group)
                if i % params["flush_every"] == 0:
                    router.flush()
                if i == fault_window[0]:
                    backend.armed = True
                if i == fault_window[1]:
                    backend.armed = False
                if i % params["build_every"] == 0:
                    built = router.build_rollup(2)
                    if built is None:
                        # degraded: the failed build must be counted and
                        # must not have broken the serving path
                        degraded_builds += 1
            backend.armed = False
            router.flush()
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive(), "reader thread hung"

            assert not errors, f"stale routed reads: {errors[:3]}"
            # the fault healed: a final build must succeed again
            assert router.build_rollup(2) is not None, (
                "rollup build still failing after the fault healed"
            )
            stats = router.stats()["router"]
            params["router_stats"] = {
                k: stats[k]
                for k in (
                    "queries_routed", "cache_hits", "batch_hits",
                    "rollup_hits", "backend_queries",
                    "rollup_builds", "rollup_build_failures",
                )
            }
            params["degraded_builds"] = degraded_builds
            assert backend.injected >= 1, (
                "round never armed a build failure"
            )
            assert degraded_builds == backend.injected, (
                f"{backend.injected} injected build faults but "
                f"{degraded_builds} degraded builds observed"
            )
            assert stats["rollup_build_failures"] >= degraded_builds
            assert stats["rollup_builds"] >= 1, "no rollup ever published"

            # quiesced differential: a fresh full-cube read through the
            # router equals the final oracle exactly
            final = router.route_many(
                [np.zeros(len(shape), dtype=int)],
                [[n - 1 for n in shape]],
            )
            expect = float(states[-1].sum())
            assert final.values[0] == expect, (
                f"final routed read {final.values[0]} != oracle {expect}"
            )
    finally:
        service.close()


def soak(seeds, time_budget, artifact_dir, mode="single"):
    start = time.monotonic()
    rounds = 0
    round_index = 0
    while time.monotonic() - start < time_budget:
        for seed in seeds:
            if mode == "cluster":
                rng, params = _cluster_round_params(seed, round_index)
                scenario = _run_cluster
            elif mode == "router":
                rng, params = _router_round_params(seed, round_index)
                scenario = _run_router
            else:
                rng, params = _round_params(seed, round_index)
                scenario = SCENARIOS[params["scenario"]]
            with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
                state_dir = Path(tmp) / "state"
                state_dir.mkdir()
                try:
                    scenario(rng, params, state_dir)
                except Exception:
                    artifact_dir.mkdir(parents=True, exist_ok=True)
                    dest = artifact_dir / f"seed{seed}-round{round_index}"
                    shutil.copytree(state_dir, dest / "state")
                    params["traceback"] = traceback.format_exc()
                    (dest / "round.json").write_text(
                        json.dumps(params, indent=2, default=str) + "\n"
                    )
                    print(f"FAIL {params['scenario']} seed={seed} "
                          f"round={round_index}; state kept in {dest}")
                    print(params["traceback"])
                    return 1
            rounds += 1
        round_index += 1
    elapsed = time.monotonic() - start
    print(f"chaos soak passed: {rounds} rounds, seeds {list(seeds)}, "
          f"{elapsed:.1f}s")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    parser.add_argument("--time-budget", type=float, default=60.0,
                        help="stop starting new rounds after this many seconds")
    parser.add_argument("--artifact-dir", type=Path,
                        default=Path("chaos-artifacts"),
                        help="failed rounds keep their WAL/checkpoint dir here")
    parser.add_argument("--mode", choices=("single", "cluster", "router"),
                        default="single",
                        help="single-service crash rounds (default), "
                        "replicated-cluster kill/partition/heal rounds, or "
                        "query-router stale-read/build-failure rounds")
    args = parser.parse_args(argv)
    return soak(args.seeds, args.time_budget, args.artifact_dir,
                mode=args.mode)


if __name__ == "__main__":
    sys.exit(main())

"""Concurrent-connection load generator for the ``repro.net`` tier.

Opens ``--connections`` independent :class:`~repro.net.CubeClient`
sockets against a :class:`~repro.net.CubeServer` (an external one via
``--host/--port``, or a self-served in-process one with
``--self-serve``), drives random box-query batches — optionally with a
concurrent write stream (``--write-every``) — and prints per-request
latency percentiles, throughput, and the rejection counts
(overloaded/quota/deadline) the admission machinery produced.

With ``--mode mixed`` a pool of ingest workers runs alongside the
readers: each generates synthetic fact rows, coalesces them into cell
deltas (the same shape of group the streaming pipeline submits), and
drives them through ``submit_batch`` under the same backpressure
etiquette — the firehose and the dashboards sharing one server.

Rejections are handled the way a well-behaved client should: back off
for the server's ``retry_after_s`` hint and retry, counting the event.
Any *other* error fails the run — the load generator doubles as a
smoke test that nothing under concurrency maps to ``internal``. The
report lists every unexpected error by class, and any occurrence makes
the exit status non-zero.

Usage::

    PYTHONPATH=src python tools/loadgen.py --self-serve \
        --connections 16 --duration 5 --write-every 0.02
    PYTHONPATH=src python tools/loadgen.py --self-serve --mode mixed \
        --connections 8 --ingest-workers 4 --duration 5
    PYTHONPATH=src python tools/loadgen.py --host 127.0.0.1 --port 7421 \
        --connections 64 --duration 10 --token dash=s3cret
"""

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro import CubeClient, CubeServer, CubeService, Deadline
from repro.core.rps import RelativePrefixSumCube
from repro.errors import (
    DeadlineExceededError,
    QuotaExceededError,
    ServiceOverloadedError,
)


def _random_page(rng, shape, batch):
    lows, highs = [], []
    for _ in range(batch):
        lo, hi = [], []
        for n in shape:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            lo.append(a)
            hi.append(b)
        lows.append(lo)
        highs.append(hi)
    return lows, highs


async def _reader(args, shape, stop, latencies, counts, worker_id):
    rng = np.random.default_rng([args.seed, worker_id])
    client = await CubeClient.connect(
        args.host, args.port, token=args.token_value
    )
    try:
        while not stop.is_set():
            lows, highs = _random_page(rng, shape, args.batch)
            deadline = (
                Deadline.after(args.deadline_ms / 1000.0)
                if args.deadline_ms else None
            )
            start = time.perf_counter()
            try:
                await client.range_sum_many(lows, highs, deadline=deadline)
            except ServiceOverloadedError as error:
                counts["overloaded"] += 1
                await asyncio.sleep(
                    getattr(error, "retry_after_s", 0.0) or 0.01
                )
                continue
            except QuotaExceededError as error:
                counts["quota"] += 1
                await asyncio.sleep(error.retry_after_s or 0.01)
                continue
            except DeadlineExceededError:
                counts["deadline"] += 1
                continue
            latencies.append(time.perf_counter() - start)
            counts["ok"] += 1
    finally:
        await client.close()


async def _writer(args, shape, stop, counts):
    rng = np.random.default_rng([args.seed, 10_000])
    client = await CubeClient.connect(
        args.host, args.port, token=args.token_value
    )
    try:
        since_flush = 0
        while not stop.is_set():
            group = [
                (
                    tuple(int(rng.integers(0, n)) for n in shape),
                    float(rng.integers(-9, 10) or 1),
                )
                for _ in range(4)
            ]
            try:
                await client.submit_batch(group)
                counts["writes"] += 1
                since_flush += 1
                if since_flush >= args.flush_every:
                    await client.flush(timeout=30.0)
                    since_flush = 0
            except (ServiceOverloadedError, QuotaExceededError) as error:
                counts["write_rejects"] += 1
                await asyncio.sleep(
                    getattr(error, "retry_after_s", 0.0) or 0.01
                )
            await asyncio.sleep(args.write_every)
    finally:
        await client.close()


async def _ingester(args, shape, stop, counts, worker_id):
    """One synthetic firehose: generate rows, coalesce, submit.

    Mirrors the streaming pipeline's write shape — many rows folded
    into one multi-cell group per submit — so a mixed run exercises
    the server against ingest-sized groups, not just single-cell
    dribbles.
    """
    rng = np.random.default_rng([args.seed, 20_000 + worker_id])
    client = await CubeClient.connect(
        args.host, args.port, token=args.token_value
    )
    try:
        since_flush = 0
        while not stop.is_set():
            sums = {}
            for _ in range(args.ingest_group):
                cell = tuple(int(rng.integers(0, n)) for n in shape)
                sums[cell] = sums.get(cell, 0.0) + float(
                    rng.integers(1, 10)
                )
            group = sorted(sums.items())
            try:
                await client.submit_batch(group)
                counts["ingest_rows"] += args.ingest_group
                counts["ingest_groups"] += 1
                since_flush += 1
                if since_flush >= args.flush_every:
                    await client.flush(timeout=30.0)
                    since_flush = 0
            except (ServiceOverloadedError, QuotaExceededError) as error:
                counts["ingest_rejects"] += 1
                await asyncio.sleep(
                    getattr(error, "retry_after_s", 0.0) or 0.01
                )
            await asyncio.sleep(0)
    finally:
        await client.close()


async def _run(args, shape):
    stop = asyncio.Event()
    latencies = []
    counts = {
        "ok": 0, "overloaded": 0, "quota": 0, "deadline": 0,
        "writes": 0, "write_rejects": 0,
        "ingest_rows": 0, "ingest_groups": 0, "ingest_rejects": 0,
    }
    tasks = [
        asyncio.ensure_future(
            _reader(args, shape, stop, latencies, counts, i)
        )
        for i in range(args.connections)
    ]
    if args.write_every:
        tasks.append(
            asyncio.ensure_future(_writer(args, shape, stop, counts))
        )
    if args.mode == "mixed":
        tasks.extend(
            asyncio.ensure_future(
                _ingester(args, shape, stop, counts, i)
            )
            for i in range(args.ingest_workers)
        )
    await asyncio.sleep(args.duration)
    stop.set()
    done = await asyncio.gather(*tasks, return_exceptions=True)
    failures = [d for d in done if isinstance(d, BaseException)]
    return latencies, counts, failures


def summarize(latencies, counts, duration, failures=()):
    lat = np.asarray(sorted(latencies))
    report = {"requests": counts["ok"], "rps": counts["ok"] / duration}
    report.update({k: v for k, v in counts.items() if k != "ok"})
    if counts["ingest_rows"]:
        report["ingest_rows_per_s"] = counts["ingest_rows"] / duration
    if failures:
        errors = {}
        for failure in failures:
            name = type(failure).__name__
            errors[name] = errors.get(name, 0) + 1
        report["worker_errors"] = errors
    if len(lat):
        report["latency_ms"] = {
            "p50": float(np.percentile(lat, 50) * 1e3),
            "p95": float(np.percentile(lat, 95) * 1e3),
            "p99": float(np.percentile(lat, 99) * 1e3),
            "max": float(lat[-1] * 1e3),
        }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7421)
    parser.add_argument(
        "--self-serve", action="store_true",
        help="stand up an in-process server instead of connecting out",
    )
    parser.add_argument(
        "--n", type=int, default=256,
        help="cube side for --self-serve (default 256)",
    )
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument(
        "--batch", type=int, default=8, help="boxes per query request"
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="per-request budget; 0 disables (default)",
    )
    parser.add_argument(
        "--write-every", type=float, default=0.02,
        help="seconds between write groups; 0 disables the writer",
    )
    parser.add_argument(
        "--flush-every", type=int, default=8,
        help="write groups per flush (default 8)",
    )
    parser.add_argument(
        "--mode", choices=("read", "mixed"), default="read",
        help="mixed adds a pool of synthetic-row ingest workers",
    )
    parser.add_argument(
        "--ingest-workers", type=int, default=4,
        help="ingest connections for --mode mixed (default 4)",
    )
    parser.add_argument(
        "--ingest-group", type=int, default=256,
        help="synthetic rows coalesced per submitted group (default 256)",
    )
    parser.add_argument(
        "--token", default=None, metavar="TOKEN",
        help="bearer token for authenticated servers",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission cap for --self-serve (default 64)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    args.token_value = args.token

    server = None
    service = None
    if args.self_serve:
        rng = np.random.default_rng(args.seed)
        cube = rng.integers(0, 100, (args.n, args.n)).astype(np.float64)
        service = CubeService(RelativePrefixSumCube, cube)
        server = CubeServer(
            service, port=0, max_inflight=args.max_inflight
        )
        args.host, args.port = server.start_background()
        shape = cube.shape
        print(f"self-serving a {args.n}x{args.n} cube on "
              f"{args.host}:{args.port}")
    else:
        shape = None

    try:
        if shape is None:
            async def probe():
                async with await CubeClient.connect(
                    args.host, args.port, token=args.token_value
                ) as client:
                    return (await client.ping())["shape"]

            shape = tuple(asyncio.run(probe()))
        start = time.monotonic()
        latencies, counts, failures = asyncio.run(_run(args, shape))
        elapsed = time.monotonic() - start
        report = summarize(latencies, counts, elapsed, failures)
        if server is not None:
            report["server"] = server.metrics.snapshot()
        print(json.dumps(report, indent=2, default=str))
        if failures:
            for failure in failures[:3]:
                print(f"worker failed: {failure!r}", file=sys.stderr)
            return 1
        return 0
    finally:
        if server is not None:
            server.stop_background()
        if service is not None:
            service.close()


if __name__ == "__main__":
    sys.exit(main())

"""Legacy setup shim.

Allows ``pip install -e . --no-use-pep517`` (and plain ``python setup.py
develop``) in offline environments that lack the ``wheel`` package needed
by PEP 660 editable installs. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

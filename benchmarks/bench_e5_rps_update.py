"""E5 — Figure 15: the constrained RPS update (16 cells vs PS's 64)."""

import numpy as np

from repro import paper
from repro.bench.experiments import e5_rps_update
from repro.core.rps import RelativePrefixSumCube


def test_e5_update_cost(benchmark):
    """Time RPS updates at the paper's example cell; cost must be 16."""

    def run():
        rps = RelativePrefixSumCube(paper.ARRAY_A, box_size=paper.BOX_SIZE)
        before = rps.counter.snapshot()
        rps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        return before.delta(rps.counter).cells_written, rps

    written, rps = benchmark(run)
    assert written == paper.UPDATE_EXAMPLE_RPS_TOTAL_CELLS
    assert np.array_equal(rps.rp.array(), paper.ARRAY_RP_AFTER_UPDATE)


def test_e5_experiment_table(benchmark):
    table = benchmark(e5_rps_update)
    assert all(table.column("match"))


def test_e5_update_throughput_large_cube(benchmark, uniform_256):
    """Sustained random updates on 256x256 at the optimal box size."""
    rps = RelativePrefixSumCube(uniform_256, box_size=16)
    rng = np.random.default_rng(3)
    cells = [tuple(int(x) for x in rng.integers(0, 256, size=2))
             for _ in range(100)]

    def run():
        for cell in cells:
            rps.apply_delta(cell, 1)

    benchmark(run)
    # the structure stays internally consistent under the hammering:
    # a full-range query must equal the reconstructed array's total
    assert rps.range_sum((0, 0), (255, 255)) == rps.to_array().sum()

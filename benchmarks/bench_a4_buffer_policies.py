"""Ablation A4 — buffer replacement policies and the disk latency model.

Section 4.4 assumes *a* cache between RP and the disk. This ablation
measures how the replacement policy (LRU / FIFO / CLOCK) changes hit
rates under the dashboard access pattern, and how the box-aligned layout
wins grow once seeks cost more than transfers (the spinning-disk
asymmetry the paper's era assumed).
"""

import numpy as np
import pytest

from repro.core.blocked import blocked_prefix_all_axes
from repro.storage.buffer import BufferPool
from repro.storage.disk import LatencyModel, SimulatedDisk
from repro.storage.layout import BoxAlignedLayout, RowMajorLayout
from repro.storage.paged_array import PagedNDArray
from repro.storage.paged_rps import PagedRPSCube
from repro.workloads import datagen, querygen

N, K = 128, 16


def _hotspot_cells(count, seed):
    """Cell addresses with dashboard-like locality (hot center region)."""
    rng = np.random.default_rng(seed)
    cells = []
    for _ in range(count):
        if rng.random() < 0.8:
            cells.append(tuple(int(x) for x in rng.integers(48, 80, size=2)))
        else:
            cells.append(tuple(int(x) for x in rng.integers(0, N, size=2)))
    return cells


@pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
def test_a4_policy_hit_rates(benchmark, policy):
    """Hit rate per policy under a hot-region point-access stream."""
    benchmark.group = "buffer-policy"
    cube = datagen.uniform_cube((N, N), seed=61).astype(np.float64)
    layout = BoxAlignedLayout((N, N), K)
    cells = _hotspot_cells(2000, seed=62)

    def run():
        paged = PagedNDArray.from_array(cube, layout, buffer_capacity=8)
        paged.pool = BufferPool(paged.disk, 8, policy=policy)
        for cell in cells:
            paged.get(cell)
        return paged.pool.stats.hit_rate

    hit_rate = benchmark(run)
    # the hot region covers 4 boxes; with 8 frames every policy should
    # keep it mostly resident
    assert hit_rate > 0.5


def test_a4_lru_at_least_fifo_on_hot_traffic(benchmark):
    """LRU's recency tracking should not lose to FIFO here."""
    cube = datagen.uniform_cube((N, N), seed=61).astype(np.float64)
    layout = BoxAlignedLayout((N, N), K)
    cells = _hotspot_cells(2000, seed=63)

    def run():
        rates = {}
        for policy in ("lru", "fifo"):
            paged = PagedNDArray.from_array(cube, layout, buffer_capacity=6)
            paged.pool = BufferPool(paged.disk, 6, policy=policy)
            for cell in cells:
                paged.get(cell)
            rates[policy] = paged.pool.stats.hit_rate
        return rates

    rates = benchmark(run)
    assert rates["lru"] >= rates["fifo"] - 0.02


def test_a4_latency_model_amplifies_layout_gap(benchmark):
    """With seek >> transfer, the box-aligned layout's fewer random
    pages per update turn into a larger modeled-time win."""
    cube = datagen.uniform_cube((N, N), seed=64)
    rng = np.random.default_rng(65)
    cells = [tuple(int(x) for x in rng.integers(0, N, size=2))
             for _ in range(40)]

    def run():
        elapsed = {}
        for label, layout in (
            ("aligned", BoxAlignedLayout((N, N), K)),
            ("row_major", RowMajorLayout((N, N), K * K)),
        ):
            paged = PagedRPSCube(
                cube, box_size=K, layout=layout, buffer_capacity=4
            )
            paged.rp_pages.disk.latency = LatencyModel(seek=10.0, transfer=1.0)
            paged.rp_pages.pool.drop()
            paged.reset_io_stats()
            for cell in cells:
                paged.apply_delta(cell, 1)
                paged.flush()
            elapsed[label] = paged.rp_pages.disk.stats.elapsed
        return elapsed

    elapsed = benchmark(run)
    assert elapsed["aligned"] < elapsed["row_major"] / 2

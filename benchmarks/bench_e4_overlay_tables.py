"""E4 — Figures 5-13: regenerate the overlay and RP tables."""

import numpy as np

from repro import paper
from repro.bench.experiments import e4_overlay_tables
from repro.core.overlay import Overlay
from repro.core.rp import RelativePrefixArray
from repro.core.rps import RelativePrefixSumCube


def test_e4_build_overlay(benchmark):
    """Time overlay construction on the paper's cube; verify anchors."""
    overlay = benchmark(Overlay, paper.ARRAY_A, paper.BOX_SIZE)
    assert np.array_equal(
        overlay.anchors_array().astype(np.int64), paper.OVERLAY_ANCHORS
    )


def test_e4_build_rp(benchmark):
    """Time RP construction; verify Figure 10 exactly."""
    rp = benchmark(RelativePrefixArray, paper.ARRAY_A, paper.BOX_SIZE)
    assert np.array_equal(rp.array(), paper.ARRAY_RP)


def test_e4_experiment_table(benchmark):
    table = benchmark(e4_overlay_tables)
    assert all(table.column("matches"))


def test_e4_build_scales(benchmark, uniform_256):
    """Construction of the full RPS structure on a 256x256 cube."""
    cube = benchmark(RelativePrefixSumCube, uniform_256, 16)
    assert cube.total() == uniform_256.sum()

"""E3 — Figure 4: the prefix-sum update cascade (64 cells on 9x9)."""

import numpy as np

from repro import paper
from repro.baselines.prefix import PrefixSumCube
from repro.bench.experiments import e3_prefix_update


def test_e3_update_cascade_cost(benchmark):
    """Time PS updates at the paper's example cell; cost must be 64."""

    def run():
        ps = PrefixSumCube(paper.ARRAY_A)
        before = ps.counter.snapshot()
        ps.apply_delta(paper.UPDATE_EXAMPLE_CELL, 1)
        return before.delta(ps.counter).cells_written, ps

    written, ps = benchmark(run)
    assert written == paper.UPDATE_EXAMPLE_PS_CELLS
    assert np.array_equal(ps.prefix_array(), paper.ARRAY_P_AFTER_UPDATE)


def test_e3_experiment_table(benchmark):
    table = benchmark(e3_prefix_update)
    assert table.column("cells_written") == [64]


def test_e3_worst_case_update_large_cube(benchmark, uniform_256):
    """Worst-case PS update on 256x256 rewrites all 65536 cells."""
    ps = PrefixSumCube(uniform_256)

    def run():
        before = ps.counter.snapshot()
        ps.apply_delta((0, 0), 1)
        return before.delta(ps.counter).cells_written

    assert benchmark(run) == 256 * 256

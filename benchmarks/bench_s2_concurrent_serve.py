"""S2 — read throughput while a writer applies continuous batches.

The serving layer's claim is that readers never block on (or observe)
in-flight writes: the writer builds the next snapshot off-line and swaps
it in atomically. This benchmark measures batched-read throughput with
the write stream off and on, plus read-latency percentiles and writer
cycle stats, on an RPS-backed service.

Writes ``results/S2.json``. Run standalone
(``python benchmarks/bench_s2_concurrent_serve.py``) or via pytest.
"""

import json
import pathlib
import threading
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.serve import CubeService
from repro.workloads import datagen, querygen, updategen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (512, 512)
READ_BATCH = 256
WRITE_BATCH = 64


def _reader_loop(service, lows, highs, deadline, out):
    served = 0
    while time.perf_counter() < deadline:
        values, _ = service.query_many(lows, highs)
        served += len(values)
    out.append(served)


def _measure(service, lows, highs, readers, duration, writer_updates=None):
    """Read throughput over ``duration`` seconds; optional write stream."""
    stop_writer = threading.Event()

    def writer_loop():
        offset = 0
        while not stop_writer.is_set():
            batch = writer_updates[offset:offset + WRITE_BATCH]
            offset = (offset + WRITE_BATCH) % max(
                1, len(writer_updates) - WRITE_BATCH
            )
            service.submit_batch(batch)
            service.flush()

    writer = None
    if writer_updates is not None:
        writer = threading.Thread(target=writer_loop, daemon=True)
        writer.start()
    deadline = time.perf_counter() + duration
    counts = []
    threads = [
        threading.Thread(
            target=_reader_loop,
            args=(service, lows, highs, deadline, counts),
            daemon=True,
        )
        for _ in range(readers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if writer is not None:
        stop_writer.set()
        writer.join(timeout=30)
        service.flush()
    return sum(counts) / elapsed


def run_s2(shape=SHAPE, readers_sweep=(1, 2, 4), duration=1.0, seed=29):
    """Measure read-only vs read-during-write throughput."""
    cube = datagen.uniform_cube(shape, seed=seed)
    queries = list(querygen.random_ranges(shape, READ_BATCH, seed=seed))
    lows = np.array([q[0] for q in queries], dtype=np.intp)
    highs = np.array([q[1] for q in queries], dtype=np.intp)
    updates = list(updategen.random_updates(shape, 4096, seed=seed + 1))
    rows = []
    for readers in readers_sweep:
        for with_writer in (False, True):
            service = CubeService(RelativePrefixSumCube, cube)
            try:
                throughput = _measure(
                    service, lows, highs, readers, duration,
                    writer_updates=updates if with_writer else None,
                )
                stats = service.stats()
                if with_writer:
                    assert stats["groups_applied"] > 0, (
                        "writer never applied a batch"
                    )
                rows.append({
                    "readers": readers,
                    "writer_active": with_writer,
                    "reads_per_s": throughput,
                    "read_p50_ms": stats["read_latency"]["p50_s"] * 1e3,
                    "read_p95_ms": stats["read_latency"]["p95_s"] * 1e3,
                    "batches_applied": stats["batches_applied"],
                    "updates_applied": stats["updates_applied"],
                    "swap_wait_p95_ms": stats["swap_wait"]["p95_s"] * 1e3,
                })
            finally:
                service.close()
    return {
        "experiment": "S2",
        "title": "Concurrent serving: read throughput during batch writes",
        "shape": list(shape),
        "read_batch": READ_BATCH,
        "write_batch": WRITE_BATCH,
        "duration_s": duration,
        "seed": seed,
        "rows": rows,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "S2.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_s2_reads_survive_continuous_writes():
    """Readers keep being served while the writer streams batches, and
    the final state is exactly the initial cube plus every delta."""
    shape = (128, 128)
    cube = datagen.uniform_cube(shape, seed=5)
    queries = list(querygen.random_ranges(shape, 64, seed=6))
    lows = np.array([q[0] for q in queries], dtype=np.intp)
    highs = np.array([q[1] for q in queries], dtype=np.intp)
    updates = list(updategen.random_updates(shape, 512, seed=7))
    with CubeService(RelativePrefixSumCube, cube) as service:
        throughput = _measure(
            service, lows, highs, readers=2, duration=0.5,
            writer_updates=updates,
        )
        assert throughput > 0
        stats = service.stats()
        assert stats["batches_applied"] > 0
        # the writer's offsets are timing-dependent, so verify with the
        # structure's own deep self-check rather than an external oracle
        service.flush()
        service._front.method.verify_structures()
        assert stats["updates_submitted"] >= stats["updates_applied"]
    report = run_s2(shape=(256, 256), readers_sweep=(2,), duration=0.4)
    write_report(report)


def main():
    report = run_s2()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        writer = "writer on " if row["writer_active"] else "writer off"
        print(
            f"  readers={row['readers']}  {writer}  "
            f"{row['reads_per_s']:12.0f} queries/s  "
            f"p95={row['read_p95_ms']:.3f} ms  "
            f"batches={row['batches_applied']}"
        )


if __name__ == "__main__":
    main()

"""N1 — end-to-end serving latency over sockets under concurrency.

The in-process tiers answer a box query in microseconds; the question
this benchmark gates is what the *network* tier adds when it is
actually busy: **64 concurrent client connections** issuing batched
range-sum requests against a :class:`~repro.net.CubeServer` while a
writer streams update groups (with periodic flushes) through the same
server. That is the deployment shape the serving tier exists for — a
dashboard fleet reading through one endpoint that is simultaneously
ingesting.

Every response is verified against the per-version oracle at its own
stamp after the clock stops — a fast server returning stale snapshots
would fail before any latency is compared. The acceptance gate holds
end-to-end p99 under :data:`P99_GATE_MS` and requires every request to
have completed (no drops, no unexpected errors).

Writes ``results/N1.json`` next to T1/S1/S2/U1/R1. Run standalone
(``python benchmarks/bench_n1_net_serving.py``) or via pytest.
"""

import asyncio
import json
import pathlib
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.net import CubeClient, CubeServer
from repro.serve import CubeService

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (256, 256)
CONNECTIONS = 64
REQUESTS_PER_CONNECTION = 60
BOXES_PER_REQUEST = 4
WRITE_GROUPS = 120
WRITE_INTERVAL_S = 0.01
FLUSH_EVERY = 10

#: end-to-end p99 (connect excluded, verify excluded) must stay under
#: this many milliseconds with all 64 connections and the write stream
#: active — a generous bound on purpose: the gate is about regressions
#: (an event-loop stall, a lost wakeup, accidental serialization), not
#: about squeezing the container's scheduler
P99_GATE_MS = 250.0


def _pages(shape, seed, count, boxes):
    rng = np.random.default_rng(seed)
    pages = []
    for _ in range(count):
        lows, highs = [], []
        for _ in range(boxes):
            lo, hi = [], []
            for n in shape:
                a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
                lo.append(a)
                hi.append(b)
            lows.append(lo)
            highs.append(hi)
        pages.append((lows, highs))
    return pages


def _write_stream(shape, cube, seed, count):
    """The update groups and the exact cube state after each one."""
    rng = np.random.default_rng(seed)
    groups, states = [], [cube.copy()]
    for _ in range(count):
        group = [
            (
                tuple(int(rng.integers(0, n)) for n in shape),
                float(rng.integers(-9, 10) or 1),
            )
            for _ in range(4)
        ]
        groups.append(group)
        state = states[-1].copy()
        for cell, delta in group:
            state[cell] += delta
        states.append(state)
    return groups, states


def _box_sum(state, lo, hi):
    sl = tuple(slice(int(a), int(b) + 1) for a, b in zip(lo, hi))
    return float(state[sl].sum())


async def _reader(host, port, pages, latencies, answers, worker_id):
    client = await CubeClient.connect(host, port)
    try:
        for request_index, (lows, highs) in enumerate(pages):
            start = time.perf_counter()
            values, stamp = await client.range_sum_many(lows, highs)
            latencies.append(time.perf_counter() - start)
            answers.append((worker_id, request_index, values, stamp))
    finally:
        await client.close()


async def _writer(host, port, groups, done):
    client = await CubeClient.connect(host, port)
    try:
        for i, group in enumerate(groups):
            await client.submit_batch(group)
            if (i + 1) % FLUSH_EVERY == 0:
                await client.flush(timeout=30.0)
            await asyncio.sleep(WRITE_INTERVAL_S)
        await client.flush(timeout=30.0)
    finally:
        done.set()
        await client.close()


async def _drive(host, port, reader_pages, groups):
    latencies, answers = [], []
    done = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _reader(host, port, reader_pages[i], latencies, answers, i)
        )
        for i in range(len(reader_pages))
    ]
    tasks.append(asyncio.ensure_future(_writer(host, port, groups, done)))
    await asyncio.gather(*tasks)
    return latencies, answers


def run_n1(
    shape=SHAPE,
    connections=CONNECTIONS,
    requests=REQUESTS_PER_CONNECTION,
    seed=31,
):
    """Drive the concurrent socket workload; returns the N1 report."""
    rng = np.random.default_rng(seed)
    cube = rng.integers(0, 100, shape).astype(np.float64)
    groups, states = _write_stream(shape, cube, seed + 1, WRITE_GROUPS)
    reader_pages = [
        _pages(shape, [seed, worker], requests, BOXES_PER_REQUEST)
        for worker in range(connections)
    ]

    service = CubeService(RelativePrefixSumCube, cube)
    server = CubeServer(
        service, port=0, max_inflight=2 * connections, executor_workers=8
    )
    try:
        host, port = server.start_background()
        wall_start = time.perf_counter()
        latencies, answers = asyncio.run(
            _drive(host, port, reader_pages, groups)
        )
        wall = time.perf_counter() - wall_start
        net = server.metrics.snapshot()
    finally:
        server.stop_background()
        service.close()

    # clock stopped: now verify every answer against the oracle at its
    # own stamp — zero tolerance, any stale read fails the benchmark
    mismatches = 0
    versions_seen = set()
    for worker_id, request_index, values, stamp in answers:
        state = states[int(stamp)]
        versions_seen.add(int(stamp))
        lows, highs = reader_pages[worker_id][request_index]
        for lo, hi, value in zip(lows, highs, values):
            if value != _box_sum(state, lo, hi):
                mismatches += 1

    lat = np.asarray(sorted(latencies))
    expected = connections * requests
    return {
        "experiment": "N1",
        "title": "End-to-end net serving p99 under concurrent connections",
        "shape": list(shape),
        "connections": connections,
        "requests_per_connection": requests,
        "boxes_per_request": BOXES_PER_REQUEST,
        "write_groups": WRITE_GROUPS,
        "seed": seed,
        "p99_gate_ms": P99_GATE_MS,
        "rows": [
            {
                "config": "net_64conn_with_writes",
                "requests": len(latencies),
                "requests_expected": expected,
                "wall_seconds": wall,
                "requests_per_s": len(latencies) / wall,
                "latency_ms": {
                    "p50": float(np.percentile(lat, 50) * 1e3),
                    "p95": float(np.percentile(lat, 95) * 1e3),
                    "p99": float(np.percentile(lat, 99) * 1e3),
                    "max": float(lat[-1] * 1e3),
                },
                "mismatches": mismatches,
                "versions_observed": len(versions_seen),
                "server_errors": net["errors"],
                "overload_rejects": net["overload_rejects"],
                "inflight_peak": net["inflight_peak"],
            },
        ],
    }


def write_report(report, path=None):
    path = path or (RESULTS / "N1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_n1_net_serving_p99_within_gate():
    """Acceptance gate: all requests complete, every answer matches the
    per-version oracle at its stamp, the write stream actually churned
    versions mid-read, and end-to-end p99 stays under the gate."""
    report = run_n1()
    write_report(report)
    row = report["rows"][0]
    assert row["requests"] == row["requests_expected"], (
        f"dropped requests: {row['requests']}/{row['requests_expected']}"
    )
    assert row["mismatches"] == 0, (
        f"{row['mismatches']} stale answers under concurrent writes"
    )
    assert row["server_errors"] == 0, (
        f"{row['server_errors']} unexpected wire errors"
    )
    assert row["versions_observed"] > 1, (
        "write stream never advanced the served version — the benchmark "
        "did not actually race reads against writes"
    )
    assert row["latency_ms"]["p99"] <= P99_GATE_MS, (
        f"p99 {row['latency_ms']['p99']:.1f} ms exceeds the "
        f"{P99_GATE_MS:.0f} ms gate at {report['connections']} connections"
    )


def main():
    report = run_n1()
    path = write_report(report)
    print(f"wrote {path}")
    row = report["rows"][0]
    lat = row["latency_ms"]
    print(
        f"  {row['config']}: {row['requests']} requests in "
        f"{row['wall_seconds']:.2f}s ({row['requests_per_s']:.0f} req/s)\n"
        f"  p50 {lat['p50']:.2f} ms  p95 {lat['p95']:.2f} ms  "
        f"p99 {lat['p99']:.2f} ms  max {lat['max']:.2f} ms\n"
        f"  mismatches={row['mismatches']} "
        f"versions={row['versions_observed']} "
        f"overload_rejects={row['overload_rejects']}"
    )


if __name__ == "__main__":
    main()

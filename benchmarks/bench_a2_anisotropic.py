"""Ablation A2 — per-axis box sizes on anisotropic cubes.

The paper assumes one k on every dimension "without loss of generality";
on a cube whose dimensions differ widely (365 days x 50 age buckets), the
per-axis rule ``k_i = sqrt(n_i)`` beats any single uniform k on
worst-case update cost.
"""

import numpy as np
import pytest

from repro.core.rps import RelativePrefixSumCube, default_box_sizes
from repro.workloads import datagen, updategen

SHAPE = (365, 50)


@pytest.fixture(scope="module")
def cube():
    return datagen.uniform_cube(SHAPE, seed=41)


@pytest.mark.parametrize("label,box", [
    ("uniform-7", 7),
    ("uniform-19", 19),
    ("per-axis", default_box_sizes(SHAPE)),  # (19, 7)
])
def test_a2_update_cost_by_box_choice(benchmark, cube, label, box):
    """Worst-case update cost under each box-size policy."""
    benchmark.group = "anisotropic-update"
    rps = RelativePrefixSumCube(cube, box_size=box)
    worst = updategen.worst_case_cell(SHAPE, "rps")

    def run():
        rps.apply_delta(worst, 1)
        rps.apply_delta(worst, -1)

    benchmark(run)
    assert rps.total() == cube.sum()


def test_a2_per_axis_beats_uniform_on_cells(benchmark, cube):
    """Cell-count comparison: the per-axis rule's worst-case update cost
    is at most that of either uniform compromise."""
    worst = updategen.worst_case_cell(SHAPE, "rps")

    def run():
        costs = {}
        for label, box in (
            ("uniform_small", 7),
            ("uniform_large", 19),
            ("per_axis", default_box_sizes(SHAPE)),
        ):
            rps = RelativePrefixSumCube(cube, box_size=box)
            costs[label] = rps.update_cost_breakdown(worst)["total"]
        return costs

    costs = benchmark(run)
    assert costs["per_axis"] <= costs["uniform_small"]
    assert costs["per_axis"] <= costs["uniform_large"]


def test_a2_queries_remain_exact(benchmark, cube):
    """Correctness does not depend on the box-size choice."""
    rng = np.random.default_rng(3)
    queries = []
    for _ in range(50):
        low = tuple(int(rng.integers(0, n)) for n in SHAPE)
        high = tuple(int(rng.integers(l, n)) for l, n in zip(low, SHAPE))
        queries.append((low, high))
    per_axis = RelativePrefixSumCube(cube, box_size=default_box_sizes(SHAPE))

    def run():
        return [int(per_axis.range_sum(lo, hi)) for lo, hi in queries]

    answers = benchmark(run)
    expected = [
        int(cube[lo[0]:hi[0] + 1, lo[1]:hi[1] + 1].sum())
        for lo, hi in queries
    ]
    assert answers == expected

"""E2 — Figure 3: the 2^d-corner inclusion-exclusion identity."""

from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.bench.experiments import e2_region_sums
from repro.workloads import querygen


def test_e2_identity_check(benchmark):
    """Time the full identity sweep across d = 1..4; zero mismatches."""
    table = benchmark(e2_region_sums, trials=100)
    assert all(m == 0 for m in table.column("mismatches"))


def test_e2_corner_queries_2d(benchmark, uniform_256):
    """Time 2-D range sums answered purely via prefix corners."""
    ps = PrefixSumCube(uniform_256)
    queries = list(querygen.random_ranges(uniform_256.shape, 200, seed=1))
    naive = NaiveCube(uniform_256)
    expected = [naive.range_sum(lo, hi) for lo, hi in queries]

    def run():
        return [ps.range_sum(lo, hi) for lo, hi in queries]

    answers = benchmark(run)
    assert answers == expected

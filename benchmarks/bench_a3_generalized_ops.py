"""Ablation A3 — generalized operators (paper Section 2's claim).

Benchmarks the group-parameterized prefix/RPS structures against the core
SUM-specialized implementation: the claim is semantic generality at
comparable asymptotics, with a modest constant-factor overhead from the
operator indirection.
"""

import numpy as np
import pytest

from repro.aggregates.generalized import (
    GROUP_PRODUCT,
    GROUP_SUM,
    GROUP_XOR,
    GroupRelativePrefixCube,
)
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen

N = 64


@pytest.fixture(scope="module")
def cube():
    return datagen.uniform_cube((N, N), low=1, high=50, seed=51)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(5)
    out = []
    for _ in range(100):
        low = tuple(int(x) for x in rng.integers(0, N, size=2))
        high = tuple(int(rng.integers(l, N)) for l in low)
        out.append((low, high))
    return out


def test_a3_core_sum_queries(benchmark, cube, queries):
    benchmark.group = "generalized-query"
    rps = RelativePrefixSumCube(cube, box_size=8)

    def run():
        return sum(int(rps.range_sum(lo, hi)) for lo, hi in queries)

    benchmark(run)


@pytest.mark.parametrize("op", [GROUP_SUM, GROUP_XOR, GROUP_PRODUCT],
                         ids=lambda o: o.name)
def test_a3_group_queries(benchmark, cube, queries, op):
    benchmark.group = "generalized-query"
    source = cube if op is not GROUP_PRODUCT else np.ones((N, N)) * 1.001
    group = GroupRelativePrefixCube(source, op, box_size=8)

    def run():
        total = 0.0
        for lo, hi in queries:
            total += float(group.range_query(lo, hi))
        return total

    benchmark(run)


def test_a3_group_sum_matches_core(benchmark, cube, queries):
    """The SUM instance answers identically to the core implementation."""
    core = RelativePrefixSumCube(cube, box_size=8)
    group = GroupRelativePrefixCube(cube, GROUP_SUM, box_size=8)

    def run():
        return [
            (int(core.range_sum(lo, hi)), int(group.range_query(lo, hi)))
            for lo, hi in queries
        ]

    pairs = benchmark(run)
    assert all(a == b for a, b in pairs)


def test_a3_group_updates(benchmark, cube):
    """Constrained-cascade updates under XOR."""
    group = GroupRelativePrefixCube(cube, GROUP_XOR, box_size=8)
    rng = np.random.default_rng(6)
    cells = [tuple(int(x) for x in rng.integers(0, N, size=2))
             for _ in range(50)]

    def run():
        for cell in cells:
            group.combine_into(cell, np.int64(0b1010))
        for cell in cells:
            group.combine_into(cell, np.int64(0b1010))  # XOR self-inverse

    benchmark(run)
    oracle = cube.copy()
    total = 0
    for value in oracle.ravel():
        total ^= int(value)
    assert int(group.range_query((0, 0), (N - 1, N - 1))) == total

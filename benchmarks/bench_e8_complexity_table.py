"""E8 — Sections 2/5: the query x update cost product across methods."""

from repro.bench.experiments import e8_complexity_table


def test_e8_table_regeneration(benchmark):
    """Time the measured complexity table; verify the paper's ordering."""
    table = benchmark(e8_complexity_table, sizes=(16, 64), dims=(1, 2))
    products = {}
    for d, n, method, product in zip(
        table.column("d"), table.column("n"),
        table.column("method"), table.column("product"),
    ):
        products[(d, n, method)] = product
    # The paper's conclusion, instantiated: at every (d, n) the RPS
    # product undercuts both the naive and prefix-sum products once the
    # cube is non-trivial.
    for d in (1, 2):
        assert products[(d, 64, "rps")] < products[(d, 64, "naive")]
        assert products[(d, 64, "rps")] < products[(d, 64, "prefix_sum")]
    # The naive product equals the measured query volume (the interior
    # near-full range spans n-2 cells per axis) times its O(1) update.
    assert products[(2, 64, "naive")] == (64 - 2) ** 2


def test_e8_sublinear_product_growth(benchmark):
    """Quadrupling n multiplies the RPS product by ~2 (n^{d/2}, d=2),
    while the prefix-sum product grows ~16x."""
    table = benchmark(e8_complexity_table, sizes=(64, 256), dims=(2,))
    products = {}
    for n, method, product in zip(
        table.column("n"), table.column("method"), table.column("product")
    ):
        products[(n, method)] = product
    rps_growth = products[(256, "rps")] / products[(64, "rps")]
    ps_growth = products[(256, "prefix_sum")] / products[(64, "prefix_sum")]
    assert rps_growth < 8
    assert ps_growth == 16

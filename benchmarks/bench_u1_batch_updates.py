"""U1 — batch-update throughput: looped vs vectorized vs rebuild.

The paper's update cost is logical cells per cascade; the looped
incremental path pays a Python interpreter round-trip per update on top.
The vectorized engine replays a whole batch as whole-structure
scatter/cumsum passes with *identical* semantics: same resulting RP and
overlay arrays byte-for-byte, same counter ledger (totals and per
structure). This benchmark measures the wall-clock crossover between the
three ``apply_batch`` strategies across batch sizes m = 1e2..1e5 on a
1024x1024 cube, asserting the equivalence as it goes, and records which
strategy ``auto`` would pick at each m.

Writes ``results/U1.json`` next to S1/S2. Run standalone
(``python benchmarks/bench_u1_batch_updates.py``) or via pytest.
"""

import json
import pathlib
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (1024, 1024)
BOX_SIZE = 32  # the paper's optimal k = sqrt(n)
BATCH_SIZES = (100, 1_000, 10_000, 100_000)

#: Largest m the looped incremental path is asked to run (beyond this it
#: is minutes of interpreter round-trips; the vectorized and rebuild
#: paths still run the full sweep).
LOOPED_CAP = 10_000


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _structures_identical(a, b):
    """Byte-identical RP and overlay arrays between two RPS cubes."""
    if not np.array_equal(a.rp.array(), b.rp.array()):
        return False
    return all(
        np.array_equal(a.overlay.values_array(mask), b.overlay.values_array(mask))
        for mask in a.overlay.masks()
    )


def run_u1(shape=SHAPE, box_size=BOX_SIZE, batch_sizes=BATCH_SIZES,
           looped_cap=LOOPED_CAP, seed=29):
    """Measure the three strategies at every batch size; returns the report."""
    cube = datagen.uniform_cube(shape, seed=seed)
    rng = np.random.default_rng(seed)
    top = max(batch_sizes)
    idx_all = np.stack(
        [rng.integers(0, n, size=top) for n in shape], axis=1
    ).astype(np.intp)
    deltas_all = rng.integers(-9, 10, size=top).astype(np.int64)
    rows = []
    for m in batch_sizes:
        idx, deltas = idx_all[:m], deltas_all[:m]
        row = {"m": m}

        vectorized = RelativePrefixSumCube(cube, box_size=box_size)
        row["auto_strategy"] = vectorized.choose_batch_strategy(idx)
        before = vectorized.counter.snapshot()
        _, vec_seconds = _time(
            lambda: vectorized.apply_batch_array(
                idx, deltas, strategy="vectorized"
            )
        )
        vec_cost = before.delta(vectorized.counter)
        row["vectorized_s"] = vec_seconds
        row["updates_per_s"] = m / vec_seconds
        row["cells_written_vectorized"] = vec_cost.cells_written

        rebuilt = RelativePrefixSumCube(cube, box_size=box_size)
        _, rebuild_seconds = _time(
            lambda: rebuilt.apply_batch_array(idx, deltas, strategy="rebuild")
        )
        row["rebuild_s"] = rebuild_seconds
        row["values_equal_rebuild"] = bool(
            np.array_equal(vectorized.to_array(), rebuilt.to_array())
        )
        assert row["values_equal_rebuild"], m

        if m <= looped_cap:
            looped = RelativePrefixSumCube(cube, box_size=box_size)
            before = looped.counter.snapshot()
            _, looped_seconds = _time(
                lambda: looped.apply_batch_array(
                    idx, deltas, strategy="incremental"
                )
            )
            looped_cost = before.delta(looped.counter)
            row["looped_s"] = looped_seconds
            row["speedup_vs_looped"] = looped_seconds / vec_seconds
            row["cells_written_looped"] = looped_cost.cells_written
            row["structures_identical"] = _structures_identical(
                looped, vectorized
            )
            row["ledger_equal"] = (
                looped_cost.cells_written == vec_cost.cells_written
                and looped_cost.cells_read == vec_cost.cells_read
                and looped.counter.by_structure
                == vectorized.counter.by_structure
            )
            assert row["structures_identical"], m
            assert row["ledger_equal"], m
        rows.append(row)
    return {
        "experiment": "U1",
        "title": "Batch-update throughput: looped vs vectorized vs rebuild",
        "shape": list(shape),
        "box_size": box_size,
        "seed": seed,
        "rows": rows,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "U1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_u1_vectorized_speedup_and_exact_parity():
    """Acceptance gate: the vectorized engine beats the looped path at
    m=1,000, is >= 5x faster at m=10,000 on 1024x1024, and is
    indistinguishable from it — byte-identical structures, identical
    counter ledgers — wherever both run."""
    report = run_u1()
    write_report(report)
    by_m = {r["m"]: r for r in report["rows"]}
    assert by_m[1_000]["vectorized_s"] < by_m[1_000]["looped_s"], (
        "vectorized must already win at m=1,000"
    )
    gate = by_m[10_000]
    assert gate["structures_identical"] and gate["ledger_equal"], gate
    assert gate["speedup_vs_looped"] >= 5.0, (
        f"vectorized path only {gate['speedup_vs_looped']:.1f}x faster "
        f"at m=10,000"
    )
    # the deep self-check on the structures the gate batch produced
    cube = datagen.uniform_cube(SHAPE, seed=report["seed"])
    method = RelativePrefixSumCube(cube, box_size=BOX_SIZE)
    rng = np.random.default_rng(report["seed"])
    idx = np.stack(
        [rng.integers(0, n, size=10_000) for n in SHAPE], axis=1
    ).astype(np.intp)
    deltas = rng.integers(-9, 10, size=10_000).astype(np.int64)
    method.apply_batch_array(idx, deltas, strategy="vectorized")
    method.verify_structures()


def main():
    report = run_u1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        speedup = row.get("speedup_vs_looped")
        speedup_txt = f"{speedup:8.1f}x" if speedup else "       --"
        print(
            f"  m={row['m']:>6}  vec={row['vectorized_s']*1e3:8.2f} ms  "
            f"rebuild={row['rebuild_s']*1e3:8.2f} ms  "
            f"speedup={speedup_txt}  auto={row['auto_strategy']}"
        )


if __name__ == "__main__":
    main()

"""T1 — adaptive router speedup: hot repeated reads vs uncached RPS.

A dashboard keeps asking the same page of box queries between writes.
The :class:`~repro.routing.QueryRouter` answers a repeated page from its
snapshot-versioned result cache (one memo lookup for the whole batch)
instead of re-running the RPS kernel, and answers *grid-aligned* boxes —
including never-seen ones — from a coarse pre-aggregated rollup. This
benchmark drives the S1 workload shape (1024x1024 cube, batched box
queries) three ways and times each:

* **direct**: ``CubeService.query_many`` for every repetition — the
  uncached RPS baseline;
* **routed hot**: the same repeated page through the router — first
  repetition misses and fills the cache, the rest hit;
* **routed rollup**: fresh (unrepeated) grid-aligned pages through the
  router with a pre-built rollup — every box served from the coarse
  prefix table without touching the RPS kernel.

The acceptance gate holds the routed hot path to **>= 5x** the direct
RPS throughput on the repeated page, with the cache hit rate reported
(and asserted high — a router that "wins" by answering from the wrong
tier is a broken router). Every routed value is checked bit-for-bit
against the direct answers first; a fast wrong cache would fail before
any timing is compared.

Writes ``results/T1.json`` next to S1/S2/U1/R1. Run standalone
(``python benchmarks/bench_t1_router.py``) or via pytest.
"""

import json
import pathlib
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.routing import QueryRouter
from repro.serve import CubeService
from repro.workloads import datagen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (1024, 1024)
BOX_SIZE = 32
Q = 2_000
REPEATS = 20
ROLLUP_GRANULARITY = 64

#: Repeats per timed configuration; the reported time is the median.
TIMING_REPEATS = 3

#: The routed hot path must beat direct RPS by at least this factor.
MIN_SPEEDUP = 5.0

#: ...and must actually be winning from the cache tier, not by accident.
MIN_HIT_RATE = 0.9


def _hot_page(shape, q, seed):
    """One dashboard page: ``q`` random boxes, reissued verbatim."""
    rng = np.random.default_rng(seed)
    lows = np.stack([rng.integers(0, n, size=q) for n in shape], axis=1)
    spans = np.stack(
        [rng.integers(1, n // 4, size=q) for n in shape], axis=1
    )
    highs = np.minimum(lows + spans, np.asarray(shape) - 1)
    return lows, highs


def _aligned_pages(shape, q, granularity, repeats, seed):
    """``repeats`` distinct pages of grid-aligned boxes (never reissued
    — only the rollup tier can win these)."""
    rng = np.random.default_rng(seed)
    blocks = np.asarray([n // granularity for n in shape])
    pages = []
    for _ in range(repeats):
        blo = np.stack(
            [rng.integers(0, b, size=q) for b in blocks], axis=1
        )
        span = np.stack(
            [rng.integers(1, b, size=q) for b in blocks], axis=1
        )
        bhi = np.minimum(blo + span, blocks)
        pages.append((blo * granularity, bhi * granularity - 1))
    return pages


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _time_direct(service, pages):
    start = time.perf_counter()
    for lows, highs in pages:
        service.query_many(lows, highs)
    return time.perf_counter() - start


def _time_routed(router, pages):
    start = time.perf_counter()
    for lows, highs in pages:
        router.range_sum_many(lows, highs)
    return time.perf_counter() - start


def run_t1(shape=SHAPE, q=Q, repeats=REPEATS, seed=21):
    """Time direct vs routed serving; returns the T1 report dict."""
    cube = datagen.uniform_cube(shape, seed=seed)
    hot = _hot_page(shape, q, seed)
    hot_pages = [hot] * repeats
    aligned = _aligned_pages(
        shape, q, ROLLUP_GRANULARITY, repeats, seed + 1
    )
    with CubeService(
        RelativePrefixSumCube, cube, method_kwargs={"box_size": BOX_SIZE}
    ) as service:
        expected_hot, _ = service.query_many(*hot)
        direct_s = _median(
            [_time_direct(service, hot_pages) for _ in range(TIMING_REPEATS)]
        )
        direct_aligned_s = _median(
            [_time_direct(service, aligned) for _ in range(TIMING_REPEATS)]
        )

        hot_samples, routed_values = [], None
        for _ in range(TIMING_REPEATS):
            with QueryRouter(service, auto_build=False) as router:
                hot_samples.append(_time_routed(router, hot_pages))
                routed_values = router.range_sum_many(*hot)
                router_stats = router.stats()["router"]
        routed_hot_s = _median(hot_samples)

        rollup_samples, rollup_stats = [], None
        rollup_exact = True
        for _ in range(TIMING_REPEATS):
            with QueryRouter(service, auto_build=False) as router:
                router.build_rollup(ROLLUP_GRANULARITY)
                rollup_samples.append(_time_routed(router, aligned))
                rollup_stats = router.stats()["router"]
            check_lows, check_highs = aligned[0]
            expect_aligned, _ = service.query_many(check_lows, check_highs)
            with QueryRouter(service, auto_build=False) as router:
                router.build_rollup(ROLLUP_GRANULARITY)
                got = router.range_sum_many(check_lows, check_highs)
            rollup_exact = rollup_exact and bool(
                np.array_equal(np.asarray(got), np.asarray(expect_aligned))
            )
        routed_rollup_s = _median(rollup_samples)

    values_equal = bool(
        np.array_equal(np.asarray(routed_values), np.asarray(expected_hot))
    )
    total_queries = q * repeats
    served = (
        router_stats["cache_hits"]
        + router_stats["batch_hits"]
        + router_stats["rollup_hits"]
        + router_stats["backend_queries"]
    )
    return {
        "experiment": "T1",
        "title": "Adaptive router speedup: hot repeated reads vs direct RPS",
        "shape": list(shape),
        "box_size": BOX_SIZE,
        "queries_per_page": q,
        "repeats": repeats,
        "rollup_granularity": ROLLUP_GRANULARITY,
        "seed": seed,
        "timing_repeats": TIMING_REPEATS,
        "min_speedup_gate": MIN_SPEEDUP,
        "min_hit_rate_gate": MIN_HIT_RATE,
        "rows": [
            {
                "config": "direct_rps",
                "seconds": direct_s,
                "queries_per_s": total_queries / direct_s,
            },
            {
                "config": "routed_hot",
                "seconds": routed_hot_s,
                "queries_per_s": total_queries / routed_hot_s,
                "speedup_vs_direct": direct_s / routed_hot_s,
                "cache_hit_rate": router_stats["cache_hit_rate"],
                "batch_hits": router_stats["batch_hits"],
                "cache_hits": router_stats["cache_hits"],
                "backend_queries": router_stats["backend_queries"],
                "queries_served": served,
                "values_equal": values_equal,
            },
            {
                "config": "routed_rollup",
                "seconds": routed_rollup_s,
                "queries_per_s": total_queries / routed_rollup_s,
                "speedup_vs_direct": direct_aligned_s / routed_rollup_s,
                "direct_aligned_s": direct_aligned_s,
                "rollup_hit_rate": rollup_stats["rollup_hit_rate"],
                "rollup_hits": rollup_stats["rollup_hits"],
                "backend_queries": rollup_stats["backend_queries"],
                "values_equal": rollup_exact,
            },
        ],
    }


def write_report(report, path=None):
    path = path or (RESULTS / "T1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_t1_router_speedup_within_gate():
    """Acceptance gate: the routed hot page answers bit-identically to
    direct RPS, >= 5x faster, with the win coming from the cache tier
    (hit rate >= 90%); the rollup tier is exact on aligned boxes."""
    report = run_t1()
    write_report(report)
    by_config = {row["config"]: row for row in report["rows"]}
    hot = by_config["routed_hot"]
    assert hot["values_equal"], "routed hot answers diverged from RPS"
    assert by_config["routed_rollup"]["values_equal"], (
        "rollup answers diverged from RPS on aligned boxes"
    )
    assert hot["cache_hit_rate"] >= MIN_HIT_RATE, (
        f"cache hit rate {hot['cache_hit_rate']:.3f} below "
        f"{MIN_HIT_RATE} — the router is not winning from the cache"
    )
    assert hot["speedup_vs_direct"] >= MIN_SPEEDUP, (
        f"routed hot page is only {hot['speedup_vs_direct']:.2f}x direct "
        f"RPS (gate: {MIN_SPEEDUP}x)"
    )


def main():
    report = run_t1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        speedup = row.get("speedup_vs_direct")
        rate = row.get("cache_hit_rate", row.get("rollup_hit_rate"))
        print(
            f"  {row['config']:>14}  {row['seconds']*1e3:9.2f} ms  "
            f"{row['queries_per_s']:>12.0f} q/s"
            + (f"  {speedup:6.2f}x" if speedup is not None else "")
            + (f"  hit_rate={rate:.3f}" if rate is not None else "")
        )


if __name__ == "__main__":
    main()

"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index). Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks assert the reproduction facts (exact table matches, cost
shapes) in addition to timing the regeneration, so a passing benchmark
run doubles as a reproduction check.
"""

import numpy as np
import pytest

from repro.workloads import datagen


@pytest.fixture(scope="session")
def uniform_256():
    """A 256x256 uniform cube shared across benchmarks."""
    return datagen.uniform_cube((256, 256), seed=7)


@pytest.fixture(scope="session")
def uniform_64_3d():
    """A 64^3 uniform cube for the d=3 benchmarks."""
    return datagen.uniform_cube((64, 64, 64), seed=7)

"""E10 — wall-clock microbenchmarks of the four methods.

The per-method query/update latencies whose *ordering* must reflect the
paper's complexity table: naive queries slow / updates instant; prefix-sum
queries instant / updates slow; RPS both fast; Fenwick balanced.
"""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import querygen, updategen

METHODS = {
    "naive": NaiveCube,
    "prefix_sum": PrefixSumCube,
    "rps": RelativePrefixSumCube,
    "fenwick": FenwickCube,
}


@pytest.fixture(scope="module")
def queries():
    return list(querygen.random_ranges((256, 256), 100, seed=21))


@pytest.fixture(scope="module")
def updates():
    return list(updategen.random_updates((256, 256), 100, seed=22))


@pytest.mark.parametrize("name", sorted(METHODS))
def test_e10_query_latency(benchmark, uniform_256, queries, name):
    """100 random range queries per round, per method."""
    method = METHODS[name](uniform_256)
    benchmark.group = "query-256x256"

    def run():
        return sum(int(method.range_sum(lo, hi)) for lo, hi in queries)

    total = benchmark(run)
    naive = NaiveCube(uniform_256)
    assert total == sum(int(naive.range_sum(lo, hi)) for lo, hi in queries)


@pytest.mark.parametrize("name", sorted(METHODS))
def test_e10_update_latency(benchmark, uniform_256, updates, name):
    """100 random point updates per round, per method (net zero delta)."""
    method = METHODS[name](uniform_256)
    benchmark.group = "update-256x256"

    def run():
        for cell, delta in updates:
            method.apply_delta(cell, delta)
        for cell, delta in updates:
            method.apply_delta(cell, -delta)  # restore for the next round

    benchmark(run)
    assert method.total() == uniform_256.sum()


@pytest.mark.parametrize("name", ["prefix_sum", "rps", "fenwick"])
def test_e10_query_latency_3d(benchmark, uniform_64_3d, name):
    """Constant-time methods on a 64^3 cube (naive omitted: too slow)."""
    method = METHODS[name](uniform_64_3d)
    benchmark.group = "query-64^3"
    queries = list(querygen.random_ranges((64, 64, 64), 50, seed=23))

    def run():
        return sum(int(method.range_sum(lo, hi)) for lo, hi in queries)

    benchmark(run)

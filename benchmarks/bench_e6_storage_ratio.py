"""E6 — Figure 16: overlay storage as a percentage of the RP region."""

import pytest

from repro.bench.experiments import e6_storage_ratio
from repro.core.overlay import Overlay
from repro.metrics import complexity
from repro.workloads import datagen


def test_e6_table_regeneration(benchmark):
    """Time the Figure 16 grid; verify the paper's quoted data point."""
    table = benchmark(e6_storage_ratio)
    pairs = dict(
        zip(
            zip(table.column("d"), table.column("k")),
            table.column("paper_percent"),
        )
    )
    assert pairs[(2, 100)] == pytest.approx(1.99)
    # the figure's qualitative shape: falls with k, rises with d
    assert pairs[(2, 2)] > pairs[(2, 100)]
    assert pairs[(5, 10)] > pairs[(2, 10)]


def test_e6_measured_overlay_matches_formula(benchmark):
    """Build a real overlay and compare its live cell count to the
    analytic k^d - (k-1)^d per box."""
    cube = datagen.uniform_cube((120, 120), seed=1)

    def run():
        overlay = Overlay(cube, 10)
        return overlay.storage_cells()

    cells = benchmark(run)
    boxes = (120 // 10) ** 2
    assert cells == boxes * complexity.overlay_cells_per_box(10, 2)

"""I1 — streaming ingestion: firehose throughput and zero-loss resume.

Two properties of :class:`~repro.ingest.IngestPipeline` are gated:

* **Throughput.** A clean run streams a uniform synthetic fact stream
  (with a sprinkle of poison rows) through encode -> coalesce -> submit
  into a WAL-backed :class:`~repro.serve.CubeService`. The sustained
  end-to-end rate — wall clock from first chunk to final fsync, rows
  counted whether applied or quarantined — must hold ``MIN_ROWS_PER_S``.
  The floor is set ~4x below the median observed rate on the reference
  container, so it trips on complexity regressions (per-row python in
  the group path, lost coalescing, fsync-per-row), not machine noise.
* **Zero-loss resume.** The same stream is run again with an injected
  coordinator crash mid-stream followed by a power loss of the service
  (``abandon``); the resumed pipeline must finish with the cube
  **bit-for-bit equal** to the clean run's, every poison row in the
  dead-letter file exactly once, and the checkpoint at the final
  offset. Resume cost is reported as the fraction of rows re-read.

Writes ``results/I1.json`` next to R1/S1/U1. Run standalone
(``python benchmarks/bench_i1_ingest.py``) or via pytest.
"""

import json
import pathlib
import tempfile
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.cube.encoders import IntegerEncoder
from repro.cube.schema import CubeSchema, Dimension
from repro.faults import FaultPlan, InjectedFault
from repro.ingest import (
    IngestPipeline,
    MemorySource,
    ServiceTarget,
    read_dead_letters,
)
from repro.serve import CubeService, DurabilityPolicy

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SIZE = 64
ROWS = 120_000
POISON_EVERY = 5_000
GROUP_ROWS = 8_192
CHUNK_ROWS = 4_096
REPEATS = 3

#: Acceptance floor on the clean-run end-to-end ingest rate.
MIN_ROWS_PER_S = 10_000

#: The resumed crash run replays at most this fraction of the stream
#: (the fenced checkpoint bounds re-reads to the uncommitted suffix).
MAX_REREAD_FRACTION = 0.75


def _schema():
    return CubeSchema(
        [
            Dimension("x", IntegerEncoder(0, SIZE - 1)),
            Dimension("y", IntegerEncoder(0, SIZE - 1)),
        ],
        "sales",
    )


def _records(seed):
    """The fact stream, pre-built off the clock; poison every Nth row."""
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, SIZE, size=ROWS)
    ys = rng.integers(0, SIZE, size=ROWS)
    sales = rng.integers(1, 100, size=ROWS).astype(float)
    records = [
        {"x": int(x), "y": int(y), "sales": float(s)}
        for x, y, s in zip(xs, ys, sales)
    ]
    poison = list(range(POISON_EVERY, len(records), POISON_EVERY))
    for offset in poison:
        records[offset] = {"x": 10 * SIZE, "y": 0, "sales": 1.0}
    return records, poison


def _oracle(records):
    cube = np.zeros((SIZE, SIZE))
    for r in records:
        if r["x"] < SIZE:
            cube[r["x"], r["y"]] += r["sales"]
    return cube


def _pipeline(records, svc, workdir, fault_plan=None):
    return IngestPipeline(
        MemorySource(records, chunk_rows=CHUNK_ROWS),
        _schema(),
        ServiceTarget(svc),
        checkpoint_path=workdir / "ck.json",
        deadletter_path=workdir / "dead.log",
        # pinned: adaptation would otherwise grow groups and make the
        # crash ordinal / reread fraction depend on queue-depth timing
        group_rows=GROUP_ROWS,
        min_group_rows=GROUP_ROWS,
        max_group_rows=GROUP_ROWS,
        fault_plan=fault_plan,
    )


def _run_clean(records, workdir):
    state = workdir / "svc"
    svc = CubeService(
        RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
        durability=DurabilityPolicy(dir=state),
    )
    try:
        start = time.perf_counter()
        with _pipeline(records, svc, workdir) as pipe:
            report = pipe.run()
        svc.flush()
        elapsed = time.perf_counter() - start
        array, _ = svc.snapshot_array()
    finally:
        svc.close()
    return elapsed, report, array


def _run_crash_resume(records, workdir, crash_after_groups):
    """Crash at the Nth submit, power-lose the service, resume."""
    state = workdir / "svc"
    svc = CubeService(
        RelativePrefixSumCube, np.zeros((SIZE, SIZE)),
        durability=DurabilityPolicy(dir=state),
    )
    plan = FaultPlan(ingest_crash_at={"submit": crash_after_groups})
    try:
        with _pipeline(records, svc, workdir, plan) as pipe:
            pipe.run()
        raise AssertionError("the injected crash never fired")
    except InjectedFault:
        pass
    svc.abandon()

    recovered = CubeService.recover(state, RelativePrefixSumCube)
    try:
        start = time.perf_counter()
        with _pipeline(records, recovered, workdir) as pipe:
            report = pipe.run()
        recovered.flush()
        elapsed = time.perf_counter() - start
        array, _ = recovered.snapshot_array()
    finally:
        recovered.close()
    dead = read_dead_letters(workdir / "dead.log")
    return elapsed, report, array, sorted(e["offset"] for e in dead)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_i1(seed=47):
    records, poison = _records(seed)
    expected = _oracle(records)

    clean_times, clean_report, clean_array = [], None, None
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory(prefix="i1-clean-") as tmp:
            elapsed, clean_report, clean_array = _run_clean(
                records, pathlib.Path(tmp)
            )
            clean_times.append(elapsed)
    clean_s = _median(clean_times)
    assert np.array_equal(clean_array, expected), "clean run diverged"

    crash_after = max(2, (ROWS // GROUP_ROWS) // 2)
    with tempfile.TemporaryDirectory(prefix="i1-crash-") as tmp:
        resume_s, resume_report, crash_array, dead_offsets = (
            _run_crash_resume(records, pathlib.Path(tmp), crash_after)
        )

    # rows_read on the resumed run counts exactly the replayed suffix
    reread_fraction = resume_report["rows_read"] / len(records)

    return {
        "experiment": "I1",
        "title": "Streaming ingestion throughput and zero-loss resume",
        "shape": [SIZE, SIZE],
        "rows": len(records),
        "poison_rows": len(poison),
        "group_rows": GROUP_ROWS,
        "chunk_rows": CHUNK_ROWS,
        "seed": seed,
        "repeats": REPEATS,
        "min_rows_per_s_gate": MIN_ROWS_PER_S,
        "max_reread_fraction_gate": MAX_REREAD_FRACTION,
        "clean": {
            "seconds": clean_s,
            "rows_per_s": len(records) / clean_s,
            "groups_submitted": clean_report["groups_submitted"],
            "cells_submitted": clean_report["cells_submitted"],
            "rows_quarantined": clean_report["rows_quarantined"],
        },
        "crash_resume": {
            "crash_after_groups": crash_after,
            "resume_seconds": resume_s,
            "rows_reread": resume_report["rows_read"],
            "reread_fraction": reread_fraction,
            "fence_skips": resume_report["fence_skips"],
            "resumes": resume_report["resumes"],
            "bit_for_bit": bool(np.array_equal(crash_array, expected)),
            "dead_letters": len(dead_offsets),
            "dead_letters_exactly_once": dead_offsets == poison,
            "final_offset": resume_report["offset"],
        },
    }


def write_report(report, path=None):
    path = path or (RESULTS / "I1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_i1_ingest_gate():
    """Acceptance gate: the firehose sustains the throughput floor, and
    a crash + power loss mid-stream resumes to the identical cube with
    exactly-once dead letters and a bounded replay suffix."""
    report = run_i1()
    write_report(report)
    clean = report["clean"]
    resume = report["crash_resume"]
    assert clean["rows_per_s"] >= MIN_ROWS_PER_S, (
        f"ingest rate {clean['rows_per_s']:.0f} rows/s is below the "
        f"{MIN_ROWS_PER_S} floor"
    )
    assert resume["bit_for_bit"], "resumed cube diverged from the oracle"
    assert resume["dead_letters_exactly_once"], (
        "dead-letter file is not exactly-once after the resume"
    )
    assert resume["final_offset"] == report["rows"]
    assert resume["reread_fraction"] <= MAX_REREAD_FRACTION, (
        f"resume replayed {resume['reread_fraction']:.0%} of the stream "
        f"(gate: {MAX_REREAD_FRACTION:.0%})"
    )


def main():
    report = run_i1()
    path = write_report(report)
    print(f"wrote {path}")
    clean = report["clean"]
    resume = report["crash_resume"]
    print(
        f"  clean: {clean['rows_per_s']:>10.0f} rows/s "
        f"({clean['seconds']*1e3:.0f} ms, "
        f"{clean['groups_submitted']} groups, "
        f"{clean['rows_quarantined']} quarantined)"
    )
    print(
        f"  crash+resume: bit_for_bit={resume['bit_for_bit']} "
        f"exactly_once={resume['dead_letters_exactly_once']} "
        f"reread={resume['reread_fraction']:.0%} "
        f"fence_skips={resume['fence_skips']}"
    )


if __name__ == "__main__":
    main()

"""R1 — durability overhead: WAL-on vs WAL-off submit throughput.

Durability's price is paid at the ack: with a
:class:`~repro.serve.wal.DurabilityPolicy`, every ``submit_batch`` call
encodes the group, CRC-checks it into the WAL, and (by default) fsyncs
before returning. This benchmark drives the U1-style uniform random
update workload through a :class:`~repro.serve.CubeService` three ways —
no durability, WAL with fsync-per-group (the strict "acked means
durable" reading), and WAL without fsync — and measures each twice:

* **serialized**: submit one group, ``flush()``, repeat. One thread
  runs at a time, so the timing is deterministic and the WAL-on /
  WAL-off difference is exactly the durability work. This is what the
  acceptance gate uses.
* **pipelined**: submit every group back to back, then flush once.
  Reported for inspection only — the ack loop races the writer thread
  for the GIL (every fsync releases it into a numpy-busy writer), so
  its timing swings several-fold between runs with identical code.

The acceptance gate holds the strict configuration to **<= 2x** the
WAL-off serialized throughput at the paper-workload group size (1,000
updates per group): durability must stay in the same cost class as the
serving path it protects, not dominate it.

Writes ``results/R1.json`` next to S1/S2/U1. Run standalone
(``python benchmarks/bench_r1_wal_overhead.py``) or via pytest.
"""

import json
import pathlib
import tempfile
import time

import numpy as np

from repro.core.rps import RelativePrefixSumCube
from repro.serve import CubeService, DurabilityPolicy
from repro.workloads import datagen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (256, 256)
BOX_SIZE = 16
GROUPS = 48
UPDATES_PER_GROUP = 1_000

#: Repeats per configuration; the reported time is the median run.
REPEATS = 3

#: Strict-durability serialized throughput must stay within this factor
#: of the WAL-off path (the R1 acceptance gate).
MAX_OVERHEAD = 2.0


def _workload(shape, groups, per_group, seed):
    """U1-style uniform random cell deltas, pre-built off the clock."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(groups):
        idx = np.stack(
            [rng.integers(0, n, size=per_group) for n in shape], axis=1
        )
        deltas = rng.integers(-9, 10, size=per_group)
        batches.append(
            [
                (tuple(int(c) for c in cell), int(delta))
                for cell, delta in zip(idx, deltas)
            ]
        )
    return batches


def _service(cube, durability):
    return CubeService(
        RelativePrefixSumCube,
        cube,
        method_kwargs={"box_size": BOX_SIZE},
        durability=durability,
    )


def _run_serialized(cube, batches, durability):
    """Submit-then-flush per group: deterministic round-trip seconds."""
    service = _service(cube, durability)
    try:
        start = time.perf_counter()
        for group in batches:
            service.submit_batch(group)
            service.flush()
        elapsed = time.perf_counter() - start
        stats = service.stats()
    finally:
        service.close()
    return elapsed, stats


def _run_pipelined(cube, batches, durability):
    """Submit everything, flush once: (submit_seconds, e2e_seconds)."""
    service = _service(cube, durability)
    try:
        start = time.perf_counter()
        for group in batches:
            service.submit_batch(group)
        submit_seconds = time.perf_counter() - start
        service.flush()
        e2e_seconds = time.perf_counter() - start
    finally:
        service.close()
    return submit_seconds, e2e_seconds


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def run_r1(shape=SHAPE, groups=GROUPS, per_group=UPDATES_PER_GROUP, seed=31):
    """Measure the three durability configurations; returns the report."""
    cube = datagen.uniform_cube(shape, seed=seed)
    batches = _workload(shape, groups, per_group, seed)
    configs = (
        ("wal_off", lambda d: None),
        ("wal_fsync", lambda d: DurabilityPolicy(dir=d, checkpoint_every=0)),
        (
            "wal_nofsync",
            lambda d: DurabilityPolicy(dir=d, checkpoint_every=0, fsync=False),
        ),
    )
    rows = []
    for name, make_policy in configs:
        serialized, pipelined, stats = [], [], None
        for _ in range(REPEATS):
            with tempfile.TemporaryDirectory(prefix=f"r1-{name}-") as tmp:
                elapsed, stats = _run_serialized(
                    cube, batches, make_policy(pathlib.Path(tmp))
                )
                serialized.append(elapsed)
            with tempfile.TemporaryDirectory(prefix=f"r1-{name}-") as tmp:
                pipelined.append(
                    _run_pipelined(
                        cube, batches, make_policy(pathlib.Path(tmp))
                    )
                )
        serialized_s = _median(serialized)
        submit_s = _median([run[0] for run in pipelined])
        e2e_s = _median([run[1] for run in pipelined])
        rows.append(
            {
                "config": name,
                "groups": groups,
                "updates_per_group": per_group,
                "serialized_s": serialized_s,
                "serialized_groups_per_s": groups / serialized_s,
                "pipelined_submit_s": submit_s,
                "pipelined_e2e_s": e2e_s,
                "pipelined_acks_per_s": groups / submit_s,
                "wal_appends": stats["wal_appends"],
                "wal_fsyncs": stats["wal_fsyncs"],
                "wal_bytes": stats["wal_bytes"],
            }
        )
    baseline = rows[0]
    for row in rows:
        row["serialized_overhead_vs_wal_off"] = (
            row["serialized_s"] / baseline["serialized_s"]
        )
    return {
        "experiment": "R1",
        "title": "Durability overhead: WAL-on vs WAL-off submit throughput",
        "shape": list(shape),
        "box_size": BOX_SIZE,
        "seed": seed,
        "repeats": REPEATS,
        "max_overhead_gate": MAX_OVERHEAD,
        "rows": rows,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "R1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_r1_wal_overhead_within_gate():
    """Acceptance gate: fsync-per-group durability costs <= 2x the
    WAL-off serialized throughput on the U1 workload, and the WAL
    actually logged (and synced) every acknowledged group."""
    report = run_r1()
    write_report(report)
    by_config = {row["config"]: row for row in report["rows"]}
    strict = by_config["wal_fsync"]
    assert strict["wal_appends"] == GROUPS
    assert strict["wal_fsyncs"] == GROUPS
    assert by_config["wal_off"]["wal_appends"] == 0
    assert by_config["wal_nofsync"]["wal_fsyncs"] == 0
    assert strict["serialized_overhead_vs_wal_off"] <= MAX_OVERHEAD, (
        f"strict durability costs "
        f"{strict['serialized_overhead_vs_wal_off']:.2f}x the WAL-off "
        f"serialized path (gate: {MAX_OVERHEAD}x)"
    )


def main():
    report = run_r1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        print(
            f"  {row['config']:>11}  "
            f"serialized={row['serialized_s']*1e3:8.2f} ms "
            f"({row['serialized_overhead_vs_wal_off']:4.2f}x)  "
            f"pipelined submit={row['pipelined_submit_s']*1e3:8.2f} ms  "
            f"fsyncs={row['wal_fsyncs']}"
        )


if __name__ == "__main__":
    main()

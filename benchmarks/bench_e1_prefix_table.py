"""E1 — Figure 2: regenerate the prefix-sum array P of the example cube."""

import numpy as np

from repro import paper
from repro.baselines.prefix import build_prefix_array
from repro.bench.experiments import e1_prefix_table


def test_e1_build_prefix_array(benchmark):
    """Time the P-array build; assert it matches Figure 2 cell-for-cell."""
    result = benchmark(build_prefix_array, paper.ARRAY_A)
    assert np.array_equal(result, paper.ARRAY_P)


def test_e1_full_table_regeneration(benchmark):
    """Time the full E1 experiment (build + row-by-row comparison)."""
    table = benchmark(e1_prefix_table)
    assert all(table.column("match"))

"""E7 — Section 4.3: update cost versus overlay box size; optimum at sqrt(n)."""

import math

from repro.bench.experiments import e7_box_size_sweep
from repro.core.rps import RelativePrefixSumCube
from repro.metrics import complexity
from repro.workloads import updategen


def test_e7_sweep(benchmark):
    """Time the full k-sweep; the measured minimum must sit near sqrt(n)."""
    n = 256
    table = benchmark(e7_box_size_sweep, n=n, d=2)
    ks = table.column("k")
    measured = table.column("measured_worst")
    best_k = ks[measured.index(min(measured))]
    assert abs(best_k - math.sqrt(n)) <= 8


def test_e7_updates_at_optimal_k(benchmark, uniform_256):
    """Worst-case update at the paper's optimal k = sqrt(n) = 16."""
    rps = RelativePrefixSumCube(uniform_256, box_size=16)
    worst = updategen.worst_case_cell(uniform_256.shape, "rps")

    def run():
        rps.apply_delta(worst, 1)
        rps.apply_delta(worst, -1)

    benchmark(run)
    cost = rps.update_cost_breakdown(worst)["total"]
    assert cost <= complexity.rps_update_cost_bound(256, 2, 16)


def test_e7_updates_at_bad_k(benchmark, uniform_256):
    """The same update with a deliberately bad box size costs far more
    cells — the other side of the Section 4.3 trade-off."""
    rps = RelativePrefixSumCube(uniform_256, box_size=2)
    worst = updategen.worst_case_cell(uniform_256.shape, "rps")

    def run():
        rps.apply_delta(worst, 1)
        rps.apply_delta(worst, -1)

    benchmark(run)
    bad_cost = rps.update_cost_breakdown(worst)["total"]
    good_cost = RelativePrefixSumCube(
        uniform_256, box_size=16
    ).update_cost_breakdown(worst)["total"]
    assert bad_cost > 5 * good_cost

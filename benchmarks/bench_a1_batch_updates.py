"""Ablation A1 — batch update strategies (DESIGN.md design-choice list).

The paper's motivating workload is periodic bulk loads ("new information
may arrive on a daily basis"). This ablation measures the crossover
between per-update cascades and a full rebuild for the RPS cube, and the
one-pass batch path of the prefix-sum cube.
"""

import numpy as np
import pytest

from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen, updategen

N = 128


@pytest.fixture(scope="module")
def cube():
    return datagen.uniform_cube((N, N), seed=31)


@pytest.mark.parametrize("batch_size", [8, 64, 512])
@pytest.mark.parametrize("strategy", ["incremental", "rebuild"])
def test_a1_rps_batch_strategies(benchmark, cube, batch_size, strategy):
    """Wall-clock of both strategies across batch sizes; small batches
    should favour incremental, large ones rebuild."""
    benchmark.group = f"rps-batch-{batch_size}"
    updates = list(
        updategen.random_updates((N, N), batch_size, seed=batch_size)
    )
    inverse = [(cell, -delta) for cell, delta in updates]
    rps = RelativePrefixSumCube(cube, box_size=11)  # sqrt(128) ~ 11

    def run():
        rps.apply_batch(list(updates), strategy=strategy)
        rps.apply_batch(list(inverse), strategy=strategy)

    benchmark(run)
    assert rps.total() == cube.sum()


def test_a1_auto_crossover_cell_costs(benchmark, cube):
    """The auto strategy's cell cost never exceeds the better of the two
    fixed strategies (up to the estimation pass)."""

    def run():
        results = {}
        for batch_size in (4, 32, 256, 2048):
            updates = list(
                updategen.random_updates((N, N), batch_size, seed=7)
            )
            costs = {}
            for strategy in ("incremental", "rebuild", "auto"):
                rps = RelativePrefixSumCube(cube, box_size=11)
                before = rps.counter.snapshot()
                rps.apply_batch(list(updates), strategy=strategy)
                costs[strategy] = before.delta(rps.counter).cells_written
            results[batch_size] = costs
        return results

    results = benchmark(run)
    for batch_size, costs in results.items():
        best_fixed = min(costs["incremental"], costs["rebuild"])
        assert costs["auto"] <= best_fixed
    # the crossover exists: tiny batches favour incremental, huge rebuild
    assert results[4]["incremental"] < results[4]["rebuild"]
    assert results[2048]["rebuild"] < results[2048]["incremental"]


def test_a1_prefix_sum_daily_batch(benchmark, cube):
    """The PS one-pass batch vs replaying updates one by one."""
    updates = list(updategen.random_updates((N, N), 128, seed=9))
    inverse = [(cell, -delta) for cell, delta in updates]
    ps = PrefixSumCube(cube)

    def run():
        ps.apply_batch(list(updates))
        ps.apply_batch(list(inverse))

    benchmark(run)
    sequential = PrefixSumCube(cube)
    for cell, delta in updates:
        sequential.apply_delta(cell, delta)
    batched = PrefixSumCube(cube)
    batched.apply_batch(list(updates))
    assert batched.counter.cells_written < sequential.counter.cells_written
    assert np.array_equal(batched.prefix_array(), sequential.prefix_array())

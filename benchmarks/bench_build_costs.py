"""Construction-cost benchmarks: building each structure from a cube.

Not a paper artifact (the paper treats precomputation as given) but a
figure downstream users need: what one rebuild costs, which is also the
unit the A1 batch-strategy crossover is expressed in.
"""

import numpy as np
import pytest

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.baselines.sparse import SparseNaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.extensions.hierarchical import HierarchicalRPSCube
from repro.workloads import datagen

BUILDERS = {
    "naive": NaiveCube,
    "prefix_sum": PrefixSumCube,
    "rps": RelativePrefixSumCube,
    "fenwick": FenwickCube,
    "sparse_naive": SparseNaiveCube,
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_build_256(benchmark, uniform_256, name):
    """Build each structure from the shared 256x256 cube."""
    benchmark.group = "build-256x256"
    cube = benchmark(BUILDERS[name], uniform_256)
    assert cube.total() == uniform_256.sum()


def test_build_hierarchical_256(benchmark, uniform_256):
    benchmark.group = "build-256x256"
    cube = benchmark(
        lambda a: HierarchicalRPSCube(a, levels=2), uniform_256
    )
    assert cube.total() == uniform_256.sum()


def test_build_rps_3d(benchmark, uniform_64_3d):
    """RPS construction on a 64^3 cube (2^d - 1 = 7 subset arrays)."""
    benchmark.group = "build-64^3"
    cube = benchmark(RelativePrefixSumCube, uniform_64_3d)
    assert cube.total() == uniform_64_3d.sum()


def test_build_scales_linearly(benchmark):
    """RPS build cost is O(n^d): 4x the cells ~ 4x the time (roughly)."""
    import time

    def run():
        timings = {}
        for n in (128, 256, 512):
            data = datagen.uniform_cube((n, n), seed=1)
            start = time.perf_counter()
            RelativePrefixSumCube(data)
            timings[n] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=3, iterations=1)
    # growth should be polynomial ~n^2, certainly below n^3
    assert timings[512] < timings[128] * 64

"""C1 — cluster serving: sharded fan-out overhead and hedged tail rescue.

The cluster layer buys redundancy (replicas, failover, scrubbing) with
an executor hop per shard read. This benchmark prices that hop and
verifies the tail-latency machinery actually works:

* **fan-out overhead**: the same batched range-sum workload runs against
  a bare :class:`~repro.serve.CubeService` and against clusters of
  1 and 2 shards (replication factor 2). The single-shard cluster vs
  bare-service ratio is the pure cluster tax — routing, the thread-pool
  hop, and metrics. The acceptance gate only guards against pathological
  regressions (an accidental flush or resync per query would blow it).
* **hedged tail rescue**: a seeded fault plan injects a 250 ms latency
  spike into the primary's read path on scheduled ordinals. With an
  aggressive :class:`~repro.cluster.HedgePolicy` the spiked reads must
  be *rescued* by the replica arm — completing well under the injected
  spike — and every answer must stay exact.

Writes ``results/C1.json`` next to R1/S1/S2/U1. Run standalone
(``python benchmarks/bench_c1_cluster.py``) or via pytest.
"""

import json
import pathlib
import tempfile
import time

import numpy as np

from repro.cluster import CubeCluster, HedgePolicy
from repro.core.rps import RelativePrefixSumCube
from repro.faults import FaultPlan
from repro.serve import CubeService
from repro.workloads import datagen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (128, 128)
BOX_SIZE = 16
QUERIES = 64          # boxes per batched call
ROUNDS = 12           # batched calls per timed run
REPEATS = 3

#: The single-shard cluster may cost at most this factor over the bare
#: service on the same workload (regression guard, not a target).
MAX_FANOUT_OVERHEAD = 50.0

#: Injected primary read spike and the ceiling a hedged read must beat.
SPIKE_S = 0.25
RESCUE_CEILING_S = 0.125  # floor of the jittered spike: a rescued read
                          # must come back before the spike possibly could


def _boxes(shape, count, seed):
    rng = np.random.default_rng(seed)
    lows, highs = [], []
    for _ in range(count):
        low, high = [], []
        for n in shape:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            low.append(a)
            high.append(b)
        lows.append(low)
        highs.append(high)
    return (
        np.asarray(lows, dtype=np.intp),
        np.asarray(highs, dtype=np.intp),
    )


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _time_service(cube, lows, highs):
    service = CubeService(
        RelativePrefixSumCube, cube, method_kwargs={"box_size": BOX_SIZE}
    )
    try:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            values = service.range_sum_many(lows, highs)
        elapsed = time.perf_counter() - start
    finally:
        service.close()
    return elapsed, values


def _time_cluster(cube, lows, highs, num_shards):
    with tempfile.TemporaryDirectory(prefix=f"c1-{num_shards}s-") as tmp:
        cluster = CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp,
            num_shards=num_shards,
            replication_factor=2,
            method_kwargs={"box_size": BOX_SIZE},
        )
        try:
            start = time.perf_counter()
            for _ in range(ROUNDS):
                values = cluster.range_sum_many(lows, highs)
            elapsed = time.perf_counter() - start
        finally:
            cluster.close()
    return elapsed, values


def _hedge_rescue(cube, seed):
    """Spike the primary's read path; return per-read walls + metrics."""
    spiked_ordinals = (2, 4, 6)
    plan = FaultPlan(
        seed=seed,
        read_latency_at=spiked_ordinals,
        read_latency_nodes=["s0.n0"],
        read_latency_seconds=SPIKE_S,
    )
    lows, highs = _boxes(cube.shape, 8, seed)
    walls = []
    with tempfile.TemporaryDirectory(prefix="c1-hedge-") as tmp:
        cluster = CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp,
            num_shards=1,
            replication_factor=2,
            method_kwargs={"box_size": BOX_SIZE},
            fault_plan=plan,
            hedge=HedgePolicy(initial_delay_s=0.02, min_samples=10_000),
        )
        try:
            expected = None
            for _ in range(8):
                start = time.perf_counter()
                values = cluster.range_sum_many(lows, highs)
                walls.append(time.perf_counter() - start)
                if expected is None:
                    expected = values
                assert np.array_equal(values, expected)
            metrics = cluster.stats()["metrics"]
        finally:
            cluster.close()
    return walls, len(spiked_ordinals), metrics


def run_c1(shape=SHAPE, seed=17):
    cube = datagen.uniform_cube(shape, seed=seed)
    lows, highs = _boxes(shape, QUERIES, seed)

    oracle = None
    rows = []
    configs = (
        ("service", lambda: _time_service(cube, lows, highs)),
        ("cluster_1shard", lambda: _time_cluster(cube, lows, highs, 1)),
        ("cluster_2shard", lambda: _time_cluster(cube, lows, highs, 2)),
    )
    for name, run in configs:
        times = []
        for _ in range(REPEATS):
            elapsed, values = run()
            times.append(elapsed)
            if oracle is None:
                oracle = np.asarray(values)
            assert np.array_equal(np.asarray(values), oracle)
        elapsed = _median(times)
        rows.append(
            {
                "config": name,
                "rounds": ROUNDS,
                "queries_per_round": QUERIES,
                "elapsed_s": elapsed,
                "queries_per_s": ROUNDS * QUERIES / elapsed,
            }
        )
    baseline = rows[0]
    for row in rows:
        row["overhead_vs_service"] = (
            row["elapsed_s"] / baseline["elapsed_s"]
        )

    walls, spiked, hedge_metrics = _hedge_rescue(cube, seed)
    hedge = {
        "spike_s": SPIKE_S,
        "spiked_reads": spiked,
        "rescue_ceiling_s": RESCUE_CEILING_S,
        "max_read_wall_s": max(walls),
        "hedged_reads": hedge_metrics["hedged_reads"],
        "hedge_wins": hedge_metrics["hedge_wins"],
    }
    return {
        "experiment": "C1",
        "title": "Cluster serving: fan-out overhead and hedged tail rescue",
        "shape": list(shape),
        "box_size": BOX_SIZE,
        "seed": seed,
        "repeats": REPEATS,
        "max_fanout_overhead_gate": MAX_FANOUT_OVERHEAD,
        "rows": rows,
        "hedge": hedge,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "C1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_c1_cluster_overhead_and_hedge_rescue():
    """Acceptance gates: the single-shard cluster stays within the
    regression guard over the bare service, and every spiked read is
    hedged onto the replica and completes before the injected spike
    possibly could."""
    report = run_c1()
    write_report(report)
    by_config = {row["config"]: row for row in report["rows"]}
    assert (
        by_config["cluster_1shard"]["overhead_vs_service"]
        <= MAX_FANOUT_OVERHEAD
    ), by_config["cluster_1shard"]
    hedge = report["hedge"]
    assert hedge["hedged_reads"] >= hedge["spiked_reads"]
    assert hedge["hedge_wins"] >= hedge["spiked_reads"]
    assert hedge["max_read_wall_s"] < hedge["rescue_ceiling_s"], hedge


def main():
    report = run_c1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        print(
            f"  {row['config']:>15}  "
            f"elapsed={row['elapsed_s']*1e3:8.2f} ms  "
            f"({row['overhead_vs_service']:5.2f}x)  "
            f"{row['queries_per_s']:10.0f} queries/s"
        )
    hedge = report["hedge"]
    print(
        f"  hedge: {hedge['hedge_wins']}/{hedge['hedged_reads']} wins, "
        f"max wall {hedge['max_read_wall_s']*1e3:.1f} ms vs "
        f"{hedge['spike_s']*1e3:.0f} ms spike"
    )


if __name__ == "__main__":
    main()

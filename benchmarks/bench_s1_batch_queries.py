"""S1 — batched query throughput: looped vs vectorized kernels.

The paper's O(1) query bound is per-query *cell* cost; the per-call
Python path pays interpreter overhead on top, which dominates real
throughput. This benchmark measures the wall-clock speedup of
``range_sum_many`` over looping ``range_sum`` across batch sizes
Q = 1e2..1e5 on a 1024x1024 cube, for every method — and asserts that
the two paths return identical answers and charge identical counter
totals, so the speedup is free in the paper's cost model.

Writes ``results/S1.json`` next to the E*/A* CSVs. Run standalone
(``python benchmarks/bench_s1_batch_queries.py``) or via pytest.
"""

import json
import pathlib
import time

import numpy as np

from repro.baselines.fenwick import FenwickCube
from repro.baselines.naive import NaiveCube
from repro.baselines.prefix import PrefixSumCube
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen, querygen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (1024, 1024)
BATCH_SIZES = (100, 1_000, 10_000, 100_000)

#: Largest Q each method's *looped* path is asked to run (the naive scan
#: and the Fenwick per-query np.ix_ path get slow enough to be pointless
#: beyond these; their vectorized kernels still run the full sweep).
LOOPED_CAP = {
    "naive": 1_000,
    "fenwick": 10_000,
    "prefix_sum": 100_000,
    "rps": 100_000,
}

METHODS = {
    "naive": NaiveCube,
    "prefix_sum": PrefixSumCube,
    "fenwick": FenwickCube,
    "rps": RelativePrefixSumCube,
}


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_s1(shape=SHAPE, batch_sizes=BATCH_SIZES, seed=21):
    """Measure both paths for every method; returns the report dict."""
    cube = datagen.uniform_cube(shape, seed=seed)
    all_queries = list(
        querygen.random_ranges(shape, max(batch_sizes), seed=seed)
    )
    lows_all = np.array([q[0] for q in all_queries], dtype=np.intp)
    highs_all = np.array([q[1] for q in all_queries], dtype=np.intp)
    rows = []
    for name, cls in METHODS.items():
        method = cls(cube)
        for q_count in batch_sizes:
            lows, highs = lows_all[:q_count], highs_all[:q_count]
            queries = all_queries[:q_count]
            run_looped = q_count <= LOOPED_CAP[name]
            row = {"method": name, "Q": q_count}
            if run_looped:
                before = method.counter.snapshot()
                looped_values, looped_seconds = _time(
                    lambda: np.array(
                        [method.range_sum(lo, hi) for lo, hi in queries]
                    )
                )
                looped_cost = before.delta(method.counter)
                row["looped_s"] = looped_seconds
            before = method.counter.snapshot()
            vec_values, vec_seconds = _time(
                lambda: method.range_sum_many(lows, highs)
            )
            vec_cost = before.delta(method.counter)
            row["vectorized_s"] = vec_seconds
            row["queries_per_s"] = q_count / vec_seconds
            row["cells_read_vectorized"] = vec_cost.cells_read
            if run_looped:
                row["speedup"] = looped_seconds / vec_seconds
                row["cells_read_looped"] = looped_cost.cells_read
                row["values_equal"] = bool(
                    np.array_equal(looped_values, vec_values)
                )
                row["counters_equal"] = (
                    looped_cost.cells_read == vec_cost.cells_read
                )
                assert row["values_equal"], (name, q_count)
                assert row["counters_equal"], (name, q_count)
            rows.append(row)
    return {
        "experiment": "S1",
        "title": "Batched query throughput: looped vs vectorized kernels",
        "shape": list(shape),
        "seed": seed,
        "rows": rows,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "S1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_s1_vectorized_speedup_and_counter_parity():
    """Acceptance gate: >= 5x at Q=10,000 on 1024x1024 for RPS and the
    prefix-sum method, identical values and counter totals throughout."""
    report = run_s1()
    write_report(report)
    by_key = {(r["method"], r["Q"]): r for r in report["rows"]}
    for name in ("rps", "prefix_sum"):
        row = by_key[(name, 10_000)]
        assert row["values_equal"] and row["counters_equal"], row
        assert row["speedup"] >= 5.0, (
            f"{name}: vectorized path only {row['speedup']:.1f}x faster"
        )


def main():
    report = run_s1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        speedup = row.get("speedup")
        speedup_txt = f"{speedup:8.1f}x" if speedup else "       --"
        print(
            f"  {row['method']:>10}  Q={row['Q']:>6}  "
            f"vec={row['vectorized_s']*1e3:8.2f} ms  speedup={speedup_txt}"
        )


if __name__ == "__main__":
    main()

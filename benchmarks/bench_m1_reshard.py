"""M1 — elastic resharding: serving through a live split and merge.

The reshard coordinator's pitch is that a shard split is an *online*
operation: the seed/tail-replay/dual-write machinery runs off the read
path, the epoch flip holds the topology lock only long enough to swap
the shard map, and readers retry once across the flip instead of
failing. This benchmark prices that pitch with a concurrent write
stream on:

* **availability** — reader threads issue exact batched range sums
  continuously before, during, and after a live split and a live merge.
  Every read issued during a migration must be answered (exactly, at
  its own snapshot); one ``ClusterUnavailableError`` fails the gate.
* **read p99** — the in-migration p99 may degrade only by a bounded
  factor over the pre-migration baseline p99 (the flip's lock hold and
  the dual-write window's mirroring are the only added costs a reader
  or writer can observe).
* **zero acked loss** — the write stream keeps acking through both
  migrations; after quiesce the full cube must equal an oracle that
  absorbed exactly the acked groups.

Each migration phase boundary sleeps ``PHASE_DWELL_S`` (the hook runs
outside every lock) so the in-migration window is wide enough to hold a
statistically meaningful read sample on any CI machine; serving is live
for the whole dwell, so this only *adds* reads the gates must pass.

Writes ``results/M1.json`` next to C1/N1. Run standalone
(``python benchmarks/bench_m1_reshard.py``) or via pytest.
"""

import json
import pathlib
import tempfile
import threading
import time

import numpy as np

from repro.cluster import CubeCluster
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"

SHAPE = (96, 64)
BOX_SIZE = 16
READERS = 3
QUERIES_PER_CALL = 4
BASELINE_S = 0.6      # pre-migration read window
PHASE_DWELL_S = 0.04  # per-phase-boundary dwell (7 phases per migration)

#: gates: every in-migration read answered, p99 within this factor of
#: the baseline p99 (generous — CI boxes are noisy — but an accidental
#: read-path lock across seeding or dual-write would blow it by orders
#: of magnitude), and a sane floor so a fast machine cannot fail on
#: microsecond jitter alone
MIN_MIGRATION_READS = 30
P99_DEGRADATION_GATE = 25.0
P99_FLOOR_S = 0.050


def _boxes(shape, count, seed):
    rng = np.random.default_rng(seed)
    lows, highs = [], []
    for _ in range(count):
        low, high = [], []
        for n in shape:
            a, b = sorted(int(x) for x in rng.integers(0, n, size=2))
            low.append(a)
            high.append(b)
        lows.append(low)
        highs.append(high)
    return lows, highs


def _percentile(values, q):
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


class _Recorder:
    """Timestamped read walls + failures, windowed per phase."""

    def __init__(self):
        self.lock = threading.Lock()
        self.samples = []   # (t_completed, wall_s)
        self.failures = []  # (t, repr(error))

    def ok(self, wall):
        with self.lock:
            self.samples.append((time.monotonic(), wall))

    def fail(self, error):
        with self.lock:
            self.failures.append((time.monotonic(), repr(error)))

    def window(self, start, stop):
        with self.lock:
            walls = [w for t, w in self.samples if start <= t < stop]
            failed = [f for f in self.failures if start <= f[0] < stop]
        return walls, failed


def _window_row(name, walls, failed):
    issued = len(walls) + len(failed)
    return {
        "window": name,
        "reads": issued,
        "answered": len(walls),
        "unavailable": len(failed),
        "availability": (len(walls) / issued) if issued else 1.0,
        "p50_ms": _percentile(walls, 50) * 1e3,
        "p99_ms": _percentile(walls, 99) * 1e3,
        "max_ms": (max(walls) * 1e3) if walls else float("nan"),
    }


def run_m1(shape=SHAPE, seed=23):
    cube = datagen.uniform_cube(shape, seed=seed)
    oracle = np.asarray(cube, dtype=np.float64).copy()
    oracle_lock = threading.Lock()
    lows, highs = _boxes(shape, QUERIES_PER_CALL, seed)
    recorder = _Recorder()
    stop = threading.Event()
    writes_acked = [0]

    with tempfile.TemporaryDirectory(prefix="m1-reshard-") as tmp:
        cluster = CubeCluster(
            RelativePrefixSumCube,
            cube,
            data_dir=tmp,
            num_shards=2,
            replication_factor=2,
            method_kwargs={"box_size": BOX_SIZE},
        )

        def reader():
            while not stop.is_set():
                start = time.perf_counter()
                try:
                    cluster.range_sum_many(lows, highs)
                except Exception as error:  # noqa: BLE001 - gate fodder
                    recorder.fail(error)
                else:
                    recorder.ok(time.perf_counter() - start)

        def writer():
            wrng = np.random.default_rng(seed + 1)
            while not stop.is_set():
                group = []
                for _ in range(3):
                    cell = tuple(
                        int(wrng.integers(0, n)) for n in shape
                    )
                    group.append((cell, float(wrng.integers(-9, 10) or 1)))
                with oracle_lock:
                    try:
                        cluster.submit_batch(group)
                    except Exception:  # noqa: BLE001 - must not happen
                        stop.set()
                        raise
                    for cell, delta in group:
                        oracle[cell] += delta
                    writes_acked[0] += 1
                time.sleep(0.002)

        threads = [threading.Thread(target=reader) for _ in range(READERS)]
        threads.append(threading.Thread(target=writer))
        migrations = []
        try:
            for thread in threads:
                thread.start()
            time.sleep(BASELINE_S)
            baseline_end = time.monotonic()

            def dwell(phase):
                time.sleep(PHASE_DWELL_S)

            for kind in ("split", "merge"):
                writes_before = writes_acked[0]
                t0 = time.monotonic()
                if kind == "split":
                    summary = cluster.split_shard(0, phase_hook=dwell)
                else:
                    summary = cluster.merge_shards(0, phase_hook=dwell)
                t1 = time.monotonic()
                migrations.append({
                    "kind": kind,
                    "old_epoch": summary["old_epoch"],
                    "new_epoch": summary["new_epoch"],
                    "num_shards": summary["num_shards"],
                    "duration_s": t1 - t0,
                    "window": (t0, t1),
                    "writes_acked_during": (
                        writes_acked[0] - writes_before
                    ),
                })
                time.sleep(0.2)  # post-flip settle between migrations
            tail_end = time.monotonic()
            time.sleep(0.3)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)

        # quiesced exactness: the cluster absorbed exactly the acked
        # stream through both migrations
        cluster.flush()
        full = cluster.range_sum(
            tuple(0 for _ in shape), tuple(n - 1 for n in shape)
        )
        exact_after = bool(
            np.isclose(full, float(oracle.sum()), rtol=0, atol=1e-6)
        )
        final_epoch = cluster.epoch
        cluster.close()

    rows = [
        _window_row(
            "baseline",
            *recorder.window(0.0, baseline_end),
        )
    ]
    migration_walls, migration_failed = [], []
    for migration in migrations:
        t0, t1 = migration.pop("window")
        walls, failed = recorder.window(t0, t1)
        migration_walls.extend(walls)
        migration_failed.extend(failed)
        rows.append(_window_row(f"during_{migration['kind']}", walls, failed))
    rows.append(_window_row("during_any_migration",
                            migration_walls, migration_failed))
    rows.append(
        _window_row("after", *recorder.window(tail_end, float("inf")))
    )

    baseline_p99 = rows[0]["p99_ms"] / 1e3
    during = rows[-2]
    return {
        "experiment": "M1",
        "title": "Elastic resharding: serving through a live split/merge",
        "shape": list(shape),
        "box_size": BOX_SIZE,
        "seed": seed,
        "readers": READERS,
        "queries_per_call": QUERIES_PER_CALL,
        "phase_dwell_s": PHASE_DWELL_S,
        "gates": {
            "min_migration_reads": MIN_MIGRATION_READS,
            "p99_degradation_max": P99_DEGRADATION_GATE,
            "p99_floor_s": P99_FLOOR_S,
            "availability_required": 1.0,
        },
        "p99_ceiling_s": max(
            P99_FLOOR_S, P99_DEGRADATION_GATE * baseline_p99
        ),
        "migrations": migrations,
        "final_epoch": final_epoch,
        "writes_acked_total": writes_acked[0],
        "exact_after_quiesce": exact_after,
        "rows": rows,
        "during_any_migration": during,
    }


def write_report(report, path=None):
    path = path or (RESULTS / "M1.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def test_m1_live_split_availability_and_p99():
    """Acceptance gates: the cluster keeps serving for the full
    duration of a live split (and merge) with the write stream on —
    every in-migration read answered, in-migration p99 within the
    degradation gate, both epochs flipped, zero acked loss."""
    report = run_m1()
    write_report(report)
    during = report["during_any_migration"]
    assert during["reads"] >= MIN_MIGRATION_READS, during
    assert during["unavailable"] == 0, during
    assert during["availability"] == 1.0, during
    assert during["p99_ms"] / 1e3 <= report["p99_ceiling_s"], (
        during, report["p99_ceiling_s"],
    )
    kinds = [m["kind"] for m in report["migrations"]]
    assert kinds == ["split", "merge"]
    for migration in report["migrations"]:
        assert migration["new_epoch"] > migration["old_epoch"]
        assert migration["writes_acked_during"] >= 1, migration
    assert report["exact_after_quiesce"], (
        "acked writes lost across the migrations"
    )


def main():
    report = run_m1()
    path = write_report(report)
    print(f"wrote {path}")
    for row in report["rows"]:
        print(
            f"  {row['window']:>22}  reads={row['reads']:5d}  "
            f"avail={row['availability']:6.4f}  "
            f"p50={row['p50_ms']:7.2f} ms  p99={row['p99_ms']:7.2f} ms"
        )
    for migration in report["migrations"]:
        print(
            f"  {migration['kind']:>22}  epoch "
            f"{migration['old_epoch']}->{migration['new_epoch']}  "
            f"{migration['duration_s']*1e3:.0f} ms  "
            f"{migration['writes_acked_during']} writes acked during"
        )
    print(
        f"  exact after quiesce: {report['exact_after_quiesce']}  "
        f"(epoch {report['final_epoch']}, "
        f"{report['writes_acked_total']} groups acked)"
    )


if __name__ == "__main__":
    main()

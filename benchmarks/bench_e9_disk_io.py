"""E9 — Section 4.4: page I/O with RP on disk and the overlay in RAM."""

import numpy as np

from repro.bench.experiments import e9_disk_io
from repro.storage.layout import BoxAlignedLayout, RowMajorLayout
from repro.storage.paged_rps import PagedRPSCube
from repro.workloads import datagen


def test_e9_table_regeneration(benchmark):
    """Time the layout x buffer grid; verify the constant-pages claim."""
    table = benchmark(e9_disk_io, n=64, box_size=8, operations=16)
    worst = {}
    for layout, op, value in zip(
        table.column("layout"), table.column("op"),
        table.column("max_pages_per_op"),
    ):
        worst[(layout, op)] = max(worst.get((layout, op), 0), value)
    assert worst[("box_aligned", "query")] <= 4
    assert worst[("box_aligned", "update")] <= 2
    assert worst[("row_major", "update")] > worst[("box_aligned", "update")]


def test_e9_cold_queries_box_aligned(benchmark):
    """Per-query page reads with a cold buffer, box-aligned layout."""
    cube = datagen.uniform_cube((128, 128), seed=2)
    paged = PagedRPSCube(cube, box_size=16, buffer_capacity=4)
    rng = np.random.default_rng(5)
    queries = [
        tuple(sorted(int(x) for x in rng.integers(0, 128, size=2)))
        for _ in range(30)
    ]

    def run():
        total_pages = 0
        for a, b in queries:
            paged.rp_pages.pool.drop()
            paged.reset_io_stats()
            paged.range_sum((a, a), (b, b))
            total_pages += paged.io_stats()["pages_read"]
        return total_pages

    total = benchmark(run)
    assert total <= 30 * 4  # never more than 2^d pages per query


def test_e9_update_io_row_major_vs_aligned(benchmark):
    """A box-local update straddles pages under a row-major layout."""
    n, k = 128, 16
    cube = datagen.uniform_cube((n, n), seed=2)
    aligned = PagedRPSCube(cube, box_size=k, buffer_capacity=64)
    unaligned = PagedRPSCube(
        cube, box_size=k, layout=RowMajorLayout((n, n), k * k),
        buffer_capacity=64,
    )

    def run():
        for paged in (aligned, unaligned):
            paged.rp_pages.pool.drop()
            paged.reset_io_stats()
            paged.apply_delta((0, 0), 1)
            paged.apply_delta((0, 0), -1)
            paged.flush()
        return (
            aligned.io_stats()["pages_read"],
            unaligned.io_stats()["pages_read"],
        )

    aligned_pages, unaligned_pages = benchmark(run)
    assert aligned_pages == 1
    # A row-major page of k^2 cells holds k^2/n full rows of the cube, so
    # the k-row cascade straddles k / (k^2/n) = n/k pages.
    assert unaligned_pages == n // k

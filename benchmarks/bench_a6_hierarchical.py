"""Ablation A6 — multi-level RPS: growth rate vs constants.

The extension of DESIGN.md's future-work note: backing overlay value
arrays with inner RPS structures (range-add/point-query duality) drops
the worst-case update *growth rate* below the paper's n^{d/2} while
queries stay O(1). The constants grow ~4^d per level, so on feasible
dense cubes the flat structure usually wins in absolute cells; this
ablation measures both sides of that trade honestly.
"""

import math

import numpy as np
import pytest

from repro.extensions.hierarchical import HierarchicalRPSCube
from repro.workloads import datagen


def _build(levels: int, n: int) -> HierarchicalRPSCube:
    k = round(math.sqrt(n)) if levels == 1 else max(2, round(n ** 0.4))
    return HierarchicalRPSCube(
        np.zeros((n, n), dtype=np.int64), box_size=k, levels=levels
    )


@pytest.mark.parametrize("levels", [1, 2])
def test_a6_worst_update_latency(benchmark, levels):
    """Wall-clock of a worst-case update per level (n=512)."""
    benchmark.group = "hier-update-512"
    cube = _build(levels, 512)

    def run():
        cube.apply_delta((1, 1), 1)
        cube.apply_delta((1, 1), -1)

    benchmark(run)


def test_a6_growth_rates(benchmark):
    """Measured update-cell growth per 4x of n, per level."""

    def run():
        table = {}
        for levels in (1, 2):
            costs = []
            for n in (64, 256, 1024):
                cube = _build(levels, n)
                before = cube.counter.snapshot()
                cube.apply_delta((1, 1), 1)
                costs.append(before.delta(cube.counter).cells_written)
            table[levels] = costs
        return table

    table = benchmark(run)
    flat, deep = table[1], table[2]
    # flat tracks ~n^{d/2}: x4 cells per x4 of n
    assert 3.5 < flat[2] / flat[1] < 4.8
    # the deep structure's growth is measurably slower at every step
    for i in (1, 2):
        assert deep[i] / deep[i - 1] < flat[i] / flat[i - 1]
    # ... but its constants are larger at these feasible sizes
    assert deep[0] > flat[0]


def test_a6_queries_stay_constant(benchmark):
    """Query cells are flat in n for both levels."""
    rng = np.random.default_rng(81)

    def run():
        table = {}
        for levels in (1, 2):
            per_n = []
            for n in (64, 256):
                cube = HierarchicalRPSCube(
                    datagen.uniform_cube((n, n), seed=82),
                    box_size=max(2, round(math.sqrt(n))),
                    levels=levels,
                )
                worst = 0
                for _ in range(20):
                    t = tuple(int(x) for x in rng.integers(1, n, size=2))
                    before = cube.counter.snapshot()
                    cube.prefix_sum(t)
                    worst = max(
                        worst, before.delta(cube.counter).cells_read
                    )
                per_n.append(worst)
            table[levels] = per_n
        return table

    table = benchmark(run)
    for levels, (small, large) in table.items():
        assert large <= small + 4, (levels, small, large)


def test_a6_correctness_under_load(benchmark):
    """A mixed stream on the 2-level structure stays exact."""
    cube_data = datagen.uniform_cube((128, 128), seed=83)
    rng = np.random.default_rng(84)

    def run():
        cube = HierarchicalRPSCube(cube_data, box_size=7, levels=2)
        oracle = cube_data.copy()
        mismatches = 0
        for _ in range(60):
            cell = tuple(int(x) for x in rng.integers(0, 128, size=2))
            delta = int(rng.integers(-5, 6))
            oracle[cell] += delta
            cube.apply_delta(cell, delta)
            low = tuple(int(x) for x in rng.integers(0, 128, size=2))
            high = tuple(int(rng.integers(l, 128)) for l in low)
            expected = oracle[
                low[0]:high[0] + 1, low[1]:high[1] + 1
            ].sum()
            if cube.range_sum(low, high) != expected:
                mismatches += 1
        return mismatches

    assert benchmark(run) == 0

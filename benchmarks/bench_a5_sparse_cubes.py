"""Ablation A5 — dense structures on sparse data vs the sparse baseline.

The paper warns that cube size is exponential in d; real high-dimensional
cubes are mostly empty. This ablation shows where each representation
pays: the sparse hash scan's query cost tracks the nonzero count (great
at 0.1% density, hopeless at 50%), while the RPS cube's costs are
density-independent but its storage is always the dense n^d.
"""

import numpy as np
import pytest

from repro.baselines.sparse import SparseNaiveCube
from repro.core.rps import RelativePrefixSumCube
from repro.workloads import datagen, querygen

N = 128


@pytest.mark.parametrize("density", [0.001, 0.05, 0.5])
def test_a5_query_cost_tracks_density(benchmark, density):
    """Sparse-scan query cells == nnz, whatever the range."""
    benchmark.group = f"sparse-query-{density}"
    cube = datagen.sparse_cube((N, N), density=density, seed=71)
    sparse = SparseNaiveCube(cube)
    queries = list(querygen.random_ranges((N, N), 50, seed=72))

    def run():
        return [int(sparse.range_sum(lo, hi)) for lo, hi in queries]

    answers = benchmark(run)
    expected = [
        int(cube[lo[0]:hi[0] + 1, lo[1]:hi[1] + 1].sum())
        for lo, hi in queries
    ]
    assert answers == expected
    nnz = int(np.count_nonzero(cube))
    before = sparse.counter.snapshot()
    sparse.range_sum((0, 0), (N - 1, N - 1))
    assert before.delta(sparse.counter).cells_read == max(nnz, 1)


def test_a5_rps_density_independent(benchmark):
    """RPS query cell counts do not change with density."""
    queries = list(querygen.random_ranges((N, N), 50, seed=73))
    costs = {}

    def run():
        for density in (0.001, 0.5):
            cube = datagen.sparse_cube((N, N), density=density, seed=71)
            rps = RelativePrefixSumCube(cube)
            before = rps.counter.snapshot()
            for low, high in queries:
                rps.range_sum(low, high)
            costs[density] = before.delta(rps.counter).cells_read
        return costs

    measured = benchmark(run)
    assert measured[0.001] == measured[0.5]


def test_a5_storage_crossover(benchmark):
    """Below ~paper-overlay density, the sparse map stores fewer cells;
    RPS storage is flat at ~1.2x the dense cube."""

    def run():
        rows = {}
        for density in (0.001, 0.05, 0.5):
            cube = datagen.sparse_cube((N, N), density=density, seed=71)
            rows[density] = {
                "sparse": SparseNaiveCube(cube).storage_cells(),
                "rps": RelativePrefixSumCube(cube).storage_cells(),
            }
        return rows

    rows = benchmark(run)
    assert rows[0.001]["sparse"] < rows[0.001]["rps"] / 50
    assert rows[0.5]["rps"] < rows[0.5]["sparse"] * 3  # dense territory
    # rps storage identical at every density
    assert rows[0.001]["rps"] == rows[0.5]["rps"]
